#include "protocol/dir/directory.hh"

#include <algorithm>
#include <sstream>

#include "mem/storage_fault.hh"
#include "obs/tracer.hh"
#include "sim/coherence_checker.hh"
#include "sim/json.hh"
#include "sim/sim_error.hh"

namespace hsc
{

DirectoryController::DirectoryController(std::string name, EventQueue &eq,
                                         ClockDomain clk,
                                         const DirParams &params,
                                         MainMemory &mem)
    : Clocked(std::move(name), eq, clk), params(params), mem(mem),
      llcCache(this->name() + ".llc",
               LlcParams{params.llc.geom, params.cfg.llcWriteBack}, mem),
      dirArray(this->name() + ".dirArray",
               CacheGeometry{params.cfg.dirEntries / params.cfg.dirAssoc,
                             params.cfg.dirAssoc,
                             params.bankIndexShift},
               params.cfg.dirRepl),
      toClient(params.topo.numClients(), nullptr)
{
}

void
DirectoryController::bindToClient(MachineId id, MessageBuffer &buf)
{
    panic_if(id < 0 || id >= static_cast<MachineId>(toClient.size()),
             "bad client id %d", id);
    toClient[id] = &buf;
}

void
DirectoryController::bindFromClient(MessageBuffer &buf)
{
    bindGuardedConsumer(buf, ingressGuards, statIngressDups,
                        ingressGuarded,
                        [this](Msg &&m) { receive(std::move(m)); });
}

void
DirectoryController::attachTracer(ObsTracer *t)
{
    tracer = t;
    if (tracer)
        obsCtrl = tracer->internCtrl(name(), ObsCtrlKind::Dir);
}

void
DirectoryController::obsEmit(std::uint64_t obs_id, ObsPhase phase,
                             Addr addr, std::uint32_t arg)
{
    if (!tracer || !obs_id)
        return;
    tracer->emit(obs_id, phase, obsCtrl, addr, curTick(), arg);
}

void
DirectoryController::regStats(StatRegistry &reg)
{
    const std::string &n = name();
    reg.addCounter(n + ".requests", &statRequests);
    reg.addCounter(n + ".victims", &statVictims);
    reg.addCounter(n + ".stalls", &statStalls);
    reg.addCounter(n + ".setConflictRetries", &statSetConflictRetries);
    reg.addCounter(n + ".probesSent", &statProbesSent);
    reg.addCounter(n + ".probeBroadcasts", &statProbeBroadcasts);
    reg.addCounter(n + ".probeMulticasts", &statProbeMulticasts);
    reg.addCounter(n + ".probesElided", &statProbesElided);
    reg.addCounter(n + ".earlyResponses", &statEarlyResponses);
    reg.addCounter(n + ".dirHits", &statDirHits);
    reg.addCounter(n + ".dirMisses", &statDirMisses);
    reg.addCounter(n + ".dirEvictions", &statDirEvictions);
    reg.addCounter(n + ".backInvals", &statBackInvals);
    reg.addCounter(n + ".staleVicDropped", &statStaleVicDropped);
    reg.addCounter(n + ".readOnlyElided", &statReadOnlyElided);
    reg.addHistogram(n + ".txnLatency", &statTxnLatency);
    reg.addCounter(n + ".atomics", &statAtomics);
    reg.addCounter(n + ".writeThroughs", &statWriteThroughs);
    reg.addCounter(n + ".dmaReads", &statDmaReads);
    reg.addCounter(n + ".dmaWrites", &statDmaWrites);
    static const char *state_names[3] = {"I", "S", "O"};
    for (unsigned row = 0; row < 3; ++row) {
        for (unsigned t = 0; t < NumMsgKinds; ++t) {
            reg.addCounter(n + ".tableI." + state_names[row] + "." +
                               std::string(msgTypeName(MsgType(t))),
                           &statTableI[row][t]);
        }
    }
    if (ingressGuarded)
        reg.addCounter(n + ".ingress.dupDrops", &statIngressDups);
    llcCache.regStats(reg);
}

void
DirectoryController::sendToClient(MachineId id, Msg msg)
{
    panic_if(id < 0 || id >= static_cast<MachineId>(toClient.size()) ||
                 !toClient[id],
             "%s: no channel to client %d", name().c_str(), id);
    msg.dest = id;
    toClient[id]->enqueue(std::move(msg));
}

// --------------------------------------------------------------------
// Receive / stall machinery
// --------------------------------------------------------------------

void
DirectoryController::receive(Msg &&msg)
{
    switch (msg.type) {
      case MsgType::PrbResp:
        handleProbeResp(msg);
        return;
      case MsgType::Unblock:
        handleUnblock(msg);
        return;
      default:
        break;
    }

    if (busyLines.count(msg.addr)) {
        ++statStalls;
        stalled[msg.addr].push_back(std::move(msg));
        return;
    }
    busyLines[msg.addr] = 0;
    scheduleDispatch(std::move(msg));
}

void
DirectoryController::scheduleDispatch(Msg msg)
{
    Tick ready = clock().clockEdge(curTick(), params.dirLatency);
    Tick start = std::max(ready, nextDispatchFree);
    nextDispatchFree = start + clock().toTicks(params.servicePeriod);
    dispatchPending.push_back(std::move(msg));
    eq.schedule(start, [this] {
        Msg m = std::move(dispatchPending.front());
        dispatchPending.pop_front();
        dispatch(std::move(m));
    }, EventPriority::Default, /*progress=*/true);
}

void
DirectoryController::dispatch(Msg msg)
{
    HSC_TRACE(Directory, curTick(), "%s: dispatch %s %#llx from %d "
              "dirty=%d val=%llx", name().c_str(),
              std::string(msgTypeName(msg.type)).c_str(),
              (unsigned long long)msg.addr, msg.sender, int(msg.dirty),
              (unsigned long long)(msg.hasData
                  ? msg.data.get<std::uint64_t>(8) : 0));

    obsEmit(msg.obsId, ObsPhase::DirDispatch, msg.addr);

    if (checker) {
        std::string_view st = "U";
        if (params.cfg.stateful()) {
            const DirEntry *e = dirArray.peek(msg.addr);
            st = !e ? "I" : e->state == DirState::S ? "S" : "O";
        }
        if (!checker->noteEvent(CheckerCtrl::Directory, name(), msg.addr,
                                st, msgTypeName(msg.type))) {
            // Illegal request: drop it, but ack victims so the sender
            // does not wedge waiting for a WBAck.
            if (isVictim(msg.type)) {
                Msg ack;
                ack.type = MsgType::WBAck;
                ack.addr = msg.addr;
                ack.obsId = msg.obsId;
                ack.sender = params.topo.dirId();
                obsEmit(msg.obsId, ObsPhase::Respond, msg.addr);
                sendToClient(msg.sender, std::move(ack));
            }
            releaseLine(msg.addr);
            return;
        }
    }

    if (params.bug.kind == SeededBug::Kind::BogusWBAck &&
        params.bug.matchesBlock(msg.addr) && !isVictim(msg.type) &&
        params.topo.isL2(msg.sender)) {
        // Seeded bug: send a write-back ack nobody asked for.
        Msg bogus;
        bogus.type = MsgType::WBAck;
        bogus.addr = msg.addr;
        bogus.sender = params.topo.dirId();
        sendToClient(msg.sender, std::move(bogus));
    }

    if (isVictim(msg.type)) {
        ++statVictims;
        if (params.cfg.stateful())
            handleVictimTracked(msg);
        else
            handleVictimStateless(msg);
        return;
    }

    ++statRequests;
    if (msg.type == MsgType::Atomic)
        ++statAtomics;
    if (msg.type == MsgType::WriteThrough || msg.type == MsgType::Flush)
        ++statWriteThroughs;
    if (msg.type == MsgType::DmaRead)
        ++statDmaReads;
    if (msg.type == MsgType::DmaWrite)
        ++statDmaWrites;

    if (params.cfg.stateful())
        handleTracked(std::move(msg));
    else
        handleStateless(std::move(msg));
}

void
DirectoryController::releaseLine(Addr addr)
{
    busyLines.erase(addr);
    auto it = stalled.find(addr);
    if (it == stalled.end())
        return;
    Msg next = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty())
        stalled.erase(it);
    busyLines[addr] = 0;
    scheduleDispatch(std::move(next));
}

// --------------------------------------------------------------------
// Probe target computation
// --------------------------------------------------------------------

DirectoryController::ProbeTargets
DirectoryController::broadcastTargets(bool invalidating,
                                      MachineId exclude) const
{
    ProbeTargets targets;
    for (unsigned i = 0; i < params.topo.numCorePairs; ++i) {
        MachineId id = params.topo.l2Id(i);
        if (id != exclude)
            targets.push_back(id);
    }
    if (invalidating) {
        // Read-permission downgrade probes may not include the TCC
        // (§II-D footnote); write-permission probes always do.
        for (unsigned i = 0; i < params.topo.numTccs; ++i) {
            MachineId id = params.topo.tccId(i);
            if (id != exclude)
                targets.push_back(id);
        }
    }
    return targets;
}

unsigned
DirectoryController::broadcastCount(bool invalidating,
                                    MachineId exclude) const
{
    unsigned n = 0;
    for (unsigned i = 0; i < params.topo.numCorePairs; ++i)
        n += (params.topo.l2Id(i) != exclude);
    if (invalidating) {
        for (unsigned i = 0; i < params.topo.numTccs; ++i)
            n += (params.topo.tccId(i) != exclude);
    }
    return n;
}

DirectoryController::ProbeTargets
DirectoryController::trackedTargets(const DirEntry &entry,
                                    MachineId exclude) const
{
    // Owner-only tracking has no sharer information: invalidations of
    // S-state lines (and of sharers besides the owner) broadcast.
    if (params.cfg.tracking != DirTracking::Sharers || entry.overflow)
        return broadcastTargets(true, exclude);

    ProbeTargets targets = sharerList(entry);
    if (entry.owner != InvalidMachineId &&
        std::find(targets.begin(), targets.end(), entry.owner) ==
            targets.end()) {
        targets.push_back(entry.owner);
    }
    targets.erase(std::remove(targets.begin(), targets.end(), exclude),
                  targets.end());
    return targets;
}

// --------------------------------------------------------------------
// Sharer-set helpers (full map or limited pointers, §IV-B)
// --------------------------------------------------------------------

void
DirectoryController::addSharer(DirEntry &entry, MachineId id)
{
    if (params.cfg.tracking != DirTracking::Sharers)
        return;
    std::uint64_t bit = 1ull << id;
    if (entry.sharers & bit)
        return;
    if (entry.overflow)
        return; // already resorting to broadcast
    unsigned max_ptrs = params.cfg.maxSharerPointers;
    if (max_ptrs != 0 && entry.ptrCount >= max_ptrs) {
        // Limited-pointer overflow: future invalidations broadcast and
        // tracked sharers must not be removed (Table I footnote b).
        entry.overflow = true;
        return;
    }
    entry.sharers |= bit;
    ++entry.ptrCount;
}

void
DirectoryController::removeSharer(DirEntry &entry, MachineId id)
{
    if (params.cfg.tracking != DirTracking::Sharers || entry.overflow)
        return;
    std::uint64_t bit = 1ull << id;
    if (entry.sharers & bit) {
        entry.sharers &= ~bit;
        --entry.ptrCount;
    }
}

bool
DirectoryController::sharersEmpty(const DirEntry &entry) const
{
    if (params.cfg.tracking != DirTracking::Sharers || entry.overflow)
        return false; // unknown: stay conservative
    return entry.sharers == 0;
}

DirectoryController::ProbeTargets
DirectoryController::sharerList(const DirEntry &entry) const
{
    ProbeTargets out;
    for (unsigned i = 0; i < params.topo.numCacheClients(); ++i) {
        if (entry.sharers & (1ull << i))
            out.push_back(static_cast<MachineId>(i));
    }
    return out;
}

void
DirectoryController::freeEntry(Addr addr)
{
    dirArray.invalidate(addr);
}

// --------------------------------------------------------------------
// Transaction machinery
// --------------------------------------------------------------------

DirectoryController::Tbe &
DirectoryController::newTbe(const Msg &msg)
{
    std::uint64_t txn = nextTxn++;
    Tbe &tbe = tbes[txn];
    tbe.txn = txn;
    tbe.req = msg;
    tbe.startedAt = curTick();
    busyLines[msg.addr] = txn;
    return tbe;
}

void
DirectoryController::sendProbes(Tbe &tbe,
                                const ProbeTargets &targets,
                                bool invalidating)
{
    unsigned broadcast_size =
        broadcastCount(invalidating, tbe.req.sender);
    if (broadcast_size > targets.size())
        statProbesElided += broadcast_size - targets.size();
    if (targets.empty())
        return;
    if (targets.size() >= broadcast_size)
        ++statProbeBroadcasts;
    else
        ++statProbeMulticasts;

    obsEmit(tbe.req.obsId, ObsPhase::ProbesOut,
            tbe.isEviction ? tbe.evictAddr : tbe.req.addr,
            std::uint32_t(targets.size()));

    for (MachineId t : targets) {
        Msg p;
        p.type = invalidating ? MsgType::PrbInv : MsgType::PrbDowngrade;
        p.addr = tbe.isEviction ? tbe.evictAddr : tbe.req.addr;
        p.txnId = tbe.txn;
        p.obsId = tbe.req.obsId;
        p.sender = params.topo.dirId();
        ++statProbesSent;
        ++tbe.pendingAcks;
        sendToClient(t, std::move(p));
    }
}

void
DirectoryController::startBackingRead(Tbe &tbe)
{
    tbe.needBacking = true;
    std::uint64_t txn = tbe.txn;
    Addr addr = tbe.req.addr;
    obsEmit(tbe.req.obsId, ObsPhase::BackingRead, addr);
    after(params.llcLatency, [this, txn, addr] {
        auto it = tbes.find(txn);
        panic_if(it == tbes.end(), "backing read for dead txn");
        Tbe &tbe = it->second;
        if (auto data = llcCache.read(addr, curTick())) {
            tbe.backingData = *data;
            tbe.haveBackingData = true;
            tbe.needBacking = false;
            obsEmit(tbe.req.obsId, ObsPhase::BackingData, addr);
            maybeComplete(tbe);
            tryRetire(tbe);
            return;
        }
        mem.read(addr, [this, txn, addr](const DataBlock &data) {
            auto it2 = tbes.find(txn);
            panic_if(it2 == tbes.end(), "memory read for dead txn");
            Tbe &tbe2 = it2->second;
            tbe2.backingData = data;
            tbe2.haveBackingData = true;
            tbe2.needBacking = false;
            obsEmit(tbe2.req.obsId, ObsPhase::BackingData, addr);
            maybeComplete(tbe2);
            tryRetire(tbe2);
        });
    });
}

bool
DirectoryController::consumeCancelledVic(const Msg &msg)
{
    auto key = std::make_pair(msg.addr, msg.sender);
    auto it = cancelledVics.find(key);
    if (it == cancelledVics.end())
        return false;
    if (--it->second == 0)
        cancelledVics.erase(it);
    ++statStaleVicDropped;
    Msg ack;
    ack.type = MsgType::WBAck;
    ack.addr = msg.addr;
    ack.obsId = msg.obsId;
    ack.sender = params.topo.dirId();
    obsEmit(msg.obsId, ObsPhase::Respond, msg.addr);
    sendToClient(msg.sender, std::move(ack));
    releaseLine(msg.addr);
    return true;
}

void
DirectoryController::handleProbeResp(const Msg &msg)
{
    auto it = tbes.find(msg.txnId);
    panic_if(it == tbes.end(), "%s: probe resp for unknown txn %llu",
             name().c_str(), (unsigned long long)msg.txnId);
    Tbe &tbe = it->second;
    HSC_TRACE(Directory, curTick(), "%s: prbresp txn=%llu %#llx from %d "
              "hit=%d dirty=%d hasData=%d val=%llx", name().c_str(),
              (unsigned long long)msg.txnId, (unsigned long long)msg.addr,
              msg.sender, int(msg.hit), int(msg.dirty), int(msg.hasData),
              (unsigned long long)(msg.hasData
                  ? msg.data.get<std::uint64_t>(8) : 0));
    panic_if(tbe.pendingAcks == 0, "%s: unexpected probe resp",
             name().c_str());
    obsEmit(tbe.req.obsId, ObsPhase::ProbeAck, msg.addr);
    --tbe.pendingAcks;
    tbe.sawHit = tbe.sawHit || msg.hit;
    if (msg.cancelledVic)
        ++cancelledVics[{msg.addr, msg.sender}];
    if (msg.hasData && (msg.dirty || !tbe.haveProbeData)) {
        if (checker && msg.dirty && tbe.probeDataDirty) {
            checker->reportViolation(
                "double-dirty", name(), msg.addr,
                "second dirty probe response in one transaction (from "
                "client " + std::to_string(msg.sender) + ")");
        }
        if (params.bug.kind == SeededBug::Kind::IgnoreProbeData &&
            params.bug.matchesBlock(msg.addr)) {
            // Seeded bug: collected probe data is dropped on the floor,
            // so the requester will be served stale backing data.
        } else {
            tbe.probeData = msg.data;
            tbe.haveProbeData = true;
            tbe.probeDataDirty = tbe.probeDataDirty || msg.dirty;
        }
    }

    // §III-A: for downgrade transactions, the first dirty ack can
    // safely answer the requester before the rest (and before memory).
    if (params.cfg.earlyDirtyResp && !tbe.responded && !tbe.isEviction &&
        msg.dirty && isReadPermission(tbe.req.type)) {
        ++statEarlyResponses;
        respond(tbe);
        tryRetire(tbe);
        return;
    }

    if (tbe.isEviction) {
        if (tbe.pendingAcks == 0)
            finishEviction(tbe);
        return;
    }
    maybeComplete(tbe);
    tryRetire(tbe);
}

void
DirectoryController::handleUnblock(const Msg &msg)
{
    auto bl = busyLines.find(msg.addr);
    panic_if(bl == busyLines.end() || bl->second == 0,
             "%s: unblock for idle line %#llx", name().c_str(),
             (unsigned long long)msg.addr);
    auto it = tbes.find(bl->second);
    panic_if(it == tbes.end(), "unblock for dead txn");
    it->second.unblocked = true;
    tryRetire(it->second);
}

void
DirectoryController::maybeComplete(Tbe &tbe)
{
    if (tbe.responded || tbe.isEviction)
        return;
    if (tbe.pendingAcks == 0 && !tbe.needBacking)
        respond(tbe);
}

void
DirectoryController::respond(Tbe &tbe)
{
    HSC_TRACE(Directory, curTick(), "%s: respond txn=%llu %s %#llx -> %d "
              "probeData=%d dirty=%d backing=%d pval=%llx bval=%llx",
              name().c_str(), (unsigned long long)tbe.txn,
              std::string(msgTypeName(tbe.req.type)).c_str(),
              (unsigned long long)tbe.req.addr, tbe.req.sender,
              int(tbe.haveProbeData), int(tbe.probeDataDirty),
              int(tbe.haveBackingData),
              (unsigned long long)(tbe.haveProbeData
                  ? tbe.probeData.get<std::uint64_t>(8) : 0),
              (unsigned long long)(tbe.haveBackingData
                  ? tbe.backingData.get<std::uint64_t>(8) : 0));
    tbe.responded = true;
    const Msg &req = tbe.req;
    MachineId requester = req.sender;

    obsEmit(req.obsId, ObsPhase::Respond, req.addr);

    Msg r;
    r.addr = req.addr;
    r.txnId = req.txnId;
    r.obsId = req.obsId;
    r.sender = params.topo.dirId();

    switch (req.type) {
      case MsgType::RdBlk:
      case MsgType::RdBlkS:
      case MsgType::RdBlkM:
      case MsgType::TccRdBlk: {
        r.type = MsgType::SysResp;
        if (req.type == MsgType::RdBlkM) {
            r.grant = Grant::Modified;
        } else if (req.type == MsgType::RdBlkS || tbe.forceShared ||
                   tbe.sawHit) {
            r.grant = Grant::Shared;
        } else {
            r.grant = Grant::Exclusive;
        }
        if (!tbe.noData) {
            panic_if(!tbe.haveProbeData && !tbe.haveBackingData,
                     "%s: no data to respond for %#llx", name().c_str(),
                     (unsigned long long)req.addr);
            r.hasData = true;
            r.data = tbe.haveProbeData ? tbe.probeData : tbe.backingData;
            // No data check here: the payload may legitimately be
            // stale when the requester is an upgrading owner that
            // ignores it.  Fills are checked at the consumer instead.
        }
        sendToClient(requester, std::move(r));
        // L2 requesters unblock explicitly; TCC transactions unblock
        // implicitly (the paper's internal trigger queue).
        if (!params.topo.isL2(requester))
            tbe.unblocked = true;
        break;
      }
      case MsgType::Atomic: {
        panic_if(!tbe.haveProbeData && !tbe.haveBackingData,
                 "%s: atomic with no data", name().c_str());
        DataBlock base = tbe.probeDataDirty ? tbe.probeData
                         : tbe.haveBackingData ? tbe.backingData
                                               : tbe.probeData;
        if (checker && !tbe.probeDataDirty && tbe.haveBackingData)
            checker->noteCleanData(name(), req.addr, tbe.backingData,
                                   "atomic backing data");
        // The directory's ALU reads the word: consumption boundary for
        // system-scope atomics on a poisoned line.
        if (storage)
            storage->noteConsumption(name(), req.addr, base, curTick(),
                                     req.obsId);
        unsigned off = req.atomicOffset;
        std::uint64_t old_val = req.atomicSize == 4
            ? base.get<std::uint32_t>(off)
            : base.get<std::uint64_t>(off);
        std::uint64_t new_val = applyAtomic(req.atomicOp, old_val,
                                            req.atomicOperand,
                                            req.atomicOperand2);
        if (req.atomicSize == 4)
            base.set<std::uint32_t>(off, std::uint32_t(new_val));
        else
            base.set<std::uint64_t>(off, new_val);
        if (tbe.probeDataDirty) {
            // Collected dirty data must be persisted with the update.
            writeFull(req.addr, base);
        } else if (req.atomicOp != AtomicOp::Load) {
            writeMasked(req.addr, base,
                        makeMask(off, req.atomicSize));
        }
        r.type = MsgType::AtomicResp;
        r.atomicResult = old_val;
        sendToClient(requester, std::move(r));
        tbe.unblocked = true;
        break;
      }
      case MsgType::WriteThrough:
      case MsgType::Flush: {
        if (tbe.probeDataDirty) {
            DataBlock full = tbe.probeData;
            full.merge(req.data, req.mask);
            writeFull(req.addr, full);
        } else {
            writeMasked(req.addr, req.data, req.mask);
        }
        r.type = MsgType::WBAck;
        sendToClient(requester, std::move(r));
        tbe.unblocked = true;
        break;
      }
      case MsgType::DmaRead: {
        panic_if(!tbe.haveProbeData && !tbe.haveBackingData,
                 "%s: DMA read with no data", name().c_str());
        r.type = MsgType::DmaResp;
        r.hasData = true;
        r.data = tbe.probeDataDirty ? tbe.probeData : tbe.backingData;
        if (!tbe.haveBackingData)
            r.data = tbe.probeData;
        if (checker && !tbe.probeDataDirty)
            checker->noteCleanData(name(), req.addr, r.data,
                                   "dma response data");
        sendToClient(requester, std::move(r));
        tbe.unblocked = true;
        break;
      }
      case MsgType::DmaWrite: {
        if (tbe.probeDataDirty) {
            DataBlock full = tbe.probeData;
            full.merge(req.data, req.mask);
            writeFull(req.addr, full);
        } else {
            writeMasked(req.addr, req.data, req.mask);
        }
        r.type = MsgType::DmaResp;
        sendToClient(requester, std::move(r));
        tbe.unblocked = true;
        break;
      }
      default:
        panic("%s: respond for unexpected type %s", name().c_str(),
              std::string(msgTypeName(req.type)).c_str());
    }

    if (tbe.onRespond)
        tbe.onRespond(tbe);
}

void
DirectoryController::tryRetire(Tbe &tbe)
{
    if (!tbe.responded || !tbe.unblocked || tbe.pendingAcks != 0 ||
        tbe.needBacking) {
        return;
    }
    Addr addr = tbe.req.addr;
    statTxnLatency.sample(clock().toCycles(curTick() - tbe.startedAt));
    obsEmit(tbe.req.obsId, ObsPhase::Retire, addr);
    tbes.erase(tbe.txn);
    releaseLine(addr);
}

// --------------------------------------------------------------------
// Baseline stateless directory (§II-D, Fig. 2)
// --------------------------------------------------------------------

void
DirectoryController::handleStateless(Msg msg)
{
    Tbe &tbe = newTbe(msg);
    bool inval = isWritePermission(msg.type);
    sendProbes(tbe, broadcastTargets(inval, msg.sender), inval);

    switch (msg.type) {
      case MsgType::RdBlk:
      case MsgType::RdBlkS:
      case MsgType::RdBlkM:
      case MsgType::TccRdBlk:
      case MsgType::DmaRead:
      case MsgType::Atomic:
        startBackingRead(tbe);
        break;
      default:
        break; // write-throughs and DMA writes carry their own data
    }
    maybeComplete(tbe);
    tryRetire(tbe);
}

void
DirectoryController::handleVictimStateless(const Msg &msg)
{
    if (consumeCancelledVic(msg))
        return;
    bool dirty = msg.type == MsgType::VicDirty;
    writeVictim(msg.addr, msg.data, dirty);

    Msg ack;
    ack.type = MsgType::WBAck;
    ack.addr = msg.addr;
    ack.obsId = msg.obsId;
    ack.sender = params.topo.dirId();
    obsEmit(msg.obsId, ObsPhase::Respond, msg.addr);
    sendToClient(msg.sender, std::move(ack));
    releaseLine(msg.addr);
}

void
DirectoryController::writeVictim(Addr addr, const DataBlock &data,
                                 bool dirty)
{
    if (checker) {
        checker->noteEvent(CheckerCtrl::Llc, llcCache.introspectName(),
                           addr, dirty ? "dirty" : "clean", "victim-write");
        if (dirty)
            checker->noteSystemWrite(name(), addr, data, FullMask);
        else
            checker->noteCleanData(name(), addr, data, "clean victim");
    }
    const DirConfig &cfg = params.cfg;
    if (dirty) {
        // Dirty victims always reach the LLC; §III-C makes the memory
        // update lazy via the sticky dirty bit.
        llcCache.victimWrite(addr, data, true, !cfg.llcWriteBack);
        return;
    }
    if (cfg.noCleanVicToLlc) {
        // §III-B1: clean victims are "lost in the air" (memory is
        // already coherent with them).
        return;
    }
    bool to_mem = !cfg.noCleanVicToMem && !cfg.llcWriteBack;
    llcCache.victimWrite(addr, data, false, to_mem);
}

// --------------------------------------------------------------------
// System-visible write rules (TCC write-throughs, atomics, DMA writes)
// --------------------------------------------------------------------

void
DirectoryController::writeMasked(Addr addr, const DataBlock &data,
                                 ByteMask mask)
{
    if (params.bug.kind == SeededBug::Kind::DropWrite &&
        params.bug.matchesBlock(addr)) {
        // Seeded bug: writes touching the data word silently lose those
        // bytes.  The mask is narrowed before the checker hook so the
        // shadow never learns the dropped value: only an end-to-end
        // value check (the RandomTester) can find this one — it is the
        // schedule-shrinking target.
        mask &= ~makeMask(8, 8);
        if (!mask)
            return;
    }
    if (checker)
        checker->noteSystemWrite(name(), addr, data, mask);
    // A present LLC copy must observe the write (merge keeps it
    // coherent; in write-back mode this defers the memory update).
    if (llcCache.mergeIfPresent(addr, data, mask))
        return;
    if (params.cfg.useL3OnWT && mask == FullMask) {
        llcCache.victimWrite(addr, data, params.cfg.llcWriteBack,
                             !params.cfg.llcWriteBack);
        return;
    }
    mem.write(addr, data, mask);
}

void
DirectoryController::writeFull(Addr addr, const DataBlock &data)
{
    writeMasked(addr, data, FullMask);
}

// --------------------------------------------------------------------
// Tracked directory (§IV, Table I)
// --------------------------------------------------------------------

void
DirectoryController::handleTracked(Msg msg)
{
    DirEntry *entry = dirArray.lookup(msg.addr);
    // Every tracked dispatch reads the state/sharer bits out of the
    // directory array; that is where metadata flips can strike (an
    // uncorrectable here escalates immediately — no data path exists
    // for poisoned protocol state).
    if (storage)
        storage->metaAccess(metaArrayId, msg.addr, curTick());
    if (entry)
        ++statDirHits;
    else
        ++statDirMisses;
    noteTransition(!entry ? 0 : entry->state == DirState::S ? 1 : 2,
                   msg.type);

    if (!entry) {
        handleUntracked(std::move(msg));
    } else if (entry->state == DirState::S) {
        handleSState(std::move(msg), *entry);
    } else {
        handleOState(std::move(msg), *entry);
    }
}

bool
DirectoryController::ensureDirSpace(const Msg &msg)
{
    if (dirArray.lookup(msg.addr, false) || dirArray.hasFreeWay(msg.addr))
        return true;

    // Directory replacement (§IV-A1): evict an entry, back-invalidating
    // its tracked caches to preserve inclusivity.  The state-aware
    // policy (§VII) prefers clean entries with the fewest sharers.
    auto eligible = [this](Addr a, const DirEntry &) {
        return busyLines.count(a) == 0;
    };
    CacheArray<DirEntry>::Victim victim{0, nullptr};
    if (params.cfg.stateAwareDirRepl) {
        auto clean_eligible = [&](Addr a, const DirEntry &e) {
            return eligible(a, e) && e.state == DirState::S &&
                   !e.overflow && e.ptrCount <= 1;
        };
        victim = dirArray.findVictimAmong(msg.addr, clean_eligible);
        if (busyLines.count(victim.addr))
            victim = dirArray.findVictimAmong(msg.addr, eligible);
    } else {
        victim = dirArray.findVictimAmong(msg.addr, eligible);
    }

    if (busyLines.count(victim.addr)) {
        // Every way is transacting; retry shortly — but bounded.  A
        // pathological interleaving could keep every way busy forever;
        // retrying silently would livelock while still looking like
        // forward progress to the watchdog.  Past the cap the request
        // is parked and surfaced as a livelock diagnostic instead.
        ++statSetConflictRetries;
        Msg retry = msg;
        if (++retry.dirRetries > params.cfg.maxSetConflictRetries) {
            warn("%s: request %s %#llx from client %d exceeded %u "
                 "set-conflict retries (all ways transacting); parking",
                 name().c_str(),
                 std::string(msgTypeName(retry.type)).c_str(),
                 (unsigned long long)retry.addr, retry.sender,
                 params.cfg.maxSetConflictRetries);
            livelockedMsgs.push_back(std::move(retry));
            return false;
        }
        retryPending.push_back(std::move(retry));
        after(params.dirLatency, [this] {
            Msg m = std::move(retryPending.front());
            retryPending.pop_front();
            handleTracked(std::move(m));
        });
        return false;
    }

    ++statDirEvictions;
    ProbeTargets targets =
        trackedTargets(*victim.entry, InvalidMachineId);
    statBackInvals += targets.size();

    std::uint64_t txn = nextTxn++;
    Tbe &tbe = tbes[txn];
    tbe.txn = txn;
    tbe.isEviction = true;
    tbe.evictAddr = victim.addr;
    tbe.haveCont = true;
    tbe.cont = msg;
    tbe.startedAt = curTick();
    busyLines[victim.addr] = txn;

    if (targets.empty()) {
        finishEviction(tbe);
        return false;
    }
    sendProbes(tbe, targets, true);
    return false;
}

void
DirectoryController::finishEviction(Tbe &tbe)
{
    if (tbe.haveProbeData && tbe.probeDataDirty) {
        // The deallocated line's owner returned dirty data: keep it in
        // the LLC like a dirty victim.
        writeVictim(tbe.evictAddr, tbe.probeData, true);
    }
    freeEntry(tbe.evictAddr);
    Addr evict_addr = tbe.evictAddr;
    Msg cont = std::move(tbe.cont);
    bool have_cont = tbe.haveCont;
    tbes.erase(tbe.txn);
    releaseLine(evict_addr);
    if (have_cont)
        handleTracked(std::move(cont));
}

void
DirectoryController::handleUntracked(Msg msg)
{
    const Topology &topo = params.topo;

    // §IX future work: reads of a declared read-only region are never
    // tracked — untracked means uncached-or-read-only here, and the
    // backing data is coherent by construction.
    if (params.cfg.isReadOnly(msg.addr) &&
        (msg.type == MsgType::RdBlk || msg.type == MsgType::RdBlkS ||
         msg.type == MsgType::TccRdBlk)) {
        ++statReadOnlyElided;
        Tbe &tbe = newTbe(msg);
        tbe.forceShared = true;
        sendProbes(tbe, {}, false);
        startBackingRead(tbe);
        return;
    }
    if (params.cfg.isReadOnly(msg.addr) && isWritePermission(msg.type)) {
        warn("write-permission request to declared read-only line %#llx",
             (unsigned long long)msg.addr);
    }

    bool allocates =
        msg.type == MsgType::RdBlk || msg.type == MsgType::RdBlkS ||
        msg.type == MsgType::RdBlkM || msg.type == MsgType::TccRdBlk ||
        ((msg.type == MsgType::WriteThrough || msg.type == MsgType::Flush) &&
         msg.hit);
    if (allocates && !ensureDirSpace(msg))
        return; // parked behind a directory eviction

    switch (msg.type) {
      case MsgType::VicClean:
      case MsgType::VicDirty:
        panic("victims are routed to handleVictimTracked");
      case MsgType::RdBlk: {
        // Table I, I-state: grant Exclusive, track as (conservative)
        // owner, no probes: untracked means uncached (§IV-A).
        DirEntry &e = dirArray.allocate(msg.addr);
        e.state = DirState::O;
        e.owner = msg.sender;
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, {}, false); // untracked => uncached: all elided
        startBackingRead(tbe);
        break;
      }
      case MsgType::RdBlkS: {
        DirEntry &e = dirArray.allocate(msg.addr);
        e.state = DirState::S;
        addSharer(e, msg.sender);
        Tbe &tbe = newTbe(msg);
        tbe.forceShared = true;
        sendProbes(tbe, {}, false);
        startBackingRead(tbe);
        break;
      }
      case MsgType::RdBlkM: {
        DirEntry &e = dirArray.allocate(msg.addr);
        e.state = DirState::O;
        e.owner = msg.sender;
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, {}, true);
        startBackingRead(tbe);
        break;
      }
      case MsgType::TccRdBlk: {
        DirEntry &e = dirArray.allocate(msg.addr);
        e.state = DirState::S;
        addSharer(e, msg.sender);
        Tbe &tbe = newTbe(msg);
        tbe.forceShared = true;
        sendProbes(tbe, {}, false);
        startBackingRead(tbe);
        break;
      }
      case MsgType::WriteThrough:
      case MsgType::Flush: {
        if (msg.hit) {
            // The (write-through-mode) TCC retains a copy: track it so
            // CPU writes invalidate it.
            DirEntry &e = dirArray.allocate(msg.addr);
            e.state = DirState::S;
            addSharer(e, msg.sender);
        }
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, {}, true);
        maybeComplete(tbe);
        tryRetire(tbe);
        break;
      }
      case MsgType::Atomic:
      case MsgType::DmaRead: {
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, {}, isWritePermission(msg.type));
        startBackingRead(tbe);
        break;
      }
      case MsgType::DmaWrite: {
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, {}, true);
        maybeComplete(tbe);
        tryRetire(tbe);
        break;
      }
      default:
        panic("%s: unexpected request %s", name().c_str(),
              std::string(msgTypeName(msg.type)).c_str());
    }
    (void)topo;
}

void
DirectoryController::handleSState(Msg msg, DirEntry &entry)
{
    switch (msg.type) {
      case MsgType::RdBlk:
      case MsgType::RdBlkS:
      case MsgType::TccRdBlk: {
        // S state: the LLC is coherent with every cached copy, so
        // probes are elided and RdBlk is forced to a Shared grant
        // (the response is from the LLC, §IV-A).
        addSharer(entry, msg.sender);
        Tbe &tbe = newTbe(msg);
        tbe.forceShared = true;
        sendProbes(tbe, {}, false); // accounts the elided broadcast
        startBackingRead(tbe);
        break;
      }
      case MsgType::RdBlkM: {
        ProbeTargets targets = trackedTargets(entry, msg.sender);
        bool requester_shares =
            params.cfg.tracking == DirTracking::Sharers && !entry.overflow &&
            (entry.sharers & (1ull << msg.sender));
        entry.state = DirState::O;
        entry.owner = msg.sender;
        entry.sharers = 0;
        entry.ptrCount = 0;
        entry.overflow = false;
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, targets, true);
        if (requester_shares) {
            // The upgrading requester still holds a (clean) copy: the
            // grant needs no data and the LLC read is elided.
            tbe.noData = true;
        } else {
            startBackingRead(tbe);
        }
        maybeComplete(tbe);
        tryRetire(tbe);
        break;
      }
      case MsgType::WriteThrough:
      case MsgType::Flush: {
        ProbeTargets targets = trackedTargets(entry, msg.sender);
        bool retains = msg.hit;
        MachineId sender = msg.sender;
        if (retains) {
            entry.state = DirState::S;
            entry.owner = InvalidMachineId;
            entry.sharers = 0;
            entry.ptrCount = 0;
            entry.overflow = false;
            addSharer(entry, sender);
        } else {
            freeEntry(msg.addr);
        }
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, targets, true);
        maybeComplete(tbe);
        tryRetire(tbe);
        break;
      }
      case MsgType::Atomic: {
        ProbeTargets targets = trackedTargets(entry, msg.sender);
        freeEntry(msg.addr);
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, targets, true);
        startBackingRead(tbe);
        break;
      }
      case MsgType::DmaRead: {
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, {}, false);
        startBackingRead(tbe);
        break;
      }
      case MsgType::DmaWrite: {
        ProbeTargets targets = trackedTargets(entry, msg.sender);
        freeEntry(msg.addr);
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, targets, true);
        maybeComplete(tbe);
        tryRetire(tbe);
        break;
      }
      default:
        panic("%s: illegal request %s in directory state S",
              name().c_str(), std::string(msgTypeName(msg.type)).c_str());
    }
}

void
DirectoryController::handleOState(Msg msg, DirEntry &entry)
{
    MachineId owner = entry.owner;
    Addr addr = msg.addr;

    switch (msg.type) {
      case MsgType::RdBlk:
      case MsgType::RdBlkS:
      case MsgType::TccRdBlk: {
        if (msg.sender == owner) {
            // Footnotes c-e of Table I: an I-cache miss while the L2
            // line is E signals an E->S transition; no other sharers
            // can exist and the LLC/memory is coherent.
            panic_if(msg.type != MsgType::RdBlkS,
                     "%s: %s from the owner in state O", name().c_str(),
                     std::string(msgTypeName(msg.type)).c_str());
            entry.state = DirState::S;
            entry.owner = InvalidMachineId;
            entry.sharers = 0;
            entry.ptrCount = 0;
            entry.overflow = false;
            addSharer(entry, msg.sender);
            Tbe &tbe = newTbe(msg);
            tbe.forceShared = true;
            startBackingRead(tbe);
            break;
        }
        // Probe only the owner; the LLC read is elided (§IV-A).
        addSharer(entry, msg.sender);
        Tbe &tbe = newTbe(msg);
        tbe.forceShared = true;
        tbe.onRespond = [this, addr, owner](Tbe &t) {
            panic_if(!t.haveProbeData,
                     "owner probe returned no data for %#llx",
                     (unsigned long long)addr);
            if (!t.probeDataDirty) {
                // The owner held E (clean): memory/LLC are coherent,
                // so the line is now plain Shared.
                DirEntry *e = dirArray.lookup(addr, false);
                panic_if(!e, "entry vanished mid-transaction");
                e->state = DirState::S;
                e->owner = InvalidMachineId;
                addSharer(*e, owner);
            }
        };
        sendProbes(tbe, {owner}, false);
        break;
      }
      case MsgType::RdBlkM: {
        ProbeTargets targets = trackedTargets(entry, msg.sender);
        bool upgrade = msg.sender == owner;
        entry.owner = msg.sender;
        entry.sharers = 0;
        entry.ptrCount = 0;
        entry.overflow = false;
        Tbe &tbe = newTbe(msg);
        if (upgrade) {
            // O->M upgrade: the owner keeps its (current) data.
            tbe.noData = true;
        } else {
            tbe.onRespond = [this, addr](Tbe &t) {
                panic_if(!t.haveProbeData,
                         "owner probe returned no data for %#llx",
                         (unsigned long long)addr);
            };
        }
        sendProbes(tbe, targets, true);
        maybeComplete(tbe);
        tryRetire(tbe);
        break;
      }
      case MsgType::WriteThrough:
      case MsgType::Flush: {
        ProbeTargets targets = trackedTargets(entry, msg.sender);
        if (msg.hit) {
            entry.state = DirState::S;
            entry.owner = InvalidMachineId;
            entry.sharers = 0;
            entry.ptrCount = 0;
            entry.overflow = false;
            addSharer(entry, msg.sender);
        } else {
            freeEntry(addr);
        }
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, targets, true);
        maybeComplete(tbe);
        tryRetire(tbe);
        break;
      }
      case MsgType::Atomic: {
        ProbeTargets targets = trackedTargets(entry, msg.sender);
        freeEntry(addr);
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, targets, true);
        // The owner's probe response supplies the data; the LLC read
        // is elided.  (Targets can never be empty: the owner is L2.)
        maybeComplete(tbe);
        tryRetire(tbe);
        break;
      }
      case MsgType::DmaRead: {
        Tbe &tbe = newTbe(msg);
        tbe.onRespond = [this, addr, owner](Tbe &t) {
            panic_if(!t.haveProbeData,
                     "owner probe returned no data for %#llx",
                     (unsigned long long)addr);
            if (!t.probeDataDirty) {
                DirEntry *e = dirArray.lookup(addr, false);
                panic_if(!e, "entry vanished mid-transaction");
                e->state = DirState::S;
                e->owner = InvalidMachineId;
                addSharer(*e, owner);
            }
        };
        sendProbes(tbe, {owner}, false);
        break;
      }
      case MsgType::DmaWrite: {
        ProbeTargets targets = trackedTargets(entry, msg.sender);
        freeEntry(addr);
        Tbe &tbe = newTbe(msg);
        sendProbes(tbe, targets, true);
        maybeComplete(tbe);
        tryRetire(tbe);
        break;
      }
      default:
        panic("%s: illegal request %s in directory state O",
              name().c_str(), std::string(msgTypeName(msg.type)).c_str());
    }
}

void
DirectoryController::handleVictimTracked(const Msg &msg)
{
    if (consumeCancelledVic(msg))
        return;
    DirEntry *entry = dirArray.lookup(msg.addr);
    bool dirty = msg.type == MsgType::VicDirty;
    noteTransition(!entry ? 0 : entry->state == DirState::S ? 1 : 2,
                   msg.type);

    auto ack_and_release = [&] {
        Msg ack;
        ack.type = MsgType::WBAck;
        ack.addr = msg.addr;
        ack.obsId = msg.obsId;
        ack.sender = params.topo.dirId();
        obsEmit(msg.obsId, ObsPhase::Respond, msg.addr);
        sendToClient(msg.sender, std::move(ack));
        releaseLine(msg.addr);
    };

    if (!entry) {
        // Untracked victim: it raced with a directory eviction whose
        // back-invalidation already collected the data.  Drop it.
        ++statStaleVicDropped;
        ack_and_release();
        return;
    }

    if (entry->state == DirState::S) {
        panic_if(dirty, "%s: VicDirty in directory state S (illegal)",
                 name().c_str());
        writeVictim(msg.addr, msg.data, false);
        removeSharer(*entry, msg.sender);
        if (sharersEmpty(*entry))
            freeEntry(msg.addr);
        ack_and_release();
        return;
    }

    // State O.
    if (msg.sender != entry->owner) {
        if (dirty) {
            // Stale VicDirty from a previous owner (ownership moved
            // while the victim was in flight): the data was already
            // collected by a probe.  Drop it.
            ++statStaleVicDropped;
        } else {
            // A (possibly dirty-)sharer evicting: just untrack it.
            removeSharer(*entry, msg.sender);
        }
        ack_and_release();
        return;
    }

    if (dirty) {
        writeVictim(msg.addr, msg.data, true);
        entry->owner = InvalidMachineId;
        if (sharersEmpty(*entry)) {
            freeEntry(msg.addr);
        } else {
            // Dirty sharers may remain (footnote h); the LLC now holds
            // the reconciled data, so the line is Shared.
            entry->state = DirState::S;
        }
    } else {
        // VicClean from the owner: the line was E (footnote g), so no
        // sharers can exist; free the entry.
        writeVictim(msg.addr, msg.data, false);
        freeEntry(msg.addr);
    }
    ack_and_release();
}

// --------------------------------------------------------------------
// Introspection
// --------------------------------------------------------------------

bool
DirectoryController::tracks(Addr addr) const
{
    return dirArray.peek(addr) != nullptr;
}

DirState
DirectoryController::trackedState(Addr addr) const
{
    const DirEntry *e = dirArray.peek(addr);
    panic_if(!e, "trackedState of untracked line");
    return e->state;
}

MachineId
DirectoryController::trackedOwner(Addr addr) const
{
    const DirEntry *e = dirArray.peek(addr);
    panic_if(!e, "trackedOwner of untracked line");
    return e->owner;
}

bool
DirectoryController::isSharer(Addr addr, MachineId id) const
{
    const DirEntry *e = dirArray.peek(addr);
    return e && (e->sharers & (1ull << id));
}

void
DirectoryController::inFlightTransactions(Tick now,
                                          std::vector<TxnInfo> &out) const
{
    for (const auto &[txn, tbe] : tbes) {
        TxnInfo info;
        info.controller = name();
        info.addr = tbe.isEviction ? tbe.evictAddr : tbe.req.addr;
        info.txnId = txn;
        std::ostringstream st;
        if (tbe.isEviction)
            st << "back-invalidation";
        else
            st << msgTypeName(tbe.req.type) << " from client "
               << tbe.req.sender;
        st << " pendingAcks=" << tbe.pendingAcks;
        if (tbe.responded)
            st << " responded";
        info.state = st.str();
        if (tbe.pendingAcks)
            info.waitingFor = "probe acks";
        else if (tbe.needBacking)
            info.waitingFor = "LLC/memory data";
        else if (!tbe.responded)
            info.waitingFor = "dispatch";
        else if (!tbe.unblocked)
            info.waitingFor = "requester unblock";
        info.age = now >= tbe.startedAt ? now - tbe.startedAt : 0;
        out.push_back(std::move(info));
    }
    for (const auto &[addr, queue] : stalled) {
        TxnInfo info;
        info.controller = name();
        info.addr = addr;
        std::ostringstream st;
        st << queue.size() << " request(s) stalled behind busy line";
        info.state = st.str();
        info.waitingFor = "line unblock";
        out.push_back(std::move(info));
    }
}

std::string
DirectoryController::stateSummary() const
{
    std::size_t stalled_msgs = 0;
    for (const auto &[addr, queue] : stalled)
        stalled_msgs += queue.size();
    std::ostringstream os;
    os << name() << ": " << tbes.size() << " in-flight txns, "
       << busyLines.size() << " busy lines, " << stalled_msgs
       << " stalled requests, " << livelockedMsgs.size()
       << " livelocked, " << dirArray.occupancy() << " tracked entries";
    return os.str();
}

void
DirectoryController::diagnostics(std::vector<std::string> &out) const
{
    for (const Msg &m : livelockedMsgs) {
        std::ostringstream os;
        os << name() << ": livelock — " << msgTypeName(m.type) << " 0x"
           << std::hex << m.addr << std::dec << " from client "
           << m.sender << " parked after "
           << params.cfg.maxSetConflictRetries
           << " set-conflict retries (all directory ways transacting)";
        out.push_back(os.str());
    }
}

std::uint64_t
DirectoryController::progressCount() const
{
    return statRequests.value() + statVictims.value();
}

void
DirectoryController::serialize(JsonValue &out) const
{
    panic_if(!tbes.empty() || !busyLines.empty() || !stalled.empty() ||
                 !dispatchPending.empty() || !retryPending.empty() ||
                 !cancelledVics.empty() || !livelockedMsgs.empty(),
             "%s: serialize with transactions in flight", name().c_str());

    JsonValue lines = JsonValue::makeArray();
    dirArray.forEachWay([&](unsigned set, unsigned way, Addr tag,
                            const DirEntry &e) {
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(std::uint64_t(set)));
        row.push(JsonValue(std::uint64_t(way)));
        row.push(JsonValue(std::uint64_t(tag)));
        row.push(JsonValue(std::uint64_t(e.state)));
        row.push(JsonValue(std::int64_t(e.owner)));
        row.push(JsonValue(e.sharers));
        row.push(JsonValue(std::uint64_t(e.ptrCount)));
        row.push(JsonValue(e.overflow));
        lines.push(std::move(row));
    });
    out.set("dir", std::move(lines));
    JsonValue repl = JsonValue::makeObject();
    dirArray.replacement().serialize(repl);
    out.set("dirRepl", std::move(repl));

    out.set("nextTxn", JsonValue(nextTxn));
    out.set("nextDispatchFree", JsonValue(std::uint64_t(nextDispatchFree)));

    JsonValue llcState = JsonValue::makeObject();
    llcCache.serialize(llcState);
    out.set("llc", std::move(llcState));

    JsonValue guards = JsonValue::makeArray();
    for (const auto &g : ingressGuards)
        guards.push(JsonValue(g->lastSeq));
    out.set("ingress", std::move(guards));
}

void
DirectoryController::restore(const JsonValue &in)
{
    for (const JsonValue &row : in.at("dir").items()) {
        unsigned set = static_cast<unsigned>(row.at(0).asUInt());
        unsigned way = static_cast<unsigned>(row.at(1).asUInt());
        Addr tag = row.at(2).asUInt();
        std::uint64_t state = row.at(3).asUInt();
        if (state > std::uint64_t(DirState::O)) {
            throw SimError("bad directory state " + std::to_string(state),
                           "snapshot");
        }
        DirEntry &e = dirArray.restoreLine(set, way, tag);
        e.state = static_cast<DirState>(state);
        e.owner = static_cast<MachineId>(row.at(4).asInt());
        e.sharers = row.at(5).asUInt();
        e.ptrCount = static_cast<unsigned>(row.at(6).asUInt());
        e.overflow = row.at(7).asBool();
    }
    dirArray.replacement().restore(in.at("dirRepl"));

    nextTxn = in.at("nextTxn").asUInt();
    nextDispatchFree = static_cast<Tick>(in.at("nextDispatchFree").asUInt());

    llcCache.restore(in.at("llc"));

    const JsonValue &guards = in.at("ingress");
    if (guards.items().size() != ingressGuards.size()) {
        throw SimError("ingress guard count mismatch (config drift?)",
                       "snapshot");
    }
    for (std::size_t i = 0; i < ingressGuards.size(); ++i)
        ingressGuards[i]->lastSeq = guards.at(i).asUInt();
}

} // namespace hsc
