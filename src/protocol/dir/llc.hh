/**
 * @file
 * The shared last-level cache behind the system directory (§II-D).
 *
 * The LLC is a non-inclusive, non-exclusive *victim* cache: lines are
 * allocated only by victim write-backs (from CorePair L2s and,
 * optionally, TCC write-throughs), never on the memory refill path.
 *
 * Two write policies are supported:
 *  - write-through (the gem5 baseline): every LLC write also writes
 *    main memory, so LLC lines are never dirty;
 *  - write-back (§III-C): victims write only the LLC with a sticky
 *    dirty bit, and memory is updated when a dirty LLC line is itself
 *    victimised.
 */

#ifndef HSC_PROTOCOL_DIR_LLC_HH
#define HSC_PROTOCOL_DIR_LLC_HH

#include <optional>

#include "cache/cache_array.hh"
#include "mem/main_memory.hh"
#include "sim/introspect.hh"
#include "stats/stats.hh"

namespace hsc
{

class StorageFaultInjector;

/** Parameters of the LLC. */
struct LlcParams
{
    CacheGeometry geom{16384, 16};  ///< 16 MB, 16-way (Table II)
    bool writeBack = false;         ///< §III-C llcWB
};

/**
 * Functional LLC model; timing (the 20-cycle access) is charged by
 * the owning directory controller.
 */
class LlcCache : public ProtocolIntrospect
{
  public:
    LlcCache(std::string name, const LlcParams &params, MainMemory &mem);

    /** Read result: data when hit.  @p now stamps storage-fault
     *  injection (the LLC itself is untimed; the owning directory
     *  charges latency and supplies the tick). */
    std::optional<DataBlock> read(Addr addr, Tick now = 0);

    /** LLC data is a protected array (null = no storage faults). */
    void
    attachStorageFault(StorageFaultInjector *s, unsigned array_id)
    {
        storage = s;
        storageArrayId = array_id;
    }

    /** Peek without recency update or stats. */
    const DataBlock *peek(Addr addr) const;

    /**
     * Victim-cache write of a full block (L2 victims, back-invalidated
     * dirty data, full-line TCC write-throughs).  Allocates, evicting
     * an LLC victim if needed; in write-back mode the dirty bit is
     * sticky-ORed, in write-through mode @p also_memory selects
     * whether main memory is written too (§III-B turns it off for
     * clean victims).
     */
    void victimWrite(Addr addr, const DataBlock &data, bool dirty,
                     bool also_memory);

    /**
     * Merge @p mask bytes into a *present* line; returns false on
     * miss.  Write-through mode propagates the bytes to memory;
     * write-back mode marks the line dirty instead.
     */
    bool mergeIfPresent(Addr addr, const DataBlock &data, ByteMask mask);

    /** True when the line is present and dirty. */
    bool lineDirty(Addr addr) const;

    /** Drop the line; a dirty line is written back to memory first. */
    void invalidate(Addr addr);

    void regStats(StatRegistry &reg);

    std::size_t occupancy() const { return array.occupancy(); }
    bool writeBackMode() const { return params.writeBack; }

    /** @{ Snapshot hooks: lines (data + sticky dirty bit) plus the
     *  replacement metadata. */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

    /** @{ ProtocolIntrospect.  The LLC is functional (access timing is
     *  charged by the owning directory), so it has no in-flight
     *  transactions of its own. */
    std::string introspectName() const override { return name; }
    void inFlightTransactions(Tick, std::vector<TxnInfo> &) const override
    {
    }
    std::string stateSummary() const override;
    /** @} */

  private:
    struct Entry
    {
        DataBlock data;
        bool dirty = false;
    };

    /** Make room in the set of @p addr, writing back a dirty victim. */
    void makeRoom(Addr addr);

    const std::string name;
    const LlcParams params;
    MainMemory &mem;
    CacheArray<Entry> array;

    StorageFaultInjector *storage = nullptr;
    unsigned storageArrayId = 0;

    Counter statReads, statReadHits, statWrites, statAllocs;
    Counter statEvictions, statDirtyEvictions;
};

} // namespace hsc

#endif // HSC_PROTOCOL_DIR_LLC_HH
