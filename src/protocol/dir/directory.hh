/**
 * @file
 * The system-level directory — the paper's primary contribution.
 *
 * Baseline (DirTracking::None) reproduces the stateless gem5 HSC
 * directory of §II-D/Fig. 2: every permission request broadcasts
 * probes (invalidating for write-permission requests, downgrading for
 * reads; downgrades skip the TCC) and reads the write-through victim
 * LLC, falling back to main memory.
 *
 * The enhancements are independent configuration knobs (DirConfig):
 *  - §III-A  earlyDirtyResp: answer a downgrade transaction from the
 *            first dirty probe ack without waiting for the rest;
 *  - §III-B  noCleanVicToMem (+ §III-B1 noCleanVicToLlc);
 *  - §III-C  llcWriteBack: victims write only the LLC (sticky dirty
 *            bit), memory reconciles on LLC eviction;
 *  - §IV     owner/sharer tracking: stable states I/S/O per Table I,
 *            directory-as-a-cache with inclusion back-invalidations,
 *            full-map or limited-pointer sharer codes.
 *
 * Transactions block their line (gem5's U -> B* states); requests and
 * victims to blocked lines stall in per-line FIFOs and replay at
 * unblock.  Probes and acks carry the transaction id so late acks of
 * an early-responded transaction cannot be confused with a successor.
 */

#ifndef HSC_PROTOCOL_DIR_DIRECTORY_HH
#define HSC_PROTOCOL_DIR_DIRECTORY_HH

#include <deque>
#include <functional>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

#include "cache/cache_array.hh"
#include "mem/main_memory.hh"
#include "mem/message_buffer.hh"
#include "mem/transport.hh"
#include "obs/span.hh"
#include "protocol/dir/llc.hh"
#include "protocol/types.hh"
#include "sim/clocked.hh"
#include "sim/pool_alloc.hh"
#include "sim/small_vec.hh"
#include "sim/introspect.hh"
#include "stats/stats.hh"

namespace hsc
{

class CoherenceChecker;
class ObsTracer;

/** Stable tracked states of a directory entry (§IV-A). */
enum class DirState : std::uint8_t
{
    S, ///< cached copies are clean w.r.t. the LLC
    O, ///< one cache may hold the line modified (M/O/E conservative)
};

/** Timing/geometry parameters of the directory. */
struct DirParams
{
    Topology topo;
    DirConfig cfg;
    LlcParams llc;
    Cycles dirLatency = 20;  ///< Table II directory access latency
    Cycles llcLatency = 20;  ///< Table II LLC access latency
    /** Minimum spacing between transaction dispatches (directory
     *  occupancy); banking (§VII) divides this pressure. */
    Cycles servicePeriod = 1;
    /** log2(number of banks): low block-index bits to skip when
     *  indexing this bank's directory array. */
    unsigned bankIndexShift = 0;
    /** True when the TCC runs write-back (affects WT tracking). */
    bool tccWriteBack = false;
    SeededBug bug{};  ///< test-only corruption hook
};

/**
 * The directory controller.
 */
class DirectoryController : public Clocked, public ProtocolIntrospect
{
  public:
    DirectoryController(std::string name, EventQueue &eq, ClockDomain clk,
                        const DirParams &params, MainMemory &mem);

    /**
     * Attach the channel toward client @p id (the directory sends
     * probes and responses on it).  Must be called for every client.
     */
    void bindToClient(MachineId id, MessageBuffer &buf);

    /** Attach a client->directory channel (requests, acks, unblocks). */
    void bindFromClient(MessageBuffer &buf);

    /** Attach the runtime invariant checker (null = disabled). */
    void attachChecker(CoherenceChecker *c) { checker = c; }

    /** Attach the observability tracer (null = disabled). */
    void attachTracer(ObsTracer *t);

    /** Directory state bits are a SECDED-protected *metadata* array
     *  (@p meta_id); the LLC data array is @p llc_id. */
    void
    attachStorageFault(StorageFaultInjector *s, unsigned meta_id,
                       unsigned llc_id)
    {
        storage = s;
        metaArrayId = meta_id;
        llcCache.attachStorageFault(s, llc_id);
    }

    /** True when no transaction is in flight. */
    bool idle() const { return tbes.empty() && busyLines.empty(); }

    /** Transactions currently holding a TBE. */
    std::size_t inFlightCount() const { return tbes.size(); }

    void regStats(StatRegistry &reg);

    LlcCache &llc() { return llcCache; }
    const DirParams &dirParams() const { return params; }

    /** @{ Test introspection of the tracking state. */
    bool tracks(Addr addr) const;
    DirState trackedState(Addr addr) const;
    MachineId trackedOwner(Addr addr) const;
    bool isSharer(Addr addr, MachineId id) const;
    std::size_t trackedEntries() const { return dirArray.occupancy(); }
    /** @} */

    std::uint64_t probesSent() const { return statProbesSent.value(); }

    /** @{ ProtocolIntrospect. */
    std::string introspectName() const override { return name(); }
    void inFlightTransactions(Tick now,
                              std::vector<TxnInfo> &out) const override;
    std::string stateSummary() const override;
    void diagnostics(std::vector<std::string> &out) const override;
    std::uint64_t progressCount() const override;
    /** @} */

    /** @{ Snapshot hooks.  Valid only at a quiesce point: no TBEs,
     *  no busy lines, no stalled or pending requests. */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    /** One tracked line. */
    struct DirEntry
    {
        DirState state = DirState::S;
        MachineId owner = InvalidMachineId;
        std::uint64_t sharers = 0;  ///< bitmap over cache clients
        unsigned ptrCount = 0;      ///< limited-pointer occupancy
        bool overflow = false;      ///< limited-pointer overflow
    };

    /** Transaction buffer entry. */
    struct Tbe
    {
        std::uint64_t txn = 0;
        Msg req;
        bool isEviction = false;     ///< directory back-invalidation
        Addr evictAddr = 0;
        bool haveCont = false;
        Msg cont;                    ///< request resumed after eviction

        unsigned pendingAcks = 0;
        bool needBacking = false;
        bool sawHit = false;
        bool haveProbeData = false;
        bool probeDataDirty = false;
        DataBlock probeData;
        bool haveBackingData = false;
        DataBlock backingData;

        Tick startedAt = 0;
        bool responded = false;
        bool unblocked = false;
        bool forceShared = false;  ///< deny Exclusive (tracked S/O reads)
        bool noData = false;       ///< upgrade grant: requester keeps data

        /** Tracked-mode state finalisation, run at respond time. */
        std::function<void(Tbe &)> onRespond;
    };

    /** Probe target list: inline up to 16 machines (heap only on
     *  larger topologies), so target computation never allocates. */
    using ProbeTargets = SmallVec<MachineId, 16>;

    void receive(Msg &&msg);
    void dispatch(Msg msg);

    // --- Baseline stateless paths -------------------------------------
    void handleStateless(Msg msg);
    void handleVictimStateless(const Msg &msg);

    // --- Tracked paths (§IV) -------------------------------------------
    void handleTracked(Msg msg);
    void handleUntracked(Msg msg);
    void handleSState(Msg msg, DirEntry &entry);
    void handleOState(Msg msg, DirEntry &entry);
    void handleVictimTracked(const Msg &msg);

    /**
     * Ensure the directory set of @p msg.addr has room to allocate;
     * when an eviction is needed the message is parked and re-run
     * afterwards.  @return true when dispatch may continue now.
     */
    bool ensureDirSpace(const Msg &msg);
    void finishEviction(Tbe &tbe);

    // --- Shared transaction machinery ----------------------------------
    Tbe &newTbe(const Msg &msg);
    void sendProbes(Tbe &tbe, const ProbeTargets &targets,
                    bool invalidating);
    void startBackingRead(Tbe &tbe);
    void handleProbeResp(const Msg &msg);
    void handleUnblock(const Msg &msg);
    void maybeComplete(Tbe &tbe);
    void respond(Tbe &tbe);
    void tryRetire(Tbe &tbe);
    void releaseLine(Addr addr);

    /** All probe-able clients except @p exclude (TCC only if inval). */
    ProbeTargets broadcastTargets(bool invalidating,
                                  MachineId exclude) const;
    /** Size of broadcastTargets without building the list (probe
     *  elision stats run on every request, so stay allocation-free). */
    unsigned broadcastCount(bool invalidating, MachineId exclude) const;
    /** Tracked targets of @p entry (owner-tracking S falls back to
     *  broadcast), minus @p exclude. */
    ProbeTargets trackedTargets(const DirEntry &entry,
                                MachineId exclude) const;

    /** @{ Sharer-set helpers honouring the limited-pointer mode. */
    void addSharer(DirEntry &entry, MachineId id);
    void removeSharer(DirEntry &entry, MachineId id);
    bool sharersEmpty(const DirEntry &entry) const;
    ProbeTargets sharerList(const DirEntry &entry) const;
    /** @} */

    /** Free the tracked entry of @p addr if present. */
    void freeEntry(Addr addr);

    /** @{ System-visible write rules (WT / Atomic / DMA writes). */
    void writeMasked(Addr addr, const DataBlock &data, ByteMask mask);
    void writeFull(Addr addr, const DataBlock &data);
    /** @} */

    /** Write-back policy for L2 victims and collected dirty data. */
    void writeVictim(Addr addr, const DataBlock &data, bool dirty);

    void sendToClient(MachineId id, Msg msg);

    /** Charge @p extra directory cycles, then run @p fn.  @p fn is a
     *  function template parameter so the continuation is stored
     *  inline in the event (no std::function heap traffic). */
    template <typename Fn>
    void
    after(Cycles extra, Fn &&fn)
    {
        scheduleCycles(extra, std::forward<Fn>(fn),
                       EventPriority::Default, /*progress=*/true);
    }

    bool isVictim(MsgType t) const
    {
        return t == MsgType::VicClean || t == MsgType::VicDirty;
    }

    const DirParams params;
    MainMemory &mem;
    LlcCache llcCache;
    CacheArray<DirEntry> dirArray;

    CoherenceChecker *checker = nullptr;

    StorageFaultInjector *storage = nullptr;
    unsigned metaArrayId = 0;

    ObsTracer *tracer = nullptr;
    std::uint16_t obsCtrl = 0;

    /** Span emission helper; no-op when untraced (id 0 / tracer off). */
    void obsEmit(std::uint64_t obs_id, ObsPhase phase, Addr addr,
                 std::uint32_t arg = 0);

    std::vector<MessageBuffer *> toClient;

    PoolUMap<std::uint64_t, Tbe> tbes;
    std::uint64_t nextTxn = 1;
    Tick nextDispatchFree = 0;

    /** Requests awaiting their serialised dispatch slot; dispatch
     *  events capture [this] only and pop the front (slots are handed
     *  out in FIFO order, so the front is always the due request). */
    RingBuf<Msg> dispatchPending;

    /** Set-conflict retries awaiting their dirLatency replay, oldest
     *  first (all retries use the same fixed delay, so replay events
     *  fire in push order and the front is always the due one). */
    RingBuf<Msg> retryPending;

    /** Schedule @p msg's dispatch, serialised by the service period. */
    void scheduleDispatch(Msg msg);

    /** Blocked lines -> transaction id (0 for victim processing). */
    PoolUMap<Addr, std::uint64_t> busyLines;
    PoolUMap<Addr, SmallVec<Msg, 1>> stalled;

    /**
     * In-flight victims cancelled by an invalidating probe that hit
     * the sender's victim buffer: (line, sender) -> count.  The next
     * matching VicClean/VicDirty is acknowledged and dropped.
     */
    PoolMap<std::pair<Addr, MachineId>, unsigned> cancelledVics;

    /** Consume a cancellation mark for @p msg; true when dropped. */
    bool consumeCancelledVic(const Msg &msg);

    /**
     * Requests that exceeded maxSetConflictRetries waiting for a
     * directory way: parked here (the line stays blocked, so the
     * requester wedges and the watchdog surfaces the diagnosis).
     */
    std::vector<Msg> livelockedMsgs;

    // Statistics.
    Counter statRequests, statVictims, statStalls;
    Counter statSetConflictRetries;
    Counter statProbesSent, statProbeBroadcasts, statProbeMulticasts;
    Counter statProbesElided;
    Counter statEarlyResponses;
    Counter statDirHits, statDirMisses, statDirEvictions, statBackInvals;
    Counter statStaleVicDropped;
    Counter statReadOnlyElided;
    Counter statAtomics, statWriteThroughs, statDmaReads, statDmaWrites;

    /** @{ Controller-ingress exactly-once guard (DESIGN.md §10):
     *  with the transport healthy the counter stays 0. */
    std::vector<std::unique_ptr<IngressDedup>> ingressGuards;
    Counter statIngressDups;
    bool ingressGuarded = false;
    /** @} */

    /** Transaction latency (dispatch to retire), in CPU cycles. */
    Histogram statTxnLatency{8, 64};

    /** Observed Table I transition counts: [I,S,O] x request type. */
    static constexpr unsigned NumMsgKinds = 19;
    Counter statTableI[3][NumMsgKinds];

    /** Record a Table I transition observation. */
    void
    noteTransition(unsigned state_row, MsgType t)
    {
        ++statTableI[state_row][static_cast<unsigned>(t)];
    }
};

} // namespace hsc

#endif // HSC_PROTOCOL_DIR_DIRECTORY_HH
