#include "protocol/dir/llc.hh"

#include "mem/storage_fault.hh"
#include "sim/json.hh"
#include "sim/sim_error.hh"

namespace hsc
{

LlcCache::LlcCache(std::string name, const LlcParams &params,
                   MainMemory &mem)
    : name(std::move(name)), params(params), mem(mem),
      array(this->name + ".array", params.geom)
{
}

void
LlcCache::regStats(StatRegistry &reg)
{
    reg.addCounter(name + ".reads", &statReads);
    reg.addCounter(name + ".readHits", &statReadHits);
    reg.addCounter(name + ".writes", &statWrites);
    reg.addCounter(name + ".allocs", &statAllocs);
    reg.addCounter(name + ".evictions", &statEvictions);
    reg.addCounter(name + ".dirtyEvictions", &statDirtyEvictions);
}

std::optional<DataBlock>
LlcCache::read(Addr addr, Tick now)
{
    ++statReads;
    if (Entry *e = array.lookup(addr)) {
        ++statReadHits;
        if (storage)
            storage->access(storageArrayId, addr, e->data, now);
        return e->data;
    }
    return std::nullopt;
}

const DataBlock *
LlcCache::peek(Addr addr) const
{
    const Entry *e = array.peek(addr);
    return e ? &e->data : nullptr;
}

void
LlcCache::makeRoom(Addr addr)
{
    if (array.hasFreeWay(addr))
        return;
    auto victim = array.findVictim(addr);
    ++statEvictions;
    if (victim.entry->dirty) {
        // Write-back mode: evictions of dirty lines reconcile memory
        // (§III-C); in write-through mode lines are never dirty.
        ++statDirtyEvictions;
        mem.write(victim.addr, victim.entry->data);
    }
    array.invalidate(victim.addr);
}

void
LlcCache::victimWrite(Addr addr, const DataBlock &data, bool dirty,
                      bool also_memory)
{
    ++statWrites;
    Entry *e = array.lookup(addr);
    if (!e) {
        makeRoom(addr);
        e = &array.allocate(addr);
        ++statAllocs;
    }
    e->data = data;
    // The victim write rewrites every cell of the LLC line, repairing
    // any latent flip at this address.
    if (storage)
        storage->noteFullOverwrite(storageArrayId, addr);
    if (params.writeBack) {
        // The dirty bit is sticky: set at the first dirty victim
        // write, cleared only by eviction (§III-C).
        e->dirty = e->dirty || dirty;
    } else if (also_memory) {
        mem.write(addr, data);
    }
}

bool
LlcCache::mergeIfPresent(Addr addr, const DataBlock &data, ByteMask mask)
{
    Entry *e = array.lookup(addr);
    if (!e)
        return false;
    ++statWrites;
    e->data.merge(data, mask);
    if (params.writeBack)
        e->dirty = true;
    else
        mem.write(addr, data, mask);
    return true;
}

bool
LlcCache::lineDirty(Addr addr) const
{
    const Entry *e = array.peek(addr);
    return e && e->dirty;
}

void
LlcCache::invalidate(Addr addr)
{
    if (Entry *e = array.lookup(addr, false)) {
        if (e->dirty)
            mem.write(addr, e->data);
        array.invalidate(addr);
    }
}

void
LlcCache::serialize(JsonValue &out) const
{
    JsonValue lines = JsonValue::makeArray();
    array.forEachWay([&](unsigned set, unsigned way, Addr tag,
                         const Entry &e) {
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(std::uint64_t(set)));
        row.push(JsonValue(std::uint64_t(way)));
        row.push(JsonValue(std::uint64_t(tag)));
        row.push(JsonValue(e.dirty));
        row.push(JsonValue(blockToHex(e.data)));
        lines.push(std::move(row));
    });
    out.set("lines", std::move(lines));
    JsonValue repl = JsonValue::makeObject();
    array.replacement().serialize(repl);
    out.set("repl", std::move(repl));
}

void
LlcCache::restore(const JsonValue &in)
{
    for (const JsonValue &row : in.at("lines").items()) {
        unsigned set = static_cast<unsigned>(row.at(0).asUInt());
        unsigned way = static_cast<unsigned>(row.at(1).asUInt());
        Addr tag = row.at(2).asUInt();
        Entry &e = array.restoreLine(set, way, tag);
        e.dirty = row.at(3).asBool();
        e.data = blockFromHex(row.at(4).asString());
    }
    array.replacement().restore(in.at("repl"));
}

std::string
LlcCache::stateSummary() const
{
    std::size_t dirty = 0;
    array.forEach([&](Addr, const Entry &e) { dirty += e.dirty; });
    return name + ": " + std::to_string(array.occupancy()) + " lines (" +
           std::to_string(dirty) + " dirty), " +
           (params.writeBack ? "write-back" : "write-through");
}

} // namespace hsc
