/**
 * @file
 * DMA controller (§II-E, Fig. 3).
 *
 * The DMA engine issues block-granular DMARd/DMAWr requests to the
 * system directory.  DMA agents do not cache lines and therefore do
 * not participate in coherence tracking; in the baseline directory
 * their requests still broadcast probes (reads downgrade the L2s,
 * writes invalidate L2s and TCC).
 */

#ifndef HSC_PROTOCOL_DMA_DMA_CONTROLLER_HH
#define HSC_PROTOCOL_DMA_DMA_CONTROLLER_HH

#include <deque>
#include <functional>

#include "mem/message_buffer.hh"
#include "mem/transport.hh"
#include "obs/span.hh"
#include "protocol/types.hh"
#include "sim/clocked.hh"
#include "sim/introspect.hh"
#include "stats/stats.hh"

namespace hsc
{

class CoherenceChecker;
class ObsTracer;
class StorageFaultInjector;

/**
 * Block-level DMA requester with a bounded number of outstanding
 * transactions.
 */
class DmaController : public Clocked, public ProtocolIntrospect
{
  public:
    using BlockCallback = std::function<void(const DataBlock &)>;
    using DoneCallback = std::function<void()>;

    DmaController(std::string name, EventQueue &eq, ClockDomain clk,
                  MachineId machine_id, MsgSink &to_dir,
                  unsigned max_outstanding = 8);

    void bindFromDir(MessageBuffer &from_dir);

    /** Attach the runtime invariant checker (null = disabled). */
    void attachChecker(CoherenceChecker *c) { checker = c; }

    /** Attach the observability tracer (null = disabled). */
    void attachTracer(ObsTracer *t);

    /** Consumption-only: the DMA engine caches nothing, but handing a
     *  poisoned response block to the transfer log must contain. */
    void attachStorageFault(StorageFaultInjector *s) { storage = s; }

    /** Read one block. */
    void readBlock(Addr addr, BlockCallback cb);

    /** Write the bytes of @p mask of one block. */
    void writeBlock(Addr addr, const DataBlock &data, ByteMask mask,
                    DoneCallback cb);

    bool idle() const { return inFlight == 0 && queue.empty(); }

    void regStats(StatRegistry &reg);

    /** @{ ProtocolIntrospect. */
    std::string introspectName() const override { return name(); }
    void inFlightTransactions(Tick now,
                              std::vector<TxnInfo> &out) const override;
    std::string stateSummary() const override;
    std::uint64_t progressCount() const override;
    /** @} */

    /** @{ Snapshot hooks.  The DMA engine holds no persistent line
     *  state — only the ingress guard cursors survive a checkpoint,
     *  and serializing requires idle(). */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    struct Op
    {
        bool isRead;
        Addr addr;
        DataBlock data;
        ByteMask mask;
        BlockCallback readCb;
        DoneCallback writeCb;
        Tick startedAt = 0;
        std::uint64_t obsId = 0;
    };

    void pump();
    void handleFromDir(Msg &&msg);

    const MachineId id;
    MsgSink &toDir;
    const unsigned maxOutstanding;

    CoherenceChecker *checker = nullptr;

    StorageFaultInjector *storage = nullptr;

    ObsTracer *tracer = nullptr;
    std::uint16_t obsCtrl = 0;

    /** Span emission helper; no-op when untraced (id 0 / tracer off). */
    void obsEmit(std::uint64_t obs_id, ObsPhase phase, Addr addr);

    std::deque<Op> queue;
    /** Completion callbacks of issued ops, in issue (= response) order
     *  per address; keyed by address to tolerate reordering. */
    std::unordered_map<Addr, std::deque<Op>> issued;
    unsigned inFlight = 0;

    Counter statReads, statWrites;

    /** @{ Controller-ingress exactly-once guard (DESIGN.md §10):
     *  with the transport healthy the counter stays 0. */
    std::vector<std::unique_ptr<IngressDedup>> ingressGuards;
    Counter statIngressDups;
    bool ingressGuarded = false;
    /** @} */
};

} // namespace hsc

#endif // HSC_PROTOCOL_DMA_DMA_CONTROLLER_HH
