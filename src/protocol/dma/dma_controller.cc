#include "protocol/dma/dma_controller.hh"

#include "mem/storage_fault.hh"
#include "obs/tracer.hh"
#include "sim/coherence_checker.hh"
#include "sim/json.hh"
#include "sim/sim_error.hh"

namespace hsc
{

DmaController::DmaController(std::string name, EventQueue &eq,
                             ClockDomain clk, MachineId machine_id,
                             MsgSink &to_dir, unsigned max_outstanding)
    : Clocked(std::move(name), eq, clk), id(machine_id), toDir(to_dir),
      maxOutstanding(max_outstanding)
{
}

void
DmaController::bindFromDir(MessageBuffer &from_dir)
{
    bindGuardedConsumer(
        from_dir, ingressGuards, statIngressDups, ingressGuarded,
        [this](Msg &&m) { handleFromDir(std::move(m)); });
}

void
DmaController::regStats(StatRegistry &reg)
{
    reg.addCounter(name() + ".reads", &statReads);
    reg.addCounter(name() + ".writes", &statWrites);
    if (ingressGuarded)
        reg.addCounter(name() + ".ingress.dupDrops", &statIngressDups);
}

void
DmaController::attachTracer(ObsTracer *t)
{
    tracer = t;
    if (tracer)
        obsCtrl = tracer->internCtrl(name(), ObsCtrlKind::Dma);
}

void
DmaController::obsEmit(std::uint64_t obs_id, ObsPhase phase, Addr addr)
{
    if (!tracer || !obs_id)
        return;
    tracer->emit(obs_id, phase, obsCtrl, addr, curTick());
}

void
DmaController::readBlock(Addr addr, BlockCallback cb)
{
    ++statReads;
    Op op;
    op.isRead = true;
    op.addr = blockAlign(addr);
    op.readCb = std::move(cb);
    op.startedAt = curTick();
    if (tracer)
        op.obsId = tracer->newTxn(ObsClass::DmaRead, obsCtrl, op.addr,
                                  curTick());
    queue.push_back(std::move(op));
    pump();
}

void
DmaController::writeBlock(Addr addr, const DataBlock &data, ByteMask mask,
                          DoneCallback cb)
{
    ++statWrites;
    Op op;
    op.isRead = false;
    op.addr = blockAlign(addr);
    op.data = data;
    op.mask = mask;
    op.writeCb = std::move(cb);
    op.startedAt = curTick();
    if (tracer)
        op.obsId = tracer->newTxn(ObsClass::DmaWrite, obsCtrl, op.addr,
                                  curTick());
    queue.push_back(std::move(op));
    pump();
}

void
DmaController::pump()
{
    while (inFlight < maxOutstanding && !queue.empty()) {
        Op op = std::move(queue.front());
        queue.pop_front();

        Msg m;
        m.type = op.isRead ? MsgType::DmaRead : MsgType::DmaWrite;
        m.addr = op.addr;
        m.sender = id;
        m.obsId = op.obsId;
        if (!op.isRead) {
            m.hasData = true;
            m.data = op.data;
            m.mask = op.mask;
        }
        obsEmit(op.obsId, ObsPhase::Inject, op.addr);
        toDir.enqueue(std::move(m));
        issued[op.addr].push_back(std::move(op));
        ++inFlight;
    }
}

void
DmaController::handleFromDir(Msg &&msg)
{
    if (checker) {
        auto it = issued.find(msg.addr);
        bool have = it != issued.end() && !it->second.empty();
        if (!checker->noteEvent(CheckerCtrl::Dma, name(), msg.addr,
                                have ? "Issued" : "I",
                                msgTypeName(msg.type)))
            return;  // illegal in this state: flagged, message dropped
    }
    panic_if(msg.type != MsgType::DmaResp,
             "%s: unexpected message %s", name().c_str(),
             std::string(msgTypeName(msg.type)).c_str());
    auto it = issued.find(msg.addr);
    panic_if(it == issued.end() || it->second.empty(),
             "%s: DMA response with no issued op", name().c_str());
    Op op = std::move(it->second.front());
    it->second.pop_front();
    if (it->second.empty())
        issued.erase(it);
    --inFlight;
    obsEmit(op.obsId, ObsPhase::Complete, msg.addr);
    if (op.isRead && storage)
        storage->noteConsumption(name(), msg.addr, msg.data, curTick(),
                                 op.obsId);
    if (op.isRead)
        op.readCb(msg.data);
    else
        op.writeCb();
    pump();
}

void
DmaController::inFlightTransactions(Tick now,
                                    std::vector<TxnInfo> &out) const
{
    for (const auto &[addr, ops] : issued) {
        for (const Op &op : ops) {
            TxnInfo t;
            t.controller = name();
            t.addr = addr;
            t.state = op.isRead ? "DMA read issued" : "DMA write issued";
            t.waitingFor = "DmaResp from directory";
            t.age = now - op.startedAt;
            out.push_back(std::move(t));
        }
    }
    for (const Op &op : queue) {
        TxnInfo t;
        t.controller = name();
        t.addr = op.addr;
        t.state = op.isRead ? "DMA read queued" : "DMA write queued";
        t.waitingFor = "outstanding-transaction slot";
        t.age = now - op.startedAt;
        out.push_back(std::move(t));
    }
}

std::string
DmaController::stateSummary() const
{
    return name() + ": " + std::to_string(inFlight) + " in flight, " +
           std::to_string(queue.size()) + " queued";
}

std::uint64_t
DmaController::progressCount() const
{
    return statReads.value() + statWrites.value();
}

void
DmaController::serialize(JsonValue &out) const
{
    panic_if(!idle(), "%s: serialize with transactions in flight",
             name().c_str());
    JsonValue guards = JsonValue::makeArray();
    for (const auto &g : ingressGuards)
        guards.push(JsonValue(g->lastSeq));
    out.set("ingress", std::move(guards));
}

void
DmaController::restore(const JsonValue &in)
{
    const JsonValue &guards = in.at("ingress");
    if (guards.items().size() != ingressGuards.size()) {
        throw SimError("ingress guard count mismatch (config drift?)",
                       "snapshot");
    }
    for (std::size_t i = 0; i < ingressGuards.size(); ++i)
        ingressGuards[i]->lastSeq = guards.at(i).asUInt();
}

} // namespace hsc
