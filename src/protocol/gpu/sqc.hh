/**
 * @file
 * SQC — Sequencer Cache, the GPU's read-only instruction cache
 * (§II-C).  A VI cache filled through the TCC; it never holds dirty
 * data and is invalidated wholesale at kernel launch.
 */

#ifndef HSC_PROTOCOL_GPU_SQC_HH
#define HSC_PROTOCOL_GPU_SQC_HH

#include <functional>

#include "cache/cache_array.hh"
#include "protocol/gpu/tcc.hh"
#include "protocol/gpu/vi_line.hh"
#include "sim/clocked.hh"
#include "sim/introspect.hh"
#include "stats/stats.hh"

namespace hsc
{

class CoherenceChecker;
class ObsTracer;

/** Parameters of the SQC. */
struct SqcParams
{
    CacheGeometry geom{64, 8};  ///< 32 KB, 8-way (Table II)
    Cycles latency = 1;         ///< Table II access latency
};

/**
 * Read-only instruction cache shared by the CUs.
 */
class SqcController : public Clocked, public ProtocolIntrospect
{
  public:
    using DoneCallback = std::function<void()>;

    SqcController(std::string name, EventQueue &eq, ClockDomain clk,
                  const SqcParams &params, TccController &tcc);

    /** Attach the runtime invariant checker (null = disabled). */
    void attachChecker(CoherenceChecker *c) { checker = c; }

    /** Attach the observability tracer (null = disabled). */
    void attachTracer(ObsTracer *t);

    /** Instruction fetch at @p addr. */
    void fetch(Addr addr, DoneCallback cb);

    /** Drop every line (kernel-launch invalidation). */
    void invalidateAll();

    void regStats(StatRegistry &reg);

    std::size_t occupancy() const { return array.occupancy(); }
    bool hasLine(Addr addr) const { return array.peek(addr) != nullptr; }

    /** @{ ProtocolIntrospect.  Read-only and filled through the TCC:
     *  outstanding fetches live in the TCC's MSHRs, not here. */
    std::string introspectName() const override { return name(); }
    void inFlightTransactions(Tick, std::vector<TxnInfo> &) const override
    {
    }
    std::string stateSummary() const override;
    std::uint64_t progressCount() const override;
    /** @} */

    /** @{ Snapshot hooks (lines + replacement metadata). */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    const SqcParams params;
    TccController &tcc;
    CoherenceChecker *checker = nullptr;
    CacheArray<ViLine> array;

    ObsTracer *tracer = nullptr;
    std::uint16_t obsCtrl = 0;

    Counter statFetches, statHits, statMisses;
};

} // namespace hsc

#endif // HSC_PROTOCOL_GPU_SQC_HH
