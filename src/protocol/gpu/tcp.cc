#include "protocol/gpu/tcp.hh"

#include "mem/storage_fault.hh"
#include "obs/tracer.hh"
#include "protocol/gpu/vi_snapshot.hh"
#include "sim/coherence_checker.hh"

namespace hsc
{

TcpController::TcpController(std::string name, EventQueue &eq,
                             ClockDomain clk, const TcpParams &params,
                             TccController &tcc)
    : Clocked(std::move(name), eq, clk), params(params), tcc(tcc),
      array(this->name() + ".array", params.geom)
{
}

void
TcpController::regStats(StatRegistry &reg)
{
    const std::string &n = name();
    reg.addCounter(n + ".loads", &statLoads);
    reg.addCounter(n + ".stores", &statStores);
    reg.addCounter(n + ".atomics", &statAtomics);
    reg.addCounter(n + ".hits", &statHits);
    reg.addCounter(n + ".misses", &statMisses);
    reg.addCounter(n + ".bypasses", &statBypasses);
    reg.addCounter(n + ".acquires", &statAcquires);
}

void
TcpController::attachTracer(ObsTracer *t)
{
    tracer = t;
    if (tracer)
        obsCtrl = tracer->internCtrl(name(), ObsCtrlKind::Tcp);
}

std::uint64_t
TcpController::obsNewTxn(ObsClass cls, Addr block)
{
    return tracer ? tracer->newTxn(cls, obsCtrl, block, curTick()) : 0;
}

void
TcpController::obsEmit(std::uint64_t obs_id, ObsPhase phase, Addr addr)
{
    if (!tracer || !obs_id)
        return;
    tracer->emit(obs_id, phase, obsCtrl, addr, curTick());
}

ViLine &
TcpController::allocateLine(Addr block)
{
    if (checker)
        checker->noteEvent(CheckerCtrl::Tcp, name(), block,
                           array.lookup(block, false) ? "V" : "I", "fill");
    if (ViLine *line = array.lookup(block))
        return *line;
    if (!array.hasFreeWay(block)) {
        auto victim = array.findVictim(block);
        if (victim.entry->dirty()) {
            tcc.write(victim.addr, victim.entry->data,
                      victim.entry->dirtyMask, [] {});
        }
        array.invalidate(victim.addr);
    }
    return array.allocate(block);
}

void
TcpController::load(Addr addr, unsigned size, Scope scope, ValueCallback cb)
{
    ++statLoads;
    Addr block = blockAlign(addr);
    unsigned off = blockOffset(addr);
    ByteMask mask = makeMask(off, size);

    if (scope != Scope::Wave) {
        // GLC/SLC loads bypass the TCP; model them as atomic loads at
        // the wider scope so spin-waits observe remote stores.
        ++statBypasses;
        array.invalidate(block);
        std::uint64_t obs_id = obsNewTxn(ObsClass::GpuRead, block);
        tcc.atomic(addr, AtomicOp::Load, 0, 0, size, scope,
                   [this, block, obs_id,
                    cb = std::move(cb)](std::uint64_t v) {
                       obsEmit(obs_id, ObsPhase::Complete, block);
                       cb(v);
                   },
                   obs_id);
        return;
    }

    after(params.latency, [this, block, off, size, mask,
                           cb = std::move(cb)]() mutable {
        ViLine *line = array.lookup(block);
        if (line && line->covers(mask)) {
            ++statHits;
            if (storage)
                storage->noteConsumption(name(), block, line->data,
                                         curTick());
            cb(size == 4 ? line->data.get<std::uint32_t>(off)
                         : line->data.get<std::uint64_t>(off));
            return;
        }
        ++statMisses;
        std::uint64_t obs_id = obsNewTxn(ObsClass::GpuRead, block);
        tcc.readBlock(block,
                      [this, block, off, size, obs_id,
                       cb = std::move(cb)](const DataBlock &data) {
            ViLine &l = allocateLine(block);
            l.fill(data);
            obsEmit(obs_id, ObsPhase::Complete, block);
            cb(size == 4 ? l.data.get<std::uint32_t>(off)
                         : l.data.get<std::uint64_t>(off));
        },
                      obs_id);
    });
}

void
TcpController::loadBlock(Addr block, BlockCallback cb)
{
    ++statLoads;
    block = blockAlign(block);
    after(params.latency, [this, block, cb = std::move(cb)]() mutable {
        ViLine *line = array.lookup(block);
        if (line && line->fullyValid()) {
            ++statHits;
            if (storage)
                storage->noteConsumption(name(), block, line->data,
                                         curTick());
            cb(line->data);
            return;
        }
        ++statMisses;
        std::uint64_t obs_id = obsNewTxn(ObsClass::GpuRead, block);
        tcc.readBlock(block,
                      [this, block, obs_id,
                       cb = std::move(cb)](const DataBlock &data) {
            ViLine &l = allocateLine(block);
            l.fill(data);
            obsEmit(obs_id, ObsPhase::Complete, block);
            cb(l.data);
        },
                      obs_id);
    });
}

void
TcpController::storeBlock(Addr block, const DataBlock &src, ByteMask mask,
                          DoneCallback cb)
{
    ++statStores;
    block = blockAlign(block);
    after(params.latency, [this, block, src, mask,
                           cb = std::move(cb)]() mutable {
        if (params.writeBack) {
            ViLine &line = allocateLine(block);
            line.write(src, mask, true);
            cb();
        } else {
            if (ViLine *line = array.lookup(block))
                line->write(src, mask, false);
            tcc.write(block, src, mask, std::move(cb));
        }
    });
}

void
TcpController::store(Addr addr, unsigned size, std::uint64_t value,
                     Scope scope, DoneCallback cb)
{
    ++statStores;
    Addr block = blockAlign(addr);
    unsigned off = blockOffset(addr);
    ByteMask mask = makeMask(off, size);

    DataBlock src;
    if (size == 4)
        src.set<std::uint32_t>(off, std::uint32_t(value));
    else
        src.set<std::uint64_t>(off, value);

    if (scope != Scope::Wave) {
        ++statBypasses;
        array.invalidate(block);
        tcc.write(addr, src, mask, std::move(cb), scope);
        return;
    }

    // Capture the scalar operands, not the DataBlock: the payload is
    // at most 8 bytes and a block capture overflows the inline event
    // slot.
    after(params.latency, [this, addr, size, value,
                           cb = std::move(cb)]() mutable {
        Addr block = blockAlign(addr);
        unsigned off = blockOffset(addr);
        ByteMask mask = makeMask(off, size);
        DataBlock src;
        if (size == 4)
            src.set<std::uint32_t>(off, std::uint32_t(value));
        else
            src.set<std::uint64_t>(off, value);
        if (params.writeBack) {
            ViLine &line = allocateLine(block);
            line.write(src, mask, true);
            cb();
        } else {
            // Write-through, no write-allocate.
            if (ViLine *line = array.lookup(block))
                line->write(src, mask, false);
            tcc.write(addr, src, mask, std::move(cb));
        }
    });
}

void
TcpController::atomic(Addr addr, AtomicOp op, std::uint64_t operand,
                      std::uint64_t operand2, unsigned size, Scope scope,
                      ValueCallback cb)
{
    ++statAtomics;
    Addr block = blockAlign(addr);

    if (scope != Scope::Wave) {
        ++statBypasses;
        // If write-back and we hold dirty bytes of this line, drain
        // them so the wider-scope atomic observes them.
        if (ViLine *line = array.lookup(block, false)) {
            if (line->dirty())
                tcc.write(block, line->data, line->dirtyMask, [] {});
            array.invalidate(block);
        }
        std::uint64_t obs_id = obsNewTxn(ObsClass::GpuAtomic, block);
        tcc.atomic(addr, op, operand, operand2, size, scope,
                   [this, block, obs_id,
                    cb = std::move(cb)](std::uint64_t v) {
                       obsEmit(obs_id, ObsPhase::Complete, block);
                       cb(v);
                   },
                   obs_id);
        return;
    }

    // Wave-scope atomics execute on the TCP's copy.
    unsigned off = blockOffset(addr);
    ByteMask mask = makeMask(off, size);
    after(params.latency, [this, addr, block, off, size, mask, op, operand,
                           operand2, cb = std::move(cb)]() mutable {
        auto execute = [this, addr, block, off, size, mask, op, operand,
                        operand2, cb = std::move(cb)]() {
            ViLine *line = array.lookup(block);
            panic_if(!line || !line->covers(mask),
                     "wave atomic on unfilled line");
            if (storage)
                storage->noteConsumption(name(), block, line->data,
                                         curTick());
            std::uint64_t old_val = size == 4
                ? line->data.get<std::uint32_t>(off)
                : line->data.get<std::uint64_t>(off);
            std::uint64_t new_val =
                applyAtomic(op, old_val, operand, operand2);
            DataBlock upd;
            if (size == 4)
                upd.set<std::uint32_t>(off, std::uint32_t(new_val));
            else
                upd.set<std::uint64_t>(off, new_val);
            if (params.writeBack) {
                line->write(upd, mask, true);
                cb(old_val);
            } else {
                line->write(upd, mask, false);
                tcc.write(addr, upd, mask, [cb, old_val] { cb(old_val); });
            }
        };
        ViLine *line = array.lookup(block);
        if (line && line->covers(mask)) {
            execute();
        } else {
            std::uint64_t obs_id = obsNewTxn(ObsClass::GpuAtomic, block);
            tcc.readBlock(block,
                          [this, block, obs_id,
                           execute = std::move(execute)](
                              const DataBlock &data) {
                ViLine &l = allocateLine(block);
                l.fill(data);
                obsEmit(obs_id, ObsPhase::Complete, block);
                execute();
            },
                          obs_id);
        }
    });
}

void
TcpController::acquire(DoneCallback cb)
{
    ++statAcquires;
    after(params.latency, [this, cb = std::move(cb)] {
        drainDirty();
        if (checker)
            checker->noteEvent(CheckerCtrl::Tcp, name(), 0, "V",
                               "acquire-invalidate");
        // Invalidate everything: subsequent wave-scope loads re-fetch
        // through the TCC and observe synchronised data.
        std::vector<Addr> lines;
        array.forEach([&](Addr a, const ViLine &) { lines.push_back(a); });
        for (Addr a : lines)
            array.invalidate(a);
        cb();
    });
}

void
TcpController::release(DoneCallback cb)
{
    after(params.latency, [this, cb = std::move(cb)]() mutable {
        drainDirty();
        tcc.release(std::move(cb));
    });
}

void
TcpController::drainDirty()
{
    if (!params.writeBack)
        return;
    std::vector<std::pair<Addr, ViLine *>> dirty_lines;
    array.forEach([&](Addr a, const ViLine &l) {
        if (l.dirty())
            dirty_lines.push_back({a, const_cast<ViLine *>(&l)});
    });
    for (auto &[a, line] : dirty_lines) {
        tcc.write(a, line->data, line->dirtyMask, [] {});
        line->dirtyMask = 0;
    }
}

std::string
TcpController::stateSummary() const
{
    return name() + ": " + std::to_string(array.occupancy()) +
           " lines (misses tracked by the TCC)";
}

std::uint64_t
TcpController::progressCount() const
{
    return statLoads.value() + statStores.value() + statAtomics.value();
}

void
TcpController::serialize(JsonValue &out) const
{
    serializeViArray(array, out);
}

void
TcpController::restore(const JsonValue &in)
{
    restoreViArray(array, in);
}

} // namespace hsc
