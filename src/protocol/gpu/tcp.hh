/**
 * @file
 * TCP — Texture Cache per Pipe, the per-CU L1 data cache (§II-C).
 *
 * A VI cache over the TCC.  Write-through (default) or write-back
 * (WB_L1) configurable; device/system-scope operations bypass it
 * (GLC/SLC bits), and acquire operations invalidate it, per the VIPER
 * scoped-synchronisation model.
 */

#ifndef HSC_PROTOCOL_GPU_TCP_HH
#define HSC_PROTOCOL_GPU_TCP_HH

#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "protocol/gpu/tcc.hh"
#include "protocol/gpu/vi_line.hh"
#include "sim/clocked.hh"
#include "sim/introspect.hh"
#include "stats/stats.hh"

namespace hsc
{

class CoherenceChecker;
class ObsTracer;

/** Parameters of one TCP. */
struct TcpParams
{
    CacheGeometry geom{16, 16};  ///< 16 KB, 16-way (Table II)
    Cycles latency = 4;          ///< Table II access latency
    bool writeBack = false;      ///< gem5 WB_L1
};

/**
 * The TCP controller; one per compute unit, fronting the shared TCC.
 */
class TcpController : public Clocked, public ProtocolIntrospect
{
  public:
    using ValueCallback = std::function<void(std::uint64_t)>;
    using DoneCallback = std::function<void()>;

    TcpController(std::string name, EventQueue &eq, ClockDomain clk,
                  const TcpParams &params, TccController &tcc);

    using BlockCallback = std::function<void(const DataBlock &)>;

    /** Attach the runtime invariant checker (null = disabled). */
    void attachChecker(CoherenceChecker *c) { checker = c; }

    /** Attach the observability tracer (null = disabled). */
    void attachTracer(ObsTracer *t);

    /** Consumption-only: TCP lines are clean write-through copies (no
     *  protected array of their own), but a lane reading a line that
     *  was filled poisoned must still contain. */
    void attachStorageFault(StorageFaultInjector *s) { storage = s; }

    /** Word load; wave scope hits the TCP, wider scopes bypass it. */
    void load(Addr addr, unsigned size, Scope scope, ValueCallback cb);

    /**
     * Coalesced (wave-scope) load of a whole block — the CU issues one
     * of these per unique block touched by a vector lane group.
     */
    void loadBlock(Addr block, BlockCallback cb);

    /** Coalesced (wave-scope) store of the bytes in @p mask. */
    void storeBlock(Addr block, const DataBlock &src, ByteMask mask,
                    DoneCallback cb);

    /** Word store. */
    void store(Addr addr, unsigned size, std::uint64_t value, Scope scope,
               DoneCallback cb);

    /** Scoped read-modify-write (bypasses the TCP for GLC/SLC). */
    void atomic(Addr addr, AtomicOp op, std::uint64_t operand,
                std::uint64_t operand2, unsigned size, Scope scope,
                ValueCallback cb);

    /**
     * Acquire: invalidate the TCP so subsequent loads observe
     * system-visible data (dirty bytes are drained first in
     * write-back mode).
     */
    void acquire(DoneCallback cb);

    /** Release: drain TCP dirty bytes, then release the TCC. */
    void release(DoneCallback cb);

    void regStats(StatRegistry &reg);

    bool hasLine(Addr addr) const { return array.peek(addr) != nullptr; }
    std::size_t occupancy() const { return array.occupancy(); }

    /** @{ ProtocolIntrospect.  The TCP is a pass-through filter over
     *  the TCC: its misses become TCC fills, so it holds no in-flight
     *  transaction state of its own. */
    std::string introspectName() const override { return name(); }
    void inFlightTransactions(Tick, std::vector<TxnInfo> &) const override
    {
    }
    std::string stateSummary() const override;
    std::uint64_t progressCount() const override;
    /** @} */

    /** @{ Snapshot hooks (lines + replacement metadata). */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    ViLine &allocateLine(Addr block);
    void drainDirty();

    /** Charge @p extra TCP cycles, then run @p fn.  @p fn is a
     *  function template parameter so the continuation is stored
     *  inline in the event (no std::function heap traffic). */
    template <typename Fn>
    void
    after(Cycles extra, Fn &&fn)
    {
        scheduleCycles(extra, std::forward<Fn>(fn),
                       EventPriority::Default, /*progress=*/true);
    }

    const TcpParams params;
    TccController &tcc;

    CoherenceChecker *checker = nullptr;

    StorageFaultInjector *storage = nullptr;

    ObsTracer *tracer = nullptr;
    std::uint16_t obsCtrl = 0;

    /** Open a miss span of @p cls (0 when the tracer is off). */
    std::uint64_t obsNewTxn(ObsClass cls, Addr block);
    /** Span emission helper; no-op when untraced (id 0 / tracer off). */
    void obsEmit(std::uint64_t obs_id, ObsPhase phase, Addr addr);

    CacheArray<ViLine> array;

    Counter statLoads, statStores, statAtomics;
    Counter statHits, statMisses, statBypasses, statAcquires;
};

} // namespace hsc

#endif // HSC_PROTOCOL_GPU_TCP_HH
