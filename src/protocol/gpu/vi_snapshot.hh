/**
 * @file
 * Snapshot helpers shared by the VI caches (TCP, TCC, SQC): all three
 * persist the same per-line payload — valid/dirty byte masks plus the
 * data — and the replacement metadata of their CacheArray.
 */

#ifndef HSC_PROTOCOL_GPU_VI_SNAPSHOT_HH
#define HSC_PROTOCOL_GPU_VI_SNAPSHOT_HH

#include "cache/cache_array.hh"
#include "protocol/gpu/vi_line.hh"
#include "sim/json.hh"

namespace hsc
{

/** Serialize @p array as {"lines": [[set, way, tag, validMask,
 *  dirtyMask, hex] ...], "repl": {...}} into @p out. */
inline void
serializeViArray(const CacheArray<ViLine> &array, JsonValue &out)
{
    JsonValue lines = JsonValue::makeArray();
    array.forEachWay([&](unsigned set, unsigned way, Addr tag,
                         const ViLine &l) {
        JsonValue row = JsonValue::makeArray();
        row.push(JsonValue(std::uint64_t(set)));
        row.push(JsonValue(std::uint64_t(way)));
        row.push(JsonValue(std::uint64_t(tag)));
        row.push(JsonValue(std::uint64_t(l.validMask)));
        row.push(JsonValue(std::uint64_t(l.dirtyMask)));
        row.push(JsonValue(blockToHex(l.data)));
        lines.push(std::move(row));
    });
    out.set("lines", std::move(lines));
    JsonValue repl = JsonValue::makeObject();
    array.replacement().serialize(repl);
    out.set("repl", std::move(repl));
}

/** Inverse of serializeViArray into a freshly constructed @p array. */
inline void
restoreViArray(CacheArray<ViLine> &array, const JsonValue &in)
{
    for (const JsonValue &row : in.at("lines").items()) {
        unsigned set = static_cast<unsigned>(row.at(0).asUInt());
        unsigned way = static_cast<unsigned>(row.at(1).asUInt());
        ViLine &l = array.restoreLine(set, way, row.at(2).asUInt());
        l.validMask = static_cast<ByteMask>(row.at(3).asUInt());
        l.dirtyMask = static_cast<ByteMask>(row.at(4).asUInt());
        l.data = blockFromHex(row.at(5).asString());
    }
    array.replacement().restore(in.at("repl"));
}

} // namespace hsc

#endif // HSC_PROTOCOL_GPU_VI_SNAPSHOT_HH
