/**
 * @file
 * TCC — Texture Cache per Channel, the GPU's shared L2 (§II-C).
 *
 * Implements the VIPER behaviours the paper's directory must cope
 * with:
 *  - a simple Valid/Invalid protocol with write-through (default) or
 *    write-back (WB_L2) configuration;
 *  - system-scope (SLC) requests bypass the TCC, making it
 *    non-inclusive; the TCC self-invalidates its copy (flushing dirty
 *    bytes first) before forwarding so ordering stays correct;
 *  - device-scope (GLC) atomics execute on the TCC's own copy;
 *  - probes invalidate the TCC but never forward data; and
 *  - store-release is supported via Flush write-backs that drain all
 *    dirty bytes to system visibility and wait for acknowledgments.
 */

#ifndef HSC_PROTOCOL_GPU_TCC_HH
#define HSC_PROTOCOL_GPU_TCC_HH

#include <deque>
#include <functional>
#include <unordered_map>
#include <vector>

#include "cache/cache_array.hh"
#include "mem/message_buffer.hh"
#include "mem/transport.hh"
#include "obs/span.hh"
#include "protocol/gpu/vi_line.hh"
#include "protocol/types.hh"
#include "sim/clocked.hh"
#include "sim/introspect.hh"
#include "sim/pool_alloc.hh"
#include "sim/ring_buffer.hh"
#include "sim/small_vec.hh"
#include "stats/stats.hh"

namespace hsc
{

class CoherenceChecker;
class ObsTracer;
class StorageFaultInjector;

/** Parameters of the TCC. */
struct TccParams
{
    CacheGeometry geom{256, 16};  ///< 256 KB, 16-way (Table II)
    Cycles latency = 8;           ///< Table II access latency
    bool writeBack = false;       ///< gem5 WB_L2
};

/**
 * The TCC controller.  TCPs and the SQC call it directly (same GPU
 * clock domain); it exchanges messages with the system directory.
 */
class TccController : public Clocked, public ProtocolIntrospect
{
  public:
    using BlockCallback = std::function<void(const DataBlock &)>;
    using DoneCallback = std::function<void()>;
    using ValueCallback = std::function<void(std::uint64_t)>;

    TccController(std::string name, EventQueue &eq, ClockDomain clk,
                  MachineId machine_id, const TccParams &params,
                  MsgSink &to_dir);

    void bindFromDir(MessageBuffer &from_dir);

    /** Attach the runtime invariant checker (null = disabled). */
    void attachChecker(CoherenceChecker *c) { checker = c; }

    /** Attach the observability tracer (null = disabled). */
    void attachTracer(ObsTracer *t);

    /** TCC data is a protected array (null = no storage faults). */
    void
    attachStorageFault(StorageFaultInjector *s, unsigned array_id)
    {
        storage = s;
        storageArrayId = array_id;
    }

    /**
     * Read a whole block (TCP fill / SQC fetch path).  @p obs_id is
     * the caller's observability span (0 = untraced); it rides the
     * TccRdBlk so directory-side phases attribute to the requester.
     */
    void readBlock(Addr addr, BlockCallback cb, std::uint64_t obs_id = 0);

    /**
     * Write the bytes of @p mask at @p scope.
     *
     * System-scope writes always write through to the directory (an
     * SLC store is system-visible immediately, even with a write-back
     * TCC — otherwise a CPU store to a neighbouring word would
     * invalidate the TCC and destroy the GPU's bytes).  Device/wave
     * scope follows the TCC configuration: write-through mode
     * forwards to the directory, write-back mode marks the line
     * dirty.  The callback models store-buffer completion, not global
     * visibility (use release() for that).
     */
    void write(Addr addr, const DataBlock &src, ByteMask mask,
               DoneCallback cb, Scope scope = Scope::Device);

    /**
     * Scoped read-modify-write on the naturally-aligned word at
     * @p addr.  Device scope executes here; System scope bypasses to
     * the directory (self-invalidating our copy first).
     */
    void atomic(Addr addr, AtomicOp op, std::uint64_t operand,
                std::uint64_t operand2, unsigned size, Scope scope,
                ValueCallback cb, std::uint64_t obs_id = 0);

    /**
     * Store-release: drain every dirty byte to system visibility and
     * invoke @p cb once all flushes have been acknowledged.
     */
    void release(DoneCallback cb);

    MachineId machineId() const { return id; }
    bool idle() const { return fills.empty() && outstandingWrites == 0 &&
                               pendingAtomics.empty(); }
    bool writeBackMode() const { return params.writeBack; }

    void regStats(StatRegistry &reg);

    /** @{ Test introspection. */
    bool hasLine(Addr addr) const { return array.peek(addr) != nullptr; }
    bool lineDirty(Addr addr) const;
    std::size_t occupancy() const { return array.occupancy(); }
    /** @} */

    /** @{ ProtocolIntrospect. */
    std::string introspectName() const override { return name(); }
    void inFlightTransactions(Tick now,
                              std::vector<TxnInfo> &out) const override;
    std::string stateSummary() const override;
    std::uint64_t progressCount() const override;
    /** @} */

    /** @{ Snapshot hooks.  Valid only at a quiesce point: no
     *  outstanding fills, writes, atomics, or deferred messages. */
    void serialize(JsonValue &out) const;
    void restore(const JsonValue &in);
    /** @} */

  private:
    void handleFromDir(Msg &&msg);

    /** Issue a TccRdBlk and remember the continuation. */
    void requestFill(Addr block, BlockCallback cb, std::uint64_t obs_id);

    /** Allocate (evicting if needed) and return the line. */
    ViLine &allocateLine(Addr block);

    /**
     * Send a WriteThrough/Flush of @p mask bytes of @p line.  The TCC
     * owns the observability span of the resulting directory
     * transaction (@p wt_cls); it completes at the WBAck.
     */
    void sendWriteThrough(Addr block, const DataBlock &data, ByteMask mask,
                          bool is_flush, bool retains_copy,
                          ObsClass wt_cls = ObsClass::GpuWrite);

    /** Charge @p extra TCC cycles, then run @p fn.  @p fn is a
     *  function template parameter so the continuation is stored
     *  inline in the event (no std::function heap traffic). */
    template <typename Fn>
    void
    after(Cycles extra, Fn &&fn)
    {
        scheduleCycles(extra, std::forward<Fn>(fn),
                       EventPriority::Default, /*progress=*/true);
    }

    /** Run the front of the deferred-message ring (fill/probe). */
    void processDeferred();

    const MachineId id;
    const TccParams params;
    MsgSink &toDir;

    CoherenceChecker *checker = nullptr;

    StorageFaultInjector *storage = nullptr;
    unsigned storageArrayId = 0;

    ObsTracer *tracer = nullptr;
    std::uint16_t obsCtrl = 0;

    /** Span emission helper; no-op when untraced (id 0 / tracer off). */
    void obsEmit(std::uint64_t obs_id, ObsPhase phase, Addr addr,
                 std::uint32_t arg = 0);

    CacheArray<ViLine> array;

    /** Outstanding fill: continuation list (MSHR merge) + start tick. */
    struct Fill
    {
        Tick startedAt = 0;
        SmallVec<BlockCallback, 2> cbs;
        std::uint64_t obsId = 0;  ///< span riding the TccRdBlk
    };
    PoolUMap<Addr, Fill> fills;

    /** Outstanding system-scope atomic. */
    struct PendingAtomic
    {
        Addr addr = 0;
        Tick startedAt = 0;
        ValueCallback cb;
    };
    PoolUMap<std::uint64_t, PendingAtomic> pendingAtomics;
    std::uint64_t nextAtomicId = 1;

    unsigned outstandingWrites = 0;
    std::vector<DoneCallback> releaseWaiters;

    /** Directory messages (fills/probes) awaiting the TCC access
     *  latency.  All deferrals use the same fixed delay, so their
     *  events fire in push order and the front is always the due
     *  message; the event itself captures [this] only. */
    RingBuf<Msg> deferred;

    Counter statReads, statWrites, statAtomicsDev, statAtomicsSys;
    Counter statHits, statMisses, statWriteThroughs, statFlushes;
    Counter statProbesRecvd, statProbeInvalidations;

    /** @{ Controller-ingress exactly-once guard (DESIGN.md §10):
     *  with the transport healthy the counter stays 0. */
    std::vector<std::unique_ptr<IngressDedup>> ingressGuards;
    Counter statIngressDups;
    bool ingressGuarded = false;
    /** @} */
};

} // namespace hsc

#endif // HSC_PROTOCOL_GPU_TCC_HH
