#include "protocol/gpu/tcc.hh"

#include <sstream>

#include "mem/storage_fault.hh"
#include "obs/tracer.hh"
#include "protocol/gpu/vi_snapshot.hh"
#include "sim/coherence_checker.hh"
#include "sim/sim_error.hh"

namespace hsc
{

TccController::TccController(std::string name, EventQueue &eq,
                             ClockDomain clk, MachineId machine_id,
                             const TccParams &params, MsgSink &to_dir)
    : Clocked(std::move(name), eq, clk), id(machine_id), params(params),
      toDir(to_dir), array(this->name() + ".array", params.geom)
{
}

void
TccController::bindFromDir(MessageBuffer &from_dir)
{
    bindGuardedConsumer(
        from_dir, ingressGuards, statIngressDups, ingressGuarded,
        [this](Msg &&m) { handleFromDir(std::move(m)); });
}

void
TccController::attachTracer(ObsTracer *t)
{
    tracer = t;
    if (tracer)
        obsCtrl = tracer->internCtrl(name(), ObsCtrlKind::Tcc);
}

void
TccController::obsEmit(std::uint64_t obs_id, ObsPhase phase, Addr addr,
                       std::uint32_t arg)
{
    if (!tracer || !obs_id)
        return;
    tracer->emit(obs_id, phase, obsCtrl, addr, curTick(), arg);
}

void
TccController::regStats(StatRegistry &reg)
{
    const std::string &n = name();
    reg.addCounter(n + ".reads", &statReads);
    reg.addCounter(n + ".writes", &statWrites);
    reg.addCounter(n + ".atomicsDevice", &statAtomicsDev);
    reg.addCounter(n + ".atomicsSystem", &statAtomicsSys);
    reg.addCounter(n + ".hits", &statHits);
    reg.addCounter(n + ".misses", &statMisses);
    reg.addCounter(n + ".writeThroughs", &statWriteThroughs);
    reg.addCounter(n + ".flushes", &statFlushes);
    reg.addCounter(n + ".probesRecvd", &statProbesRecvd);
    reg.addCounter(n + ".probeInvalidations", &statProbeInvalidations);
    if (ingressGuarded)
        reg.addCounter(n + ".ingress.dupDrops", &statIngressDups);
}

void
TccController::readBlock(Addr addr, BlockCallback cb,
                         std::uint64_t obs_id)
{
    ++statReads;
    Addr block = blockAlign(addr);
    after(params.latency,
          [this, block, obs_id, cb = std::move(cb)]() mutable {
        ViLine *line = array.lookup(block);
        if (line && line->fullyValid()) {
            ++statHits;
            obsEmit(obs_id, ObsPhase::LocalHit, block);
            if (storage) {
                // Hit: the read passes through the data array and the
                // block is handed to a lane — a consumption boundary.
                storage->access(storageArrayId, block, line->data,
                                curTick(), obs_id);
                storage->noteConsumption(name(), block, line->data,
                                         curTick(), obs_id);
            }
            cb(line->data);
            return;
        }
        ++statMisses;
        requestFill(block, std::move(cb), obs_id);
    });
}

void
TccController::requestFill(Addr block, BlockCallback cb,
                           std::uint64_t obs_id)
{
    auto [it, fresh] = fills.try_emplace(block);
    it->second.cbs.push_back(std::move(cb));
    if (!fresh) {
        // Coalesced into the outstanding fill: this span waits on a
        // transaction owned by an earlier reader.
        obsEmit(obs_id, ObsPhase::Merge, block);
        return;
    }
    it->second.startedAt = curTick();
    it->second.obsId = obs_id;
    obsEmit(obs_id, ObsPhase::Inject, block);

    Msg m;
    m.type = MsgType::TccRdBlk;
    m.addr = block;
    m.sender = id;
    m.obsId = obs_id;
    toDir.enqueue(m);
}

ViLine &
TccController::allocateLine(Addr block)
{
    if (ViLine *line = array.lookup(block))
        return *line;
    if (!array.hasFreeWay(block)) {
        auto victim = array.findVictim(block);
        if (victim.entry->dirty()) {
            // Write-back victimisation doubles as a WriteThrough
            // request at the directory (§II-A).  The final array read
            // is an injection point: the fault rides the write-back.
            if (storage) {
                storage->access(storageArrayId, victim.addr,
                                victim.entry->data, curTick());
            }
            sendWriteThrough(victim.addr, victim.entry->data,
                             victim.entry->dirtyMask, false, false,
                             ObsClass::WriteBack);
        }
        array.invalidate(victim.addr);
    }
    return array.allocate(block);
}

void
TccController::sendWriteThrough(Addr block, const DataBlock &data,
                                ByteMask mask, bool is_flush,
                                bool retains_copy, ObsClass wt_cls)
{
    Msg m;
    m.type = is_flush ? MsgType::Flush : MsgType::WriteThrough;
    m.addr = block;
    m.sender = id;
    m.hasData = true;
    m.data = data;
    m.mask = mask;
    m.hit = retains_copy; // tells a tracking directory whether to
                          // keep the TCC in the sharer set
    if (tracer)
        m.obsId = tracer->newTxn(is_flush ? ObsClass::GpuFlush : wt_cls,
                                 obsCtrl, block, curTick());
    toDir.enqueue(m);
    ++outstandingWrites;
    if (is_flush)
        ++statFlushes;
    else
        ++statWriteThroughs;
}

void
TccController::write(Addr addr, const DataBlock &src, ByteMask mask,
                     DoneCallback cb, Scope scope)
{
    ++statWrites;
    Addr block = blockAlign(addr);
    // Capture order matters: the 1-byte scope ahead of the align-1
    // DataBlock keeps the capture within the inline event slot.
    after(params.latency,
          [this, block, mask, scope, src, cb = std::move(cb)] {
        if (params.writeBack && scope != Scope::System) {
            ViLine &line = allocateLine(block);
            line.write(src, mask, true);
        } else {
            // Write-through (or system-scope): update a present copy
            // and forward to system visibility.
            ViLine *line = array.lookup(block);
            if (line)
                line->write(src, mask, false);
            sendWriteThrough(block, src, mask, false, line != nullptr);
        }
        cb();
    });
}

void
TccController::atomic(Addr addr, AtomicOp op, std::uint64_t operand,
                      std::uint64_t operand2, unsigned size, Scope scope,
                      ValueCallback cb, std::uint64_t obs_id)
{
    Addr block = blockAlign(addr);
    unsigned off = blockOffset(addr);
    panic_if(off % size != 0, "misaligned atomic at %#llx",
             (unsigned long long)addr);

    if (scope == Scope::System) {
        ++statAtomicsSys;
        after(params.latency, [this, block, off, op, operand, operand2,
                               size, obs_id, cb = std::move(cb)]() mutable {
            // SLC requests bypass the TCC (non-inclusive behaviour):
            // self-invalidate our copy, draining dirty bytes first so
            // the ordered channel applies them before the atomic.
            if (ViLine *line = array.lookup(block, false)) {
                if (line->dirty()) {
                    sendWriteThrough(block, line->data, line->dirtyMask,
                                     false, false, ObsClass::WriteBack);
                }
                array.invalidate(block);
            }
            obsEmit(obs_id, ObsPhase::Inject, block);
            Msg m;
            m.type = MsgType::Atomic;
            m.addr = block;
            m.sender = id;
            m.obsId = obs_id;
            m.txnId = nextAtomicId++;
            m.atomicOp = op;
            m.atomicOffset = off;
            m.atomicSize = size;
            m.atomicOperand = operand;
            m.atomicOperand2 = operand2;
            pendingAtomics.emplace(
                m.txnId, PendingAtomic{block, curTick(), std::move(cb)});
            toDir.enqueue(m);
        });
        return;
    }

    // Device (GLC) and wave scope execute on the TCC's own copy.
    ++statAtomicsDev;
    ByteMask word_mask = makeMask(off, size);
    auto execute = [this, block, off, op, operand, operand2, size,
                    word_mask, cb = std::move(cb)]() {
        ViLine *line = array.lookup(block);
        panic_if(!line || !line->covers(word_mask),
                 "GLC atomic on unfilled line %#llx",
                 (unsigned long long)block);
        if (storage) {
            storage->access(storageArrayId, block, line->data,
                            curTick());
            storage->noteConsumption(name(), block, line->data,
                                     curTick());
        }
        std::uint64_t old_val = size == 4
            ? line->data.get<std::uint32_t>(off)
            : line->data.get<std::uint64_t>(off);
        if (op == AtomicOp::Load) {
            cb(old_val);
            return;
        }
        std::uint64_t new_val = applyAtomic(op, old_val, operand, operand2);
        DataBlock upd = line->data;
        if (size == 4)
            upd.set<std::uint32_t>(off, std::uint32_t(new_val));
        else
            upd.set<std::uint64_t>(off, new_val);
        if (params.writeBack) {
            line->write(upd, word_mask, true);
        } else {
            line->write(upd, word_mask, false);
            sendWriteThrough(block, upd, word_mask, false, true);
        }
        cb(old_val);
    };

    after(params.latency, [this, block, word_mask, obs_id,
                           execute = std::move(execute)]() mutable {
        ViLine *line = array.lookup(block);
        if (line && line->covers(word_mask)) {
            ++statHits;
            obsEmit(obs_id, ObsPhase::LocalHit, block);
            execute();
            return;
        }
        ++statMisses;
        requestFill(block,
                    [execute = std::move(execute)](const DataBlock &) {
                        execute();
                    },
                    obs_id);
    });
}

void
TccController::release(DoneCallback cb)
{
    after(params.latency, [this, cb = std::move(cb)]() mutable {
        // Drain every dirty byte to system visibility as Flush
        // requests; lines stay resident but clean.
        std::vector<std::pair<Addr, ViLine *>> dirty_lines;
        array.forEach([&](Addr a, const ViLine &l) {
            if (l.dirty())
                dirty_lines.push_back({a, const_cast<ViLine *>(&l)});
        });
        for (auto &[a, line] : dirty_lines) {
            if (storage)
                storage->access(storageArrayId, a, line->data, curTick());
            sendWriteThrough(a, line->data, line->dirtyMask, true, true);
            line->dirtyMask = 0;
        }
        if (outstandingWrites == 0) {
            cb();
        } else {
            releaseWaiters.push_back(std::move(cb));
        }
    });
}

void
TccController::handleFromDir(Msg &&msg)
{
    if (checker) {
        // VI meta-states: Fill (outstanding TccRdBlk), A (pending
        // system atomic), W (outstanding write-through), V (valid
        // line), I.  Responses must match a transaction.
        std::string_view st = "I";
        switch (msg.type) {
          case MsgType::SysResp:
            st = fills.count(msg.addr) ? "Fill"
                 : array.peek(msg.addr) ? "V" : "I";
            break;
          case MsgType::AtomicResp:
            st = pendingAtomics.count(msg.txnId) ? "A" : "I";
            break;
          case MsgType::WBAck:
            st = outstandingWrites > 0 ? "W" : "I";
            break;
          default:
            st = array.peek(msg.addr) ? "V"
                 : fills.count(msg.addr) ? "Fill" : "I";
            break;
        }
        if (!checker->noteEvent(CheckerCtrl::Tcc, name(), msg.addr, st,
                                msgTypeName(msg.type)))
            return;  // illegal in this state: flagged, message dropped
    }

    switch (msg.type) {
      case MsgType::SysResp: {
        // Fill completion; the granted state is ignored (§II-A: an
        // Exclusive grant is ignored by the TCC).
        deferred.push_back(std::move(msg));
        after(params.latency, [this] { processDeferred(); });
        break;
      }
      case MsgType::AtomicResp: {
        auto it = pendingAtomics.find(msg.txnId);
        panic_if(it == pendingAtomics.end(),
                 "%s: atomic resp with no pending atomic", name().c_str());
        auto cb = std::move(it->second.cb);
        pendingAtomics.erase(it);
        cb(msg.atomicResult);
        break;
      }
      case MsgType::WBAck: {
        panic_if(outstandingWrites == 0, "%s: spurious WBAck",
                 name().c_str());
        obsEmit(msg.obsId, ObsPhase::Complete, msg.addr);
        if (--outstandingWrites == 0) {
            auto waiters = std::move(releaseWaiters);
            releaseWaiters.clear();
            for (auto &w : waiters)
                w();
        }
        break;
      }
      case MsgType::PrbInv:
      case MsgType::PrbDowngrade: {
        ++statProbesRecvd;
        deferred.push_back(std::move(msg));
        after(params.latency, [this] { processDeferred(); });
        break;
      }
      default:
        panic("%s: unexpected message %s from directory", name().c_str(),
              std::string(msgTypeName(msg.type)).c_str());
    }
}

void
TccController::processDeferred()
{
    Msg m = std::move(deferred.front());
    deferred.pop_front();
    if (m.type == MsgType::SysResp) {
        auto it = fills.find(m.addr);
        panic_if(it == fills.end(), "%s: fill resp with no MSHR",
                 name().c_str());
        ViLine &line = allocateLine(m.addr);
        bool was_clean_fill = !line.dirty();
        line.fill(m.data);
        if (storage) {
            // A clean fill rewrites every cell of the line (repairing
            // a latent flip); the cbs then hand it to waiting lanes.
            if (was_clean_fill)
                storage->noteFullOverwrite(storageArrayId, m.addr);
            storage->noteConsumption(name(), m.addr, line.data,
                                     curTick(), it->second.obsId);
        }
        auto cbs = std::move(it->second.cbs);
        fills.erase(it);
        for (auto &cb : cbs)
            cb(line.data);
        return;
    }
    obsEmit(m.obsId, ObsPhase::ProbeIn, m.addr);
    Msg resp;
    resp.type = MsgType::PrbResp;
    resp.addr = m.addr;
    resp.sender = id;
    resp.txnId = m.txnId;
    ViLine *line = array.lookup(m.addr, false);
    resp.hit = line != nullptr;
    // The TCC never forwards data; on an invalidating probe it
    // invalidates itself, dropping even dirty bytes (VIPER semantics:
    // unsynchronised GPU data is not protected).
    if (line && m.type == MsgType::PrbInv) {
        array.invalidate(m.addr);
        ++statProbeInvalidations;
    }
    toDir.enqueue(resp);
}

bool
TccController::lineDirty(Addr addr) const
{
    const ViLine *l = array.peek(addr);
    return l && l->dirty();
}

void
TccController::inFlightTransactions(Tick now,
                                    std::vector<TxnInfo> &out) const
{
    for (const auto &[addr, fill] : fills) {
        TxnInfo t;
        t.controller = name();
        t.addr = addr;
        t.state = "fill (" + std::to_string(fill.cbs.size()) +
                  " merged reader(s))";
        t.waitingFor = "SysResp from directory";
        t.age = now - fill.startedAt;
        out.push_back(std::move(t));
    }
    for (const auto &[txn, pa] : pendingAtomics) {
        TxnInfo t;
        t.controller = name();
        t.addr = pa.addr;
        t.txnId = txn;
        t.state = "system-scope atomic";
        t.waitingFor = "AtomicResp from directory";
        t.age = now - pa.startedAt;
        out.push_back(std::move(t));
    }
}

std::string
TccController::stateSummary() const
{
    std::ostringstream os;
    os << name() << ": " << fills.size() << " outstanding fills, "
       << pendingAtomics.size() << " pending atomics, "
       << outstandingWrites << " unacked write-throughs, "
       << releaseWaiters.size() << " release waiter(s), "
       << array.occupancy() << " lines";
    return os.str();
}

std::uint64_t
TccController::progressCount() const
{
    return statReads.value() + statWrites.value() +
           statAtomicsDev.value() + statAtomicsSys.value();
}

void
TccController::serialize(JsonValue &out) const
{
    panic_if(!idle() || !releaseWaiters.empty() || !deferred.empty(),
             "%s: serialize with transactions in flight", name().c_str());

    serializeViArray(array, out);
    out.set("nextAtomicId", JsonValue(nextAtomicId));

    JsonValue guards = JsonValue::makeArray();
    for (const auto &g : ingressGuards)
        guards.push(JsonValue(g->lastSeq));
    out.set("ingress", std::move(guards));
}

void
TccController::restore(const JsonValue &in)
{
    restoreViArray(array, in);
    nextAtomicId = in.at("nextAtomicId").asUInt();

    const JsonValue &guards = in.at("ingress");
    if (guards.items().size() != ingressGuards.size()) {
        throw SimError("ingress guard count mismatch (config drift?)",
                       "snapshot");
    }
    for (std::size_t i = 0; i < ingressGuards.size(); ++i)
        ingressGuards[i]->lastSeq = guards.at(i).asUInt();
}

} // namespace hsc
