/**
 * @file
 * The line payload shared by the VIPER-style GPU caches (TCP, TCC,
 * SQC): Valid/Invalid protocol with per-byte valid and dirty masks so
 * write-back mode can victimise partially-written lines without
 * fetch-on-write.
 */

#ifndef HSC_PROTOCOL_GPU_VI_LINE_HH
#define HSC_PROTOCOL_GPU_VI_LINE_HH

#include "mem/data_block.hh"

namespace hsc
{

/** One GPU cache line. */
struct ViLine
{
    ByteMask validMask = 0;
    ByteMask dirtyMask = 0;
    DataBlock data;

    bool fullyValid() const { return validMask == FullMask; }
    bool dirty() const { return dirtyMask != 0; }

    /** True when the bytes of @p mask are all valid. */
    bool covers(ByteMask mask) const { return (validMask & mask) == mask; }

    /** Locally write the bytes of @p mask from @p src. */
    void
    write(const DataBlock &src, ByteMask mask, bool mark_dirty)
    {
        data.merge(src, mask);
        validMask |= mask;
        if (mark_dirty)
            dirtyMask |= mask;
    }

    /**
     * Fill from a directory response: the fetched data backfills only
     * bytes this cache has not itself written (dirty bytes win).
     */
    void
    fill(const DataBlock &fetched)
    {
        DataBlock merged = fetched;
        merged.merge(data, dirtyMask);
        data = merged;
        validMask = FullMask;
    }
};

} // namespace hsc

#endif // HSC_PROTOCOL_GPU_VI_LINE_HH
