#include "protocol/gpu/sqc.hh"

#include "obs/tracer.hh"
#include "protocol/gpu/vi_snapshot.hh"
#include "sim/coherence_checker.hh"

namespace hsc
{

SqcController::SqcController(std::string name, EventQueue &eq,
                             ClockDomain clk, const SqcParams &params,
                             TccController &tcc)
    : Clocked(std::move(name), eq, clk), params(params), tcc(tcc),
      array(this->name() + ".array", params.geom)
{
}

void
SqcController::attachTracer(ObsTracer *t)
{
    tracer = t;
    if (tracer)
        obsCtrl = tracer->internCtrl(name(), ObsCtrlKind::Sqc);
}

void
SqcController::regStats(StatRegistry &reg)
{
    const std::string &n = name();
    reg.addCounter(n + ".fetches", &statFetches);
    reg.addCounter(n + ".hits", &statHits);
    reg.addCounter(n + ".misses", &statMisses);
}

void
SqcController::fetch(Addr addr, DoneCallback cb)
{
    ++statFetches;
    Addr block = blockAlign(addr);
    // progress-tagged: a pending fetch is in-flight work for the
    // snapshot drain.
    scheduleCycles(params.latency, [this, block, cb = std::move(cb)] {
        eq.notifyProgress();
        if (array.lookup(block)) {
            ++statHits;
            cb();
            return;
        }
        ++statMisses;
        std::uint64_t obs_id = tracer
            ? tracer->newTxn(ObsClass::GpuIfetch, obsCtrl, block,
                             curTick())
            : 0;
        tcc.readBlock(block,
                      [this, block, obs_id, cb](const DataBlock &data) {
            if (checker)
                checker->noteEvent(CheckerCtrl::Sqc, name(), block,
                                   array.lookup(block, false) ? "V" : "I",
                                   "fill");
            if (!array.lookup(block)) {
                if (!array.hasFreeWay(block)) {
                    auto victim = array.findVictim(block);
                    array.invalidate(victim.addr);
                }
                array.allocate(block).fill(data);
            }
            if (tracer && obs_id)
                tracer->complete(obs_id, obsCtrl, block, curTick());
            cb();
        },
                      obs_id);
    }, EventPriority::Default, /*progress=*/true);
}

void
SqcController::invalidateAll()
{
    std::vector<Addr> lines;
    array.forEach([&](Addr a, const ViLine &) { lines.push_back(a); });
    for (Addr a : lines)
        array.invalidate(a);
}

std::string
SqcController::stateSummary() const
{
    return name() + ": " + std::to_string(array.occupancy()) +
           " lines (fetch misses tracked by the TCC)";
}

std::uint64_t
SqcController::progressCount() const
{
    return statFetches.value();
}

void
SqcController::serialize(JsonValue &out) const
{
    serializeViArray(array, out);
}

void
SqcController::restore(const JsonValue &in)
{
    restoreViArray(array, in);
}

} // namespace hsc
