/** @file Unit tests for the DRAM model. */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"

namespace hsc
{
namespace
{

TEST(MainMemory, FunctionalReadOfUntouchedIsZero)
{
    EventQueue eq;
    MainMemory mem("mem", eq, 100, 10);
    DataBlock b = mem.functionalRead(0x4000);
    DataBlock zero;
    EXPECT_TRUE(b == zero);
}

TEST(MainMemory, FunctionalWordHelpers)
{
    EventQueue eq;
    MainMemory mem("mem", eq, 100, 10);
    mem.functionalWriteWord<std::uint32_t>(0x1004, 0xCAFE);
    mem.functionalWriteWord<std::uint64_t>(0x1038, 0x1122334455667788ull);
    EXPECT_EQ(mem.functionalReadWord<std::uint32_t>(0x1004), 0xCAFEu);
    EXPECT_EQ(mem.functionalReadWord<std::uint64_t>(0x1038),
              0x1122334455667788ull);
    // Other bytes in the block stay zero.
    EXPECT_EQ(mem.functionalReadWord<std::uint32_t>(0x1000), 0u);
}

TEST(MainMemory, TimedReadLatency)
{
    EventQueue eq;
    MainMemory mem("mem", eq, 100, 10);
    mem.functionalWriteWord<std::uint64_t>(0x2000, 77);
    Tick arrival = 0;
    std::uint64_t val = 0;
    eq.schedule(5, [&] {
        mem.read(0x2000, [&](const DataBlock &b) {
            arrival = eq.curTick();
            val = b.get<std::uint64_t>(0);
        });
    });
    eq.run();
    EXPECT_EQ(arrival, 105u);
    EXPECT_EQ(val, 77u);
}

TEST(MainMemory, OrderedChannelSerializesReads)
{
    EventQueue eq;
    MainMemory mem("mem", eq, 100, 40);
    std::vector<Tick> arrivals;
    eq.schedule(0, [&] {
        for (int i = 0; i < 3; ++i) {
            mem.read(0x1000 + i * 64, [&](const DataBlock &) {
                arrivals.push_back(eq.curTick());
            });
        }
    });
    eq.run();
    ASSERT_EQ(arrivals.size(), 3u);
    EXPECT_EQ(arrivals[0], 100u);
    EXPECT_EQ(arrivals[1], 140u);
    EXPECT_EQ(arrivals[2], 180u);
}

TEST(MainMemory, MaskedTimedWrite)
{
    EventQueue eq;
    MainMemory mem("mem", eq, 10, 1);
    DataBlock init;
    init.set<std::uint32_t>(0, 0x11111111);
    init.set<std::uint32_t>(4, 0x22222222);
    mem.functionalWrite(0x3000, init);

    eq.schedule(0, [&] {
        DataBlock upd;
        upd.set<std::uint32_t>(4, 0x99999999);
        mem.write(0x3000, upd, makeMask(4, 4));
    });
    eq.run();
    EXPECT_EQ(mem.functionalReadWord<std::uint32_t>(0x3000), 0x11111111u);
    EXPECT_EQ(mem.functionalReadWord<std::uint32_t>(0x3004), 0x99999999u);
}

TEST(MainMemory, CountsReadsAndWrites)
{
    EventQueue eq;
    StatRegistry reg;
    MainMemory mem("mem", eq, 10, 1);
    mem.regStats(reg);
    eq.schedule(0, [&] {
        mem.read(0, [](const DataBlock &) {});
        mem.write(64, DataBlock());
        mem.write(128, DataBlock());
    });
    eq.run();
    EXPECT_EQ(mem.reads(), 1u);
    EXPECT_EQ(mem.writes(), 2u);
    EXPECT_EQ(reg.counter("mem.reads"), 1u);
    EXPECT_EQ(reg.counter("mem.writes"), 2u);
}

} // namespace
} // namespace hsc
