/** @file Unit tests for the message vocabulary and atomic ALU. */

#include <gtest/gtest.h>

#include "mem/message.hh"

namespace hsc
{
namespace
{

TEST(MsgType, WritePermissionClassification)
{
    EXPECT_TRUE(isWritePermission(MsgType::RdBlkM));
    EXPECT_TRUE(isWritePermission(MsgType::WriteThrough));
    EXPECT_TRUE(isWritePermission(MsgType::Atomic));
    EXPECT_TRUE(isWritePermission(MsgType::DmaWrite));
    EXPECT_FALSE(isWritePermission(MsgType::RdBlk));
    EXPECT_FALSE(isWritePermission(MsgType::VicDirty));
}

TEST(MsgType, ReadPermissionClassification)
{
    EXPECT_TRUE(isReadPermission(MsgType::RdBlk));
    EXPECT_TRUE(isReadPermission(MsgType::RdBlkS));
    EXPECT_TRUE(isReadPermission(MsgType::TccRdBlk));
    EXPECT_TRUE(isReadPermission(MsgType::DmaRead));
    EXPECT_FALSE(isReadPermission(MsgType::RdBlkM));
}

TEST(MsgType, NamesAreDistinct)
{
    EXPECT_EQ(msgTypeName(MsgType::RdBlk), "RdBlk");
    EXPECT_EQ(msgTypeName(MsgType::VicClean), "VicClean");
    EXPECT_EQ(msgTypeName(MsgType::PrbInv), "PrbInv");
    EXPECT_EQ(msgTypeName(MsgType::Unblock), "Unblock");
}

TEST(AtomicAlu, Add)
{
    EXPECT_EQ(applyAtomic(AtomicOp::Add, 10, 5, 0), 15u);
}

TEST(AtomicAlu, Exch)
{
    EXPECT_EQ(applyAtomic(AtomicOp::Exch, 10, 99, 0), 99u);
}

TEST(AtomicAlu, CasMatch)
{
    EXPECT_EQ(applyAtomic(AtomicOp::Cas, 10, 10, 77), 77u);
}

TEST(AtomicAlu, CasMismatchKeepsOld)
{
    EXPECT_EQ(applyAtomic(AtomicOp::Cas, 10, 11, 77), 10u);
}

TEST(AtomicAlu, MinMax)
{
    EXPECT_EQ(applyAtomic(AtomicOp::Min, 10, 3, 0), 3u);
    EXPECT_EQ(applyAtomic(AtomicOp::Min, 3, 10, 0), 3u);
    EXPECT_EQ(applyAtomic(AtomicOp::Max, 10, 3, 0), 10u);
    EXPECT_EQ(applyAtomic(AtomicOp::Max, 3, 10, 0), 10u);
}

TEST(AtomicAlu, Bitwise)
{
    EXPECT_EQ(applyAtomic(AtomicOp::Or, 0b1010, 0b0101, 0), 0b1111u);
    EXPECT_EQ(applyAtomic(AtomicOp::And, 0b1010, 0b0110, 0), 0b0010u);
}

TEST(AtomicAlu, LoadLeavesValue)
{
    EXPECT_EQ(applyAtomic(AtomicOp::Load, 42, 7, 9), 42u);
}

TEST(Msg, Defaults)
{
    Msg m;
    EXPECT_FALSE(m.hasData);
    EXPECT_FALSE(m.dirty);
    EXPECT_EQ(m.mask, FullMask);
    EXPECT_EQ(m.grant, Grant::None);
    EXPECT_EQ(m.sender, InvalidMachineId);
}

} // namespace
} // namespace hsc
