/** @file Unit tests for DataBlock and byte masks. */

#include <gtest/gtest.h>

#include "mem/data_block.hh"

namespace hsc
{
namespace
{

TEST(AddrHelpers, AlignAndOffset)
{
    EXPECT_EQ(blockAlign(0x1234), 0x1200u + 0x00u);
    EXPECT_EQ(blockAlign(0x1240), 0x1240u);
    EXPECT_EQ(blockOffset(0x1234), 0x34u);
    EXPECT_EQ(blockOffset(0x1240), 0u);
}

TEST(AddrHelpers, MakeMask)
{
    EXPECT_EQ(makeMask(0, 4), 0xFull);
    EXPECT_EQ(makeMask(8, 8), 0xFF00ull);
    EXPECT_EQ(makeMask(0, 64), FullMask);
    EXPECT_EQ(makeMask(60, 4), 0xF000000000000000ull);
}

TEST(DataBlock, ZeroInitialized)
{
    DataBlock b;
    for (unsigned i = 0; i < BlockSizeBytes; ++i)
        EXPECT_EQ(b.raw()[i], 0);
}

TEST(DataBlock, TypedGetSet)
{
    DataBlock b;
    b.set<std::uint32_t>(4, 0xDEADBEEF);
    b.set<std::uint64_t>(16, 0x0123456789ABCDEFull);
    b.set<std::uint8_t>(63, 0x7F);
    EXPECT_EQ(b.get<std::uint32_t>(4), 0xDEADBEEFu);
    EXPECT_EQ(b.get<std::uint64_t>(16), 0x0123456789ABCDEFull);
    EXPECT_EQ(b.get<std::uint8_t>(63), 0x7Fu);
    // Neighbouring bytes untouched.
    EXPECT_EQ(b.get<std::uint8_t>(3), 0u);
    EXPECT_EQ(b.get<std::uint8_t>(8), 0u);
}

TEST(DataBlock, OutOfRangeAccessPanics)
{
    DataBlock b;
    EXPECT_THROW(b.get<std::uint64_t>(60), std::logic_error);
    EXPECT_THROW(b.set<std::uint32_t>(62, 1), std::logic_error);
}

TEST(DataBlock, MaskedMerge)
{
    DataBlock dst, src;
    for (unsigned i = 0; i < BlockSizeBytes; ++i) {
        dst.raw()[i] = 0xAA;
        src.raw()[i] = static_cast<std::uint8_t>(i);
    }
    dst.merge(src, makeMask(8, 4));
    for (unsigned i = 0; i < BlockSizeBytes; ++i) {
        if (i >= 8 && i < 12)
            EXPECT_EQ(dst.raw()[i], i);
        else
            EXPECT_EQ(dst.raw()[i], 0xAA);
    }
}

TEST(DataBlock, FullMaskMergeCopiesAll)
{
    DataBlock dst, src;
    src.set<std::uint64_t>(0, 42);
    dst.merge(src, FullMask);
    EXPECT_TRUE(dst == src);
}

TEST(DataBlock, EqualityComparesBytes)
{
    DataBlock a, b;
    EXPECT_TRUE(a == b);
    a.set<std::uint8_t>(5, 1);
    EXPECT_FALSE(a == b);
}

} // namespace
} // namespace hsc
