/**
 * @file
 * StorageFaultInjector unit tests: deterministic flip schedules, the
 * SECDED outcome matrix (corrected / poisoned / silent), latent-flip
 * repair by scrubber and full-line overwrites, metadata containment,
 * snapshot round-trips, and the poison-carrying DataBlock semantics
 * the model rides on.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "mem/storage_fault.hh"
#include "sim/json.hh"
#include "sim/sim_error.hh"

namespace hsc
{
namespace
{

StorageFaultConfig
rateConfig(unsigned flip_per10k, unsigned double_per10k, bool ecc = true)
{
    StorageFaultConfig cfg;
    cfg.enabled = true;
    cfg.seed = 7;
    cfg.flipPer10kAccesses = flip_per10k;
    cfg.doublePer10k = double_per10k;
    cfg.ecc = ecc;
    return cfg;
}

DataBlock
patternBlock(std::uint8_t seed)
{
    DataBlock b;
    for (unsigned i = 0; i < BlockSizeBytes; ++i)
        b.raw()[i] = std::uint8_t(seed + i);
    return b;
}

TEST(StorageFault, ScheduleIsDeterministicPerSeedAndArray)
{
    // Two injectors with the same config see the same fault schedule;
    // a different seed sees a different one.
    StorageFaultConfig cfg = rateConfig(500, 0);
    StorageFaultInjector a(cfg), b(cfg);
    cfg.seed = 8;
    StorageFaultInjector c(cfg);
    unsigned ida = a.registerArray("l2");
    unsigned idb = b.registerArray("l2");
    unsigned idc = c.registerArray("l2");

    DataBlock da, db, dc;
    bool diverged = false;
    for (unsigned i = 0; i < 400; ++i) {
        a.access(ida, 0x1000, da, Tick(i));
        b.access(idb, 0x1000, db, Tick(i));
        c.access(idc, 0x1000, dc, Tick(i));
        if (a.summary().flips != c.summary().flips)
            diverged = true;
    }
    EXPECT_EQ(a.summary().flips, b.summary().flips);
    EXPECT_GT(a.summary().flips, 0u);
    EXPECT_TRUE(diverged) << "different seeds produced the same schedule";
}

TEST(StorageFault, ScheduleDependsOnAccessIndexNotAddress)
{
    // Fixed draw economy: the k-th access of an array decides its
    // fault from the k-th draws alone, so the flip *indices* are
    // identical across different address streams.
    StorageFaultConfig cfg = rateConfig(500, 0);
    StorageFaultInjector a(cfg), b(cfg);
    unsigned ida = a.registerArray("l2");
    unsigned idb = b.registerArray("l2");

    for (unsigned i = 0; i < 300; ++i) {
        DataBlock da, db;
        a.access(ida, 0x1000, da, Tick(i));
        b.access(idb, Addr(0x4000) + Addr(i) * BlockSizeBytes, db,
                 Tick(i));
        EXPECT_EQ(a.summary().flips, b.summary().flips) << "access " << i;
    }
}

TEST(StorageFault, SingleFlipIsCorrectedAndStaysLatent)
{
    // flip every access, never double: the first access plants a
    // latent single; stored bytes stay clean; SECDED counts a
    // correction on each subsequent access of the line.
    StorageFaultInjector inj(rateConfig(10000, 0));
    unsigned id = inj.registerArray("l2");
    DataBlock data = patternBlock(3);
    DataBlock orig = data;

    inj.access(id, 0x1000, data, 10);
    EXPECT_EQ(data, orig) << "ECC must hide the latent single";
    EXPECT_FALSE(data.poisoned());
    EXPECT_EQ(inj.summary().corrected, 1u);
    EXPECT_EQ(inj.pendingFlips(), 1u);
}

TEST(StorageFault, SecondFlipOnLatentLinePoisons)
{
    StorageFaultInjector inj(rateConfig(10000, 0));
    unsigned id = inj.registerArray("l2");
    DataBlock data = patternBlock(3);
    DataBlock orig = data;

    inj.access(id, 0x1000, data, 10); // latent single
    inj.access(id, 0x1000, data, 20); // second flip: uncorrectable
    EXPECT_TRUE(data.poisoned());
    EXPECT_NE(data, orig);
    EXPECT_EQ(inj.summary().poisoned, 1u);
    EXPECT_EQ(inj.pendingFlips(), 0u);
}

TEST(StorageFault, DoubleBitEventPoisonsImmediately)
{
    StorageFaultInjector inj(rateConfig(10000, 10000));
    unsigned id = inj.registerArray("l2");
    DataBlock data = patternBlock(9);
    DataBlock orig = data;

    inj.access(id, 0x2000, data, 5);
    EXPECT_TRUE(data.poisoned());
    EXPECT_NE(data, orig);
    EXPECT_EQ(inj.summary().poisoned, 1u);
    EXPECT_EQ(inj.summary().corrected, 0u);
}

TEST(StorageFault, EccOffCorruptsSilently)
{
    StorageFaultInjector inj(rateConfig(10000, 0, /*ecc=*/false));
    unsigned id = inj.registerArray("l2");
    DataBlock data = patternBlock(1);
    DataBlock orig = data;

    inj.access(id, 0x1000, data, 10);
    EXPECT_NE(data, orig) << "without ECC the flip must land";
    EXPECT_FALSE(data.poisoned());
    EXPECT_EQ(inj.summary().corrected, 0u);
    EXPECT_EQ(inj.summary().poisoned, 0u);
    EXPECT_FALSE(inj.tripped());
}

TEST(StorageFault, ScrubSweepRepairsLatentFlips)
{
    StorageFaultInjector inj(rateConfig(10000, 0));
    unsigned id = inj.registerArray("l2");
    DataBlock a = patternBlock(1), b = patternBlock(2);
    inj.access(id, 0x1000, a, 10);
    inj.access(id, 0x2000, b, 11);
    ASSERT_EQ(inj.pendingFlips(), 2u);

    inj.scrubSweep(100);
    EXPECT_EQ(inj.pendingFlips(), 0u);
    EXPECT_EQ(inj.summary().scrubRepairs, 2u);

    // A repaired line starts over: the next flip is a fresh latent
    // single, not an uncorrectable second hit.
    inj.access(id, 0x1000, a, 200);
    EXPECT_FALSE(a.poisoned());
    EXPECT_EQ(inj.summary().poisoned, 0u);
}

TEST(StorageFault, FullOverwriteRepairsTheLine)
{
    StorageFaultInjector inj(rateConfig(10000, 0));
    unsigned id = inj.registerArray("l2");
    DataBlock data = patternBlock(4);
    inj.access(id, 0x1000, data, 10);
    ASSERT_EQ(inj.pendingFlips(), 1u);

    inj.noteFullOverwrite(id, 0x1000);
    EXPECT_EQ(inj.pendingFlips(), 0u);

    inj.access(id, 0x1000, data, 20);
    EXPECT_FALSE(data.poisoned()) << "overwrite must clear the latent";
}

TEST(StorageFault, LatentFlipsAreKeyedPerArray)
{
    // The same address in two different arrays must not share a
    // latent entry (key = block | array id).
    StorageFaultInjector inj(rateConfig(10000, 0));
    unsigned l2 = inj.registerArray("l2");
    unsigned llc = inj.registerArray("llc");
    DataBlock a = patternBlock(1), b = patternBlock(2);

    inj.access(l2, 0x1000, a, 10);
    inj.access(llc, 0x1000, b, 11);
    EXPECT_EQ(inj.pendingFlips(), 2u);
    EXPECT_FALSE(a.poisoned());
    EXPECT_FALSE(b.poisoned());
}

TEST(StorageFault, OneShotFiresOnceAtTickAndDrawsNothing)
{
    StorageFaultConfig cfg;
    cfg.enabled = true;
    cfg.flipAtTick = 100;
    StorageFaultInjector inj(cfg);
    unsigned id = inj.registerArray("l2");
    DataBlock data = patternBlock(5);
    DataBlock orig = data;

    inj.access(id, 0x1000, data, 50); // before the arm point
    EXPECT_EQ(data, orig);
    EXPECT_FALSE(data.poisoned());

    inj.access(id, 0x1000, data, 100); // fires: double-bit, poisons
    EXPECT_TRUE(data.poisoned());
    EXPECT_NE(data, orig);
    EXPECT_EQ(inj.summary().poisoned, 1u);

    DataBlock other = patternBlock(6);
    inj.access(id, 0x2000, other, 200); // one-shot: never again
    EXPECT_FALSE(other.poisoned());
    EXPECT_EQ(inj.summary().flips, 1u);
}

TEST(StorageFault, ConsumptionOfPoisonTripsContainment)
{
    StorageFaultInjector inj(rateConfig(10000, 10000));
    unsigned id = inj.registerArray("l2");
    DataBlock data = patternBlock(7);
    inj.access(id, 0x3040, data, 10);
    ASSERT_TRUE(data.poisoned());
    ASSERT_FALSE(inj.tripped());

    inj.noteConsumption("cpu0", 0x3050, data, 42);
    ASSERT_TRUE(inj.tripped());
    const ContainmentReport &r = inj.containmentReport();
    EXPECT_EQ(r.kind, ContainmentReport::Kind::PoisonConsumed);
    EXPECT_EQ(r.atTick, 42u);
    EXPECT_EQ(r.consumer, "cpu0");
    EXPECT_EQ(r.addr, 0x3040u) << "report carries the block address";
    EXPECT_EQ(r.poisonConsumed, 1u);

    // First trip wins: a later consumption does not rewrite it.
    inj.noteConsumption("cpu1", 0x3040, data, 99);
    EXPECT_EQ(inj.containmentReport().consumer, "cpu0");
    EXPECT_EQ(inj.containmentReport().atTick, 42u);
}

TEST(StorageFault, CleanConsumptionNeverTrips)
{
    StorageFaultInjector inj(rateConfig(0, 0));
    inj.registerArray("l2");
    DataBlock data = patternBlock(8);
    inj.noteConsumption("cpu0", 0x1000, data, 10);
    EXPECT_FALSE(inj.tripped());
    EXPECT_EQ(inj.summary().poisonConsumed, 0u);
}

TEST(StorageFault, MetadataUncorrectableContainsImmediately)
{
    StorageFaultInjector inj(rateConfig(10000, 10000));
    unsigned meta = inj.registerMetaArray("dir.meta");
    inj.metaAccess(meta, 0x5000, 33);
    ASSERT_TRUE(inj.tripped());
    const ContainmentReport &r = inj.containmentReport();
    EXPECT_EQ(r.kind, ContainmentReport::Kind::MetadataUncorrectable);
    EXPECT_EQ(r.consumer, "dir.meta");
    EXPECT_EQ(inj.summary().metaUncorrectable, 1u);
}

TEST(StorageFault, MetadataSinglesAreCorrected)
{
    StorageFaultInjector inj(rateConfig(10000, 0));
    unsigned meta = inj.registerMetaArray("dir.meta");
    for (unsigned i = 0; i < 16; ++i)
        inj.metaAccess(meta, 0x5000, Tick(i));
    EXPECT_FALSE(inj.tripped());
    EXPECT_EQ(inj.summary().metaCorrected, 16u);
}

TEST(StorageFault, SerializeRestoreResumesTheSameFaultTail)
{
    // Run injector A for a prefix, snapshot it into B, then drive
    // both with the same suffix: every counter must stay identical —
    // the resumed stream draws the same fault tail.
    StorageFaultConfig cfg = rateConfig(2000, 3000);
    StorageFaultInjector a(cfg);
    unsigned ida = a.registerArray("l2");
    DataBlock da = patternBlock(1);
    for (unsigned i = 0; i < 100; ++i)
        a.access(ida, Addr(0x1000) + Addr(i % 8) * BlockSizeBytes, da,
                 Tick(i));

    JsonValue snap;
    a.serialize(snap);
    StorageFaultInjector b(cfg);
    unsigned idb = b.registerArray("l2");
    b.restore(snap);
    EXPECT_EQ(b.pendingFlips(), a.pendingFlips());

    DataBlock db = da;
    for (unsigned i = 100; i < 300; ++i) {
        Addr addr = Addr(0x1000) + Addr(i % 8) * BlockSizeBytes;
        a.access(ida, addr, da, Tick(i));
        b.access(idb, addr, db, Tick(i));
    }
    // Flip/poison *deltas* must match; absolute counters restart at
    // zero in B (stats live in the registry, not the snapshot).
    EXPECT_EQ(a.pendingFlips(), b.pendingFlips());
    EXPECT_EQ(da.poisoned(), db.poisoned());
    EXPECT_EQ(0, std::memcmp(da.raw(), db.raw(), BlockSizeBytes));
}

TEST(StorageFault, RestoreRejectsMalformedRows)
{
    StorageFaultInjector inj(rateConfig(100, 0));
    JsonValue bad = parseJson(
        "{\"oneShotArmed\": 0, \"streams\": [[1, 2]], \"pending\": []}");
    EXPECT_THROW(inj.restore(bad), SimError);
}

TEST(StorageFaultDataBlock, PoisonHexRoundTrip)
{
    DataBlock clean = patternBlock(0x20);
    std::string hex = blockToHex(clean);
    EXPECT_EQ(hex.size(), 128u) << "clean encoding is unchanged";
    EXPECT_EQ(blockFromHex(hex), clean);
    EXPECT_FALSE(blockFromHex(hex).poisoned());

    DataBlock poisoned = clean;
    poisoned.setPoisoned(true);
    std::string phex = blockToHex(poisoned);
    ASSERT_EQ(phex.size(), 129u);
    EXPECT_EQ(phex.back(), 'p');
    DataBlock back = blockFromHex(phex);
    EXPECT_TRUE(back.poisoned());
    EXPECT_EQ(back, clean) << "bytes-only equality ignores poison";
}

TEST(StorageFaultDataBlock, MergeMovesPoisonWithTheBytes)
{
    DataBlock clean = patternBlock(1);
    DataBlock bad = patternBlock(2);
    bad.setPoisoned(true);

    DataBlock full = clean;
    full.merge(bad, FullMask);
    EXPECT_TRUE(full.poisoned()) << "full merge replaces poison";

    DataBlock cured = bad;
    cured.merge(clean, FullMask);
    EXPECT_FALSE(cured.poisoned()) << "full clean overwrite cures";

    DataBlock partial = clean;
    partial.merge(bad, makeMask(0, 8));
    EXPECT_TRUE(partial.poisoned()) << "partial merge contaminates";

    DataBlock untouched = clean;
    untouched.merge(bad, 0);
    EXPECT_FALSE(untouched.poisoned()) << "empty merge moves nothing";
    EXPECT_EQ(untouched, clean);
}

} // namespace
} // namespace hsc
