/**
 * @file
 * Property sweeps over the memory substrate: DataBlock masked-merge
 * algebra on random masks, atomic-ALU identities, address-helper
 * round trips, and MainMemory read-your-writes under random access
 * sequences.
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "mem/message.hh"
#include "sim/rng.hh"

namespace hsc
{
namespace
{

class SeedSweep : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(SeedSweep, MaskedMergeAlgebra)
{
    Rng rng(GetParam());
    for (int step = 0; step < 300; ++step) {
        DataBlock a, b;
        for (unsigned i = 0; i < BlockSizeBytes; ++i) {
            a.raw()[i] = std::uint8_t(rng.next());
            b.raw()[i] = std::uint8_t(rng.next());
        }
        ByteMask m1 = rng.next();
        ByteMask m2 = rng.next();

        // merge(m) takes exactly the m-bytes of the source.
        DataBlock r = a;
        r.merge(b, m1);
        for (unsigned i = 0; i < BlockSizeBytes; ++i) {
            std::uint8_t want =
                (m1 >> i) & 1 ? b.raw()[i] : a.raw()[i];
            ASSERT_EQ(r.raw()[i], want);
        }

        // Sequential merges compose like the OR of their masks.
        DataBlock two = a;
        two.merge(b, m1);
        two.merge(b, m2);
        DataBlock once = a;
        once.merge(b, m1 | m2);
        ASSERT_TRUE(two == once);

        // Merging with an empty mask is the identity.
        DataBlock id = a;
        id.merge(b, 0);
        ASSERT_TRUE(id == a);

        // Merging a block into itself is the identity.
        DataBlock self = a;
        self.merge(a, m1);
        ASSERT_TRUE(self == a);
    }
}

TEST_P(SeedSweep, AtomicAluIdentities)
{
    Rng rng(GetParam());
    for (int step = 0; step < 500; ++step) {
        std::uint64_t x = rng.next(), y = rng.next(), z = rng.next();
        // CAS(x, x, z) == z; CAS(x, y!=x, z) == x.
        EXPECT_EQ(applyAtomic(AtomicOp::Cas, x, x, z), z);
        if (x != y) {
            EXPECT_EQ(applyAtomic(AtomicOp::Cas, x, y, z), x);
        }
        // Exch ignores the old value.
        EXPECT_EQ(applyAtomic(AtomicOp::Exch, x, y, 0), y);
        // Min/Max are idempotent and commutative-consistent.
        std::uint64_t mn = applyAtomic(AtomicOp::Min, x, y, 0);
        std::uint64_t mx = applyAtomic(AtomicOp::Max, x, y, 0);
        EXPECT_EQ(mn, std::min(x, y));
        EXPECT_EQ(mx, std::max(x, y));
        EXPECT_EQ(applyAtomic(AtomicOp::Min, mn, y, 0), mn);
        // Or/And with self are idempotent.
        EXPECT_EQ(applyAtomic(AtomicOp::Or, x, x, 0), x);
        EXPECT_EQ(applyAtomic(AtomicOp::And, x, x, 0), x);
        // Load never changes the value.
        EXPECT_EQ(applyAtomic(AtomicOp::Load, x, y, z), x);
    }
}

TEST_P(SeedSweep, AddrHelpersRoundTrip)
{
    Rng rng(GetParam());
    for (int step = 0; step < 1000; ++step) {
        Addr a = rng.next() & 0xFFFFFFFFFFFFull;
        EXPECT_EQ(blockAlign(a) + blockOffset(a), a);
        EXPECT_EQ(blockOffset(blockAlign(a)), 0u);
        EXPECT_EQ(blockAlign(blockAlign(a)), blockAlign(a));
        unsigned off = unsigned(rng.below(57));
        unsigned size = 1u << rng.below(4);
        ByteMask m = makeMask(off, size);
        EXPECT_EQ(__builtin_popcountll(m), int(size));
        EXPECT_EQ(m & (m - 1), m & ~(ByteMask(1) << off) & m)
            << "mask must start at the offset";
    }
}

TEST_P(SeedSweep, MemoryReadYourWrites)
{
    EventQueue eq;
    MainMemory mem("mem", eq, 50, 5);
    Rng rng(GetParam());
    std::map<Addr, std::uint64_t> model;
    for (int step = 0; step < 400; ++step) {
        Addr a = blockAlign(rng.below(1 << 16)) + rng.below(8) * 8;
        if (rng.chance(50)) {
            std::uint64_t v = rng.next();
            mem.functionalWriteWord<std::uint64_t>(a, v);
            model[a] = v;
        } else {
            std::uint64_t want = model.count(a) ? model[a] : 0;
            EXPECT_EQ(mem.functionalReadWord<std::uint64_t>(a), want);
        }
    }
    // Timed reads observe the same image.
    for (auto &[a, v] : model) {
        mem.read(a, [&eq, a = a, v = v, &mem](const DataBlock &blk) {
            EXPECT_EQ(blk.get<std::uint64_t>(blockOffset(a)), v)
                << std::hex << a;
        });
    }
    eq.run();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep,
                         ::testing::Values(1, 42, 0xDEADBEEF, 777),
                         [](const auto &info) {
                             return "seed" + std::to_string(info.index);
                         });

} // namespace
} // namespace hsc
