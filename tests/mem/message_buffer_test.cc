/** @file Unit tests for the ordered latency link. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/message_buffer.hh"

namespace hsc
{
namespace
{

TEST(MessageBuffer, DeliversAfterLatency)
{
    EventQueue eq;
    MessageBuffer link("l", eq, 100);
    Tick arrival = 0;
    link.setConsumer([&](Msg &&) { arrival = eq.curTick(); });
    eq.schedule(50, [&] {
        Msg m;
        m.type = MsgType::RdBlk;
        link.enqueue(m);
    });
    eq.run();
    EXPECT_EQ(arrival, 150u);
}

TEST(MessageBuffer, PreservesFifoOrder)
{
    EventQueue eq;
    MessageBuffer link("l", eq, 10);
    std::vector<Addr> order;
    link.setConsumer([&](Msg &&m) { order.push_back(m.addr); });
    eq.schedule(0, [&] {
        for (Addr a = 0; a < 5; ++a) {
            Msg m;
            m.addr = a * 64;
            link.enqueue(m);
        }
    });
    eq.run();
    ASSERT_EQ(order.size(), 5u);
    for (Addr a = 0; a < 5; ++a)
        EXPECT_EQ(order[a], a * 64);
}

TEST(MessageBuffer, CountsMessages)
{
    EventQueue eq;
    StatRegistry reg;
    MessageBuffer link("link", eq, 1);
    link.regStats(reg);
    link.setConsumer([](Msg &&) {});
    eq.schedule(0, [&] {
        link.enqueue(Msg{});
        link.enqueue(Msg{});
    });
    eq.run();
    EXPECT_EQ(link.messageCount(), 2u);
    EXPECT_EQ(reg.counter("link.messages"), 2u);
}

TEST(MessageBuffer, PayloadSurvivesTransit)
{
    EventQueue eq;
    MessageBuffer link("l", eq, 7);
    Msg got;
    link.setConsumer([&](Msg &&m) { got = m; });
    eq.schedule(0, [&] {
        Msg m;
        m.type = MsgType::WriteThrough;
        m.addr = 0x1000;
        m.hasData = true;
        m.data.set<std::uint32_t>(12, 0xABCD);
        m.mask = makeMask(12, 4);
        link.enqueue(m);
    });
    eq.run();
    EXPECT_EQ(got.type, MsgType::WriteThrough);
    EXPECT_EQ(got.addr, 0x1000u);
    EXPECT_TRUE(got.hasData);
    EXPECT_EQ(got.data.get<std::uint32_t>(12), 0xABCDu);
    EXPECT_EQ(got.mask, makeMask(12, 4));
}

} // namespace
} // namespace hsc
