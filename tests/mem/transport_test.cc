/**
 * @file
 * LinkTransport unit tests: exactly-once in-order delivery over lossy
 * wires (drop/duplicate/corrupt/reorder), checksum coverage, clean-run
 * zero-overhead guarantees, retry-budget degradation, and the
 * controller-ingress dedup guard.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "mem/message_buffer.hh"
#include "mem/transport.hh"
#include "sim/fault_injector.hh"

namespace hsc
{
namespace
{

constexpr Tick kPeriod = 10;    // ticks per CPU cycle
constexpr Tick kLatency = 100;  // link latency in ticks

/**
 * A bidirectional link pair with the transport enabled on both
 * directions, mirroring how HsaSystem wires toDir/fromDir.
 */
struct LinkPair
{
    EventQueue eq;
    std::unique_ptr<FaultInjector> fi;
    MessageBuffer fwd;
    MessageBuffer rev;
    std::vector<Msg> fwdGot, revGot;
    std::vector<Tick> fwdTicks, revTicks;
    bool degraded = false;

    explicit LinkPair(const FaultConfig &fc = FaultConfig{},
                      TransportConfig tc = TransportConfig{})
        : fwd("sys.fwd", eq, kLatency, 0), rev("sys.rev", eq, kLatency, 1)
    {
        if (fc.enabled || !fc.deadLinks.empty()) {
            fi = std::make_unique<FaultInjector>(fc, kPeriod);
            fwd.attachFaultInjector(fi.get());
            rev.attachFaultInjector(fi.get());
        }
        tc.enabled = true;
        fwd.enableTransport(tc, kPeriod);
        rev.enableTransport(tc, kPeriod);
        fwd.transport()->pairWith(rev.transport());
        rev.transport()->pairWith(fwd.transport());
        auto on_degraded = [this] { degraded = true; };
        fwd.transport()->setOnDegraded(on_degraded);
        rev.transport()->setOnDegraded(on_degraded);
        fwd.setConsumer([this](Msg &&m) {
            fwdGot.push_back(m);
            fwdTicks.push_back(eq.curTick());
        });
        rev.setConsumer([this](Msg &&m) {
            revGot.push_back(m);
            revTicks.push_back(eq.curTick());
        });
    }

    /** Enqueue @p n tagged messages on @p buf at tick 0. */
    void
    feed(MessageBuffer &buf, unsigned n)
    {
        eq.schedule(0, [this, &buf, n] {
            for (unsigned i = 0; i < n; ++i) {
                Msg m;
                m.addr = Addr(i) * 64;
                m.hasData = true;
                m.data.set<std::uint64_t>(0, 0xC0FFEE00ull + i);
                buf.enqueue(m);
            }
        });
    }
};

void
expectExactlyOnceInOrder(const std::vector<Msg> &got, unsigned n)
{
    ASSERT_EQ(got.size(), n);
    for (unsigned i = 0; i < n; ++i) {
        EXPECT_EQ(got[i].addr, Addr(i) * 64) << "at index " << i;
        EXPECT_EQ(got[i].data.get<std::uint64_t>(0), 0xC0FFEE00ull + i)
            << "payload at index " << i;
    }
}

FaultConfig
lossyConfig(std::uint64_t seed, unsigned drop, unsigned dup,
            unsigned corrupt, Cycles jitter = 0)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = seed;
    fc.maxJitter = jitter;
    fc.dropPer10k = drop;
    fc.dupPer10k = dup;
    fc.corruptPer10k = corrupt;
    return fc;
}

TEST(Transport, CleanRunDeliversOnTimeWithZeroRecoveryWork)
{
    LinkPair lp;
    lp.feed(lp.fwd, 100);
    lp.eq.run();
    expectExactlyOnceInOrder(lp.fwdGot, 100);
    // Fault-free, the transport is pure bookkeeping: every frame
    // arrives exactly at the link latency, nothing is retransmitted,
    // nothing is deduplicated.
    for (Tick t : lp.fwdTicks)
        EXPECT_EQ(t, kLatency);
    EXPECT_EQ(lp.fwd.transport()->retransmitCount(), 0u);
    EXPECT_EQ(lp.fwd.transport()->dupDropCount(), 0u);
    EXPECT_EQ(lp.fwd.transport()->corruptDropCount(), 0u);
    EXPECT_EQ(lp.fwd.transport()->unackedCount(), 0u);
    // The receiver still acked everything (standalone frames: the
    // reverse direction carried no data to piggyback on).
    EXPECT_GT(lp.rev.transport()->ackFrameCount(), 0u);
}

TEST(Transport, ChecksumCoversHeaderAndPayload)
{
    Msg m;
    m.addr = 0x1000;
    m.tpSeq = 7;
    m.tpAck = 3;
    const std::uint32_t base = msgChecksum(m);

    Msg seq = m;
    seq.tpSeq = 8;
    EXPECT_NE(msgChecksum(seq), base);

    Msg ack = m;
    ack.tpAck = 4;
    EXPECT_NE(msgChecksum(ack), base);

    Msg addr = m;
    addr.addr = 0x1040;
    EXPECT_NE(msgChecksum(addr), base);

    // Payload bytes only count once hasData is set.
    Msg silent = m;
    silent.data.set<std::uint8_t>(5, 0xAB);
    EXPECT_EQ(msgChecksum(silent), base);
    silent.hasData = true;
    const std::uint32_t with_data = msgChecksum(silent);
    EXPECT_NE(with_data, base);
    silent.data.set<std::uint8_t>(5, 0xAC);
    EXPECT_NE(msgChecksum(silent), with_data);
}

TEST(Transport, LossRecoveredExactlyOnceInOrder)
{
    LinkPair lp(lossyConfig(5, /*drop=*/2000, 0, 0));
    lp.feed(lp.fwd, 200);
    lp.eq.run();
    expectExactlyOnceInOrder(lp.fwdGot, 200);
    EXPECT_GT(lp.fwd.transport()->retransmitCount(), 0u);
    EXPECT_GT(lp.fwd.transport()->wireDropCount(), 0u);
    EXPECT_EQ(lp.fwd.transport()->unackedCount(), 0u);
    EXPECT_FALSE(lp.degraded);
}

TEST(Transport, DuplicatesSuppressed)
{
    LinkPair lp(lossyConfig(6, 0, /*dup=*/5000, 0));
    lp.feed(lp.fwd, 200);
    lp.eq.run();
    expectExactlyOnceInOrder(lp.fwdGot, 200);
    EXPECT_GT(lp.fwd.transport()->dupDropCount(), 0u);
    EXPECT_EQ(lp.fwd.transport()->retransmitCount(), 0u);
}

TEST(Transport, CorruptionDetectedAndRecovered)
{
    LinkPair lp(lossyConfig(7, 0, 0, /*corrupt=*/2000));
    lp.feed(lp.fwd, 200);
    lp.eq.run();
    // Every payload arrives intact: corrupt frames fail the checksum,
    // are dropped, and the retransmission delivers the original bytes.
    expectExactlyOnceInOrder(lp.fwdGot, 200);
    EXPECT_GT(lp.fwd.transport()->corruptDropCount(), 0u);
    EXPECT_GT(lp.fwd.transport()->retransmitCount(), 0u);
}

TEST(Transport, JitterReorderRestoredInOrder)
{
    LinkPair lp(lossyConfig(8, 0, 0, 0, /*jitter=*/64));
    lp.feed(lp.fwd, 100);
    lp.eq.run();
    // Jitter up to 640 ticks scrambles wire arrival order; the reorder
    // buffer restores sequence order without any retransmissions
    // (640 ticks is well inside the 4000-tick timeout).
    expectExactlyOnceInOrder(lp.fwdGot, 100);
    EXPECT_EQ(lp.fwd.transport()->retransmitCount(), 0u);
    for (std::size_t i = 1; i < lp.fwdTicks.size(); ++i)
        EXPECT_GE(lp.fwdTicks[i], lp.fwdTicks[i - 1]);
}

TEST(Transport, BidirectionalStormSurvivesEverythingAtOnce)
{
    auto deliver = [] {
        LinkPair lp(lossyConfig(9, 500, 500, 100, /*jitter=*/16));
        lp.feed(lp.fwd, 300);
        lp.feed(lp.rev, 300);
        lp.eq.run();
        expectExactlyOnceInOrder(lp.fwdGot, 300);
        expectExactlyOnceInOrder(lp.revGot, 300);
        EXPECT_FALSE(lp.degraded);
        std::vector<Tick> ticks = lp.fwdTicks;
        ticks.insert(ticks.end(), lp.revTicks.begin(), lp.revTicks.end());
        return ticks;
    };
    // Recovery is part of the deterministic schedule: the same seed
    // replays the same delivery ticks.
    EXPECT_EQ(deliver(), deliver());
}

TEST(Transport, DeadLinkDegradesAfterRetryBudget)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.deadLinks = {"sys.fwd"};
    TransportConfig tc;
    tc.retryBudget = 4;
    LinkPair lp(fc, tc);
    lp.feed(lp.fwd, 3);
    lp.eq.run();

    EXPECT_TRUE(lp.degraded);
    EXPECT_TRUE(lp.fwd.transport()->isDegraded());
    EXPECT_FALSE(lp.rev.transport()->isDegraded());
    EXPECT_TRUE(lp.fwdGot.empty());
    DegradedLinkInfo info = lp.fwd.transport()->degradedInfo();
    EXPECT_EQ(info.link, "sys.fwd");
    EXPECT_EQ(info.headSeq, 1u);
    EXPECT_EQ(info.retries, 4u);
    EXPECT_EQ(info.unacked, 3u);
    // Original sends + budget retransmissions of the head, then stop.
    EXPECT_EQ(lp.fwd.transport()->retransmitCount(), 4u);
    EXPECT_EQ(lp.fwd.transport()->wireDropCount(), 7u);
}

TEST(Transport, BackoffSpacesRetransmissionsExponentially)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.deadLinks = {"sys.fwd"};
    TransportConfig tc;
    tc.retryBudget = 3;
    tc.backoffShiftCap = 6;
    LinkPair lp(fc, tc);
    lp.feed(lp.fwd, 1);
    lp.eq.run();
    // timeout, 2*timeout, 4*timeout after the first send, then the
    // budget-exhaustion check one more doubled deadline later.
    const Tick timeout = 400 * kPeriod;
    EXPECT_EQ(lp.eq.curTick(), timeout + 2 * timeout + 4 * timeout +
                                   8 * timeout);
    EXPECT_TRUE(lp.degraded);
}

TEST(Transport, DegradedReportFormatsLinks)
{
    DegradedReport r;
    EXPECT_FALSE(r.degraded());
    r.atTick = 12345;
    r.links.push_back({"sys.toDir.b0c1", 17, 16, 9, 100, 12345});
    EXPECT_TRUE(r.degraded());
    std::string brief = r.brief();
    EXPECT_NE(brief.find("sys.toDir.b0c1"), std::string::npos);
    EXPECT_NE(brief.find("17"), std::string::npos);
}

TEST(Transport, IngressDedupAcceptsExactlyOnce)
{
    IngressDedup g;
    Counter dups;
    Msg m;
    m.tpSeq = 0;  // transport off: always passes
    EXPECT_TRUE(g.accept(m, dups));
    EXPECT_TRUE(g.accept(m, dups));
    m.tpSeq = 1;
    EXPECT_TRUE(g.accept(m, dups));
    EXPECT_FALSE(g.accept(m, dups));  // replay of seq 1
    m.tpSeq = 2;
    EXPECT_TRUE(g.accept(m, dups));
    m.tpSeq = 1;  // stale replay after progress
    EXPECT_FALSE(g.accept(m, dups));
    EXPECT_EQ(dups.value(), 2u);
}

} // namespace
} // namespace hsc
