/**
 * @file
 * Kill-resume soak (tier-2): the full kernel-identity matrix — all
 * ten CHAI workloads under all six figure configurations — each
 * checkpointed at two distinct points, killed, and restored; every
 * resumed run must be bit-identical (cycles + full stat dump) to its
 * same-schedule uninterrupted reference, with the runtime coherence
 * checker ON throughout.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.hh"
#include "sim/hash.hh"
#include "workloads/workload.hh"

namespace hsc
{
namespace
{

using bench::figureParams;
using bench::scaleHierarchy;

std::uint64_t
statHash(StatRegistry &reg)
{
    std::uint64_t h = FnvOffsetBasis;
    for (const auto &[name, value] : reg.snapshot()) {
        h = fnvBytes(name.data(), name.size(), h);
        h = fnvBytes(&value, sizeof(value), h);
    }
    return h;
}

struct RunResult
{
    bool ok = false;
    Cycles cycles = 0;
    std::uint64_t stats = 0;
    std::uint64_t checkpoints = 0;
    std::string failReason;
};

RunResult
runOne(const std::string &wl, const SystemConfig &cfg)
{
    RunResult r;
    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    r.ok = sys.run() && workload->verify(sys);
    r.cycles = sys.cpuCycles();
    r.stats = statHash(sys.stats());
    r.checkpoints = sys.checkpointsTaken();
    r.failReason = sys.failReason();
    return r;
}

TEST(KillResumeSoak, FullMatrixBitIdentityAtTwoTicks)
{
    const std::vector<SystemConfig> configs = {
        baselineConfig(),        earlyRespConfig(),
        noCleanVicToMemConfig(), llcWriteBackConfig(),
        ownerTrackingConfig(),   sharerTrackingConfig(),
    };
    const std::string snap = ::testing::TempDir() + "soak.snapshot";

    unsigned resumed = 0, skipped = 0;
    for (const SystemConfig &base : configs) {
        SystemConfig cfg = base;
        scaleHierarchy(cfg);
        cfg.check = true; // identity must hold under full checking
        for (const std::string &wl : workloadIds()) {
            for (Cycles at : {Cycles(2000), Cycles(12000)}) {
                std::remove(snap.c_str());
                SystemConfig ref_cfg = cfg;
                ref_cfg.ckpt.atCycles = {at};
                ref_cfg.ckpt.outPath = snap;
                RunResult ref = runOne(wl, ref_cfg);
                ASSERT_TRUE(ref.ok) << wl << "/" << cfg.label << ": "
                                    << ref.failReason;
                if (ref.checkpoints == 0) {
                    // The run finished before the checkpoint point;
                    // nothing to resume from.  Only legal for the
                    // later point — the early one must always land.
                    ASSERT_GT(at, Cycles(2000))
                        << wl << "/" << cfg.label;
                    ++skipped;
                    continue;
                }
                SystemConfig res_cfg = cfg;
                res_cfg.ckpt.restorePath = snap;
                RunResult res = runOne(wl, res_cfg);
                EXPECT_TRUE(res.ok)
                    << wl << "/" << cfg.label << "@" << at << ": "
                    << res.failReason;
                EXPECT_EQ(res.cycles, ref.cycles)
                    << wl << "/" << cfg.label << "@" << at;
                EXPECT_EQ(res.stats, ref.stats)
                    << wl << "/" << cfg.label << "@" << at;
                ++resumed;
            }
        }
    }
    std::remove(snap.c_str());
    // Every pair resumed at the early point; most at the later one.
    EXPECT_GE(resumed, configs.size() * workloadIds().size());
    RecordProperty("resumed", int(resumed));
    RecordProperty("skipped", int(skipped));
}

} // namespace
} // namespace hsc
