/**
 * @file
 * Unit tests of the coroutine task machinery (SimTask, Await,
 * AwaitVoid) including the synchronous-completion edge case.
 *
 * Coroutines here are free functions taking state by reference (GCC 12
 * miscompiles directly-invoked capturing coroutine lambdas; the
 * library itself always routes lambdas through std::function, which
 * is unaffected).
 */

#include <gtest/gtest.h>

#include "core/task.hh"
#include "sim/event_queue.hh"

namespace hsc
{
namespace
{

SimTask
trivialBody(bool &ran)
{
    ran = true;
    co_return;
}

TEST(SimTask, StartsSuspendedRunsOnStart)
{
    bool body_ran = false;
    bool completed = false;
    SimTask t = trivialBody(body_ran);
    EXPECT_FALSE(body_ran) << "initial_suspend must hold the body";
    t.start([&] { completed = true; });
    EXPECT_TRUE(body_ran);
    EXPECT_TRUE(completed);
}

SimTask
twoStageBody(EventQueue &eq, int &stage)
{
    stage = 1;
    co_await AwaitVoid([&](std::function<void()> cb) {
        eq.schedule(100, std::move(cb));
    });
    stage = 2;
}

TEST(SimTask, AsynchronousAwaitResumesFromCallback)
{
    EventQueue eq;
    int stage = 0;
    twoStageBody(eq, stage).start();
    EXPECT_EQ(stage, 1);
    eq.run();
    EXPECT_EQ(stage, 2);
}

SimTask
valueBody(EventQueue &eq, std::uint64_t &got)
{
    got = co_await Await<std::uint64_t>(
        [&](std::function<void(std::uint64_t)> cb) {
            eq.schedule(10, [cb] { cb(777); });
        });
}

TEST(SimTask, ValueAwaitDeliversResult)
{
    EventQueue eq;
    std::uint64_t got = 0;
    valueBody(eq, got).start();
    eq.run();
    EXPECT_EQ(got, 777u);
}

SimTask
syncBody(int &result)
{
    // The starters invoke their callbacks before returning: the
    // awaiter must resume immediately instead of suspending forever.
    result = int(co_await Await<std::uint64_t>(
        [](std::function<void(std::uint64_t)> cb) { cb(5); }));
    result += int(co_await Await<std::uint64_t>(
        [](std::function<void(std::uint64_t)> cb) { cb(7); }));
}

TEST(SimTask, SynchronousCompletionDoesNotDeadlockOrCrash)
{
    int result = 0;
    bool done = false;
    SimTask t = syncBody(result);
    t.start([&] { done = true; });
    EXPECT_TRUE(done);
    EXPECT_EQ(result, 12);
}

SimTask
interleavedBody(EventQueue &eq, int i, std::uint64_t &sum)
{
    for (int k = 0; k < 4; ++k) {
        std::uint64_t v = co_await Await<std::uint64_t>(
            [&eq, i, k](std::function<void(std::uint64_t)> cb) {
                eq.schedule(Tick(10 * (i + 1) + k),
                            [cb, i, k] { cb(std::uint64_t(i + k)); });
            });
        sum += v;
    }
}

TEST(SimTask, ManyInterleavedTasks)
{
    EventQueue eq;
    int completions = 0;
    std::uint64_t sum = 0;
    for (int i = 0; i < 16; ++i)
        interleavedBody(eq, i, sum).start([&] { ++completions; });
    eq.run();
    EXPECT_EQ(completions, 16);
    std::uint64_t want = 0;
    for (int i = 0; i < 16; ++i)
        for (int k = 0; k < 4; ++k)
            want += std::uint64_t(i + k);
    EXPECT_EQ(sum, want);
}

SimTask
throwingBody(EventQueue &eq)
{
    co_await AwaitVoid([&](std::function<void()> cb) {
        eq.schedule(5, std::move(cb));
    });
    throw std::runtime_error("boom");
}

TEST(SimTask, ExceptionPropagatesOutOfRun)
{
    EventQueue eq;
    throwingBody(eq).start();
    EXPECT_THROW(eq.run(), std::runtime_error);
}

} // namespace
} // namespace hsc
