/**
 * @file
 * Tier-2 PDES recovery soak: RandomTester schedules over lossy wires
 * (1% drop, 1% dup, 0.1% corrupt behind the recovery transport) with
 * the sharded coherence checker ON, across {1, 2, 4, 8} worker
 * threads.  Every thread count must produce identical cycles, an
 * identical memory image and a byte-identical stat dump — the
 * retransmit/ack machinery, the wire-fate streams and the checker's
 * note merge are all pure functions of simulated state.  The
 * controllers' last-line ingress guards must never fire
 * (`ingress.dupDrops` == 0): the transport delivers exactly-once even
 * when its frames cross shard boundaries.
 *
 * A PDES system runs exactly once, so the soak drives runSchedule()
 * (which quiesces at the schedule boundary) rather than the two-run
 * RandomTester::run(); the checker's quiescent sweep still executes
 * inside the PDES run loop.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/hsa_system.hh"
#include "core/random_tester.hh"

namespace hsc
{
namespace
{

struct SoakResult
{
    bool ok = false;
    Cycles cycles = 0;
    std::uint64_t image = 0;
    std::string stats;
    std::uint64_t ingressDups = 0;
    std::uint64_t retransmits = 0;
    std::uint64_t tpDupDrops = 0;
    std::string failReason;
};

SystemConfig
lossyCheckedConfig(unsigned banks)
{
    SystemConfig cfg = baselineConfig();
    cfg.check = true;
    cfg.numDirBanks = banks;
    cfg.memChannels = banks; // PDES wants one channel per bank
    cfg.transport.enabled = true;
    cfg.fault.enabled = true;
    cfg.fault.seed = 3;
    cfg.fault.dropPer10k = 100;
    cfg.fault.dupPer10k = 100;
    cfg.fault.corruptPer10k = 10;
    return cfg;
}

SoakResult
runSoak(unsigned banks, std::uint64_t seed, unsigned threads)
{
    SystemConfig cfg = lossyCheckedConfig(banks);
    cfg.pdes.enabled = true;
    cfg.pdes.threads = threads;

    RandomTesterConfig tcfg;
    tcfg.seed = seed;
    tcfg.numLocations = 12;
    tcfg.roundsPerLocation = 4;

    SoakResult r;
    HsaSystem sys(cfg);
    RandomTester tester(sys, tcfg);
    r.ok = tester.runSchedule() && tester.failures().empty();
    if (!tester.failures().empty())
        r.failReason = tester.failures().front();
    r.cycles = sys.cpuCycles();
    r.image = sys.imageHash(sys.heapBase(), sys.heapEnd());
    std::ostringstream os;
    sys.stats().dump(os);
    r.stats = os.str();
    for (const auto &[name, value] : sys.stats().snapshot()) {
        if (name.find(".ingress.dupDrops") != std::string::npos)
            r.ingressDups += value;
    }
    TransportSummary ts = sys.transportSummary();
    r.retransmits = ts.retransmits;
    r.tpDupDrops = ts.dupDrops;
    return r;
}

void
soakIdentity(unsigned banks, std::uint64_t seed)
{
    SoakResult ref = runSoak(banks, seed, 1);
    ASSERT_TRUE(ref.ok) << "banks=" << banks << " seed=" << seed
                        << " 1thr: " << ref.failReason;
    EXPECT_EQ(ref.ingressDups, 0u)
        << "a duplicate leaked past the transport at 1 thread";
    // A soak that never retransmits or dedups proves nothing.
    EXPECT_GT(ref.retransmits, 0u) << "lossy wire forced no retransmit";
    EXPECT_GT(ref.tpDupDrops, 0u) << "lossy wire forced no dedup";
    for (unsigned t : {2u, 4u, 8u}) {
        SoakResult r = runSoak(banks, seed, t);
        std::string tag = "banks=" + std::to_string(banks) + " seed=" +
                          std::to_string(seed) + " " +
                          std::to_string(t) + "thr";
        ASSERT_TRUE(r.ok) << tag << ": " << r.failReason;
        EXPECT_EQ(r.cycles, ref.cycles) << tag;
        EXPECT_EQ(r.image, ref.image) << tag;
        EXPECT_EQ(r.stats, ref.stats) << tag << ": stat dump differs";
        EXPECT_EQ(r.ingressDups, 0u)
            << tag << ": a duplicate leaked past the transport";
    }
}

TEST(PdesRecoverySoak, SingleBankLossyCheckedIdentity)
{
    soakIdentity(1, 12345);
    soakIdentity(1, 777);
}

TEST(PdesRecoverySoak, BankedLossyCheckedIdentity)
{
    // Four directory banks = four bank shards, so checker notes and
    // transport frames cross shard boundaries in every direction.
    soakIdentity(4, 12345);
}

} // namespace
} // namespace hsc
