/**
 * @file
 * Schedule shrinking end-to-end: a seeded DropWrite bug (invisible to
 * the runtime checker by construction — the shadow never learns the
 * dropped bytes) makes a RandomTester run fail its value checks; ddmin
 * must isolate a tiny failing subsequence that still reproduces, and
 * the minimal schedule must survive a trace dump/reload/replay cycle.
 */

#include <gtest/gtest.h>

#include "core/schedule_shrink.hh"
#include "core/trace_replay.hh"

namespace hsc
{
namespace
{

SystemConfig
buggyConfig()
{
    SystemConfig cfg = baselineConfig();
    shrinkForTorture(cfg);
    // Value checking is the tester's job here: DropWrite narrows the
    // directory's write mask before the checker hook, so only an
    // end-to-end read can observe the loss.
    cfg.check = false;
    cfg.bug.kind = SeededBug::Kind::DropWrite;
    cfg.bug.addr = 0x100000;  // the tester's location 0
    return cfg;
}

RandomTesterConfig
testerConfig()
{
    RandomTesterConfig tcfg;
    tcfg.seed = 7;
    tcfg.numLocations = 6;
    tcfg.roundsPerLocation = 3;
    tcfg.numCpuThreads = 4;
    tcfg.numGpuWorkgroups = 2;
    return tcfg;
}

TEST(ScheduleShrink, PassingScheduleIsReportedAsSuch)
{
    SystemConfig cfg = baselineConfig();
    shrinkForTorture(cfg);
    RandomTesterConfig tcfg = testerConfig();
    TesterSchedule sched = buildTesterSchedule(tcfg);
    ShrinkResult res = shrinkSchedule(cfg, tcfg, sched);
    EXPECT_FALSE(res.originalFailed);
    EXPECT_EQ(res.testsRun, 1u);  // just the initial probe
}

TEST(ScheduleShrink, DropWriteShrinksToTinyReproducer)
{
    SystemConfig cfg = buggyConfig();
    RandomTesterConfig tcfg = testerConfig();
    TesterSchedule sched = buildTesterSchedule(tcfg);
    ASSERT_GT(sched.size(), 20u);

    ShrinkResult res = shrinkSchedule(cfg, tcfg, sched);
    ASSERT_TRUE(res.originalFailed);
    EXPECT_EQ(res.originalOps, sched.size());
    EXPECT_FALSE(res.failReason.empty());
    ASSERT_FALSE(res.minimal.empty());

    // The acceptance bar: at most 10% of the original schedule.
    EXPECT_LE(res.minimal.size() * 10, sched.size());

    // The minimal schedule still fails on a fresh system.
    {
        HsaSystem sys(cfg);
        RandomTester tester(sys, tcfg, res.minimal);
        EXPECT_FALSE(tester.run());
    }
    // Every surviving op touches the corrupted location: shrinking
    // really isolated the bug.
    for (const TesterOp &op : res.minimal.ops)
        EXPECT_EQ(op.loc, 0u);
}

TEST(ScheduleShrink, ShrinkIsDeterministic)
{
    SystemConfig cfg = buggyConfig();
    RandomTesterConfig tcfg = testerConfig();
    TesterSchedule sched = buildTesterSchedule(tcfg);
    ShrinkResult a = shrinkSchedule(cfg, tcfg, sched);
    ShrinkResult b = shrinkSchedule(cfg, tcfg, sched);
    ASSERT_TRUE(a.originalFailed);
    ASSERT_EQ(a.minimal.size(), b.minimal.size());
    EXPECT_EQ(a.testsRun, b.testsRun);
    for (std::size_t i = 0; i < a.minimal.size(); ++i) {
        EXPECT_EQ(a.minimal.ops[i].loc, b.minimal.ops[i].loc);
        EXPECT_EQ(a.minimal.ops[i].isWrite, b.minimal.ops[i].isWrite);
        EXPECT_EQ(a.minimal.ops[i].value, b.minimal.ops[i].value);
    }
}

TEST(ScheduleShrink, MinimalScheduleReplaysFromDisk)
{
    SystemConfig cfg = buggyConfig();
    RandomTesterConfig tcfg = testerConfig();
    ShrinkResult res =
        shrinkSchedule(cfg, tcfg, buildTesterSchedule(tcfg));
    ASSERT_TRUE(res.originalFailed);

    FailureTrace trace = captureFailureTrace(
        "baseline", /*torture=*/true, cfg, tcfg, res.minimal,
        /*sys=*/nullptr, res.failReason);
    std::string path = ::testing::TempDir() + "shrunk_trace.json";
    writeFailureTrace(trace, path);

    FailureTrace loaded = readFailureTrace(path);
    EXPECT_EQ(loaded.schedule.size(), res.minimal.size());
    EXPECT_EQ(loaded.failReason, res.failReason);
    EXPECT_EQ(loaded.bug.kind, SeededBug::Kind::DropWrite);

    ReplayResult replay = replayTrace(loaded);
    EXPECT_TRUE(replay.reproduced);
    EXPECT_FALSE(replay.failReason.empty());

    // Un-seeding the bug makes the same schedule pass: the failure
    // lives in the planted defect, not in the shrunk schedule.
    loaded.bug = SeededBug{};
    ReplayResult clean = replayTrace(loaded);
    EXPECT_FALSE(clean.reproduced);
}

TEST(ScheduleShrink, AnchoredShrinkIsolatesTheSameBug)
{
    SystemConfig cfg = buggyConfig();
    RandomTesterConfig tcfg = testerConfig();
    TesterSchedule sched = buildTesterSchedule(tcfg);
    std::string anchor = ::testing::TempDir() + "shrink_anchor.snapshot";

    ShrinkResult res =
        shrinkScheduleAnchored(cfg, tcfg, sched, anchor);
    ASSERT_TRUE(res.originalFailed);
    ASSERT_FALSE(res.minimal.empty());
    EXPECT_LE(res.minimal.size() * 10, sched.size());

    // The minimal schedule still fails on a fresh, anchor-free
    // system: the reproducer stands on its own.
    {
        HsaSystem sys(cfg);
        RandomTester tester(sys, tcfg, res.minimal);
        EXPECT_FALSE(tester.run());
    }
    for (const TesterOp &op : res.minimal.ops)
        EXPECT_EQ(op.loc, 0u);
}

TEST(ScheduleShrink, AnchoredShrinkFallsBackWhenNoPrefixPasses)
{
    // Location 0 is corrupted from the very first ops: when even
    // short prefixes fail, the anchor search finds nothing and the
    // anchored entry point must degrade to plain ddmin — same
    // result, anchorOps = 0.
    SystemConfig cfg = buggyConfig();
    RandomTesterConfig tcfg = testerConfig();
    tcfg.seed = 3; // a schedule whose early ops already hit loc 0
    TesterSchedule sched = buildTesterSchedule(tcfg);
    std::string anchor =
        ::testing::TempDir() + "shrink_anchor_fb.snapshot";

    ShrinkResult anchored =
        shrinkScheduleAnchored(cfg, tcfg, sched, anchor);
    if (!anchored.originalFailed)
        GTEST_SKIP() << "seed 3 does not reproduce under this config";
    ASSERT_FALSE(anchored.minimal.empty());
    HsaSystem sys(cfg);
    RandomTester tester(sys, tcfg, anchored.minimal);
    EXPECT_FALSE(tester.run());
}

} // namespace
} // namespace hsc
