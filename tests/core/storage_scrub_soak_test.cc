/**
 * @file
 * Storage-fault scrub soak (tier-2): many seeded runs under a steady
 * bit-flip rate with SECDED and the background scrubber on, runtime
 * coherence checker ON throughout.  The containment guarantee under
 * test: **no silent escapes** — every run either passes verification
 * clean, or ends in a structured ContainmentReport (poison consumed /
 * metadata uncorrectable).  A verification mismatch that nothing
 * attributed would mean corrupted data leaked past the ECC model.
 */

#include <gtest/gtest.h>

#include <string>

#include "core/trace_replay.hh"

namespace hsc
{
namespace
{

struct Outcome
{
    bool ok = false;
    bool contained = false;
    bool violated = false;
    std::string failReason;
    StorageSummary storage;
};

Outcome
runSeed(std::uint64_t seed, unsigned flip_per10k, Cycles scrub_every,
        unsigned double_per10k = 2000)
{
    SystemConfig cfg = baselineConfig();
    shrinkForTorture(cfg);
    cfg.check = true;
    cfg.storageFault.enabled = true;
    cfg.storageFault.seed = seed;
    cfg.storageFault.flipPer10kAccesses = flip_per10k;
    cfg.storageFault.doublePer10k = double_per10k;
    cfg.storageFault.scrubIntervalCycles = scrub_every;

    RandomTesterConfig tcfg;
    tcfg.seed = seed;
    tcfg.numLocations = 12;
    tcfg.roundsPerLocation = 4;
    TesterSchedule sched = buildTesterSchedule(tcfg);

    HsaSystem sys(cfg);
    RandomTester tester(sys, tcfg, sched);
    Outcome o;
    o.ok = tester.run();
    o.contained = sys.containmentReport().contained();
    o.violated = sys.checker() && sys.checker()->violated();
    o.failReason = sys.failReason();
    if (o.failReason.empty() && !tester.failures().empty())
        o.failReason = tester.failures().front();
    o.storage = sys.storageSummary();
    return o;
}

TEST(StorageScrubSoak, NoSilentEscapesAcrossSeeds)
{
    unsigned passed = 0, containments = 0, corrected = 0;
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        Outcome o = runSeed(seed, /*flip_per10k=*/25,
                            /*scrub_every=*/2'000);
        corrected += unsigned(o.storage.corrected);
        if (o.ok) {
            EXPECT_FALSE(o.contained) << "seed " << seed;
            ++passed;
            continue;
        }
        // A failing run must be *attributed*: containment or a
        // checker violation.  Anything else is a silent escape.
        EXPECT_TRUE(o.contained || o.violated)
            << "seed " << seed << " escaped containment: "
            << o.failReason;
        if (o.contained)
            ++containments;
    }
    // The soak must actually exercise both halves of the model: runs
    // surviving on corrected singles, and uncorrectables contained.
    EXPECT_GT(passed, 0u);
    EXPECT_GT(containments, 0u);
    EXPECT_GT(corrected, 0u);
    RecordProperty("passed", int(passed));
    RecordProperty("containments", int(containments));
    RecordProperty("eccCorrected", int(corrected));
}

TEST(StorageScrubSoak, ScrubberReducesUncorrectables)
{
    // Same fault streams, scrubbed vs unscrubbed.  The scrubber only
    // interdicts the *latent* path (a second single-bit hit on a line
    // already carrying one); immediate double-bit events are
    // unpreventable by construction, so they are turned off here
    // (doublePer10k = 0) to isolate the claim: repairing latent
    // singles must prevent some lines from taking an uncorrectable
    // second hit, summed over seeds.
    std::uint64_t poisoned_scrubbed = 0, poisoned_bare = 0;
    std::uint64_t repairs = 0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        Outcome scrubbed = runSeed(seed, 60, /*scrub_every=*/500,
                                   /*double_per10k=*/0);
        Outcome bare = runSeed(seed, 60, /*scrub_every=*/0,
                               /*double_per10k=*/0);
        poisoned_scrubbed += scrubbed.storage.poisoned;
        poisoned_bare += bare.storage.poisoned;
        repairs += scrubbed.storage.scrubRepairs;
    }
    EXPECT_GT(repairs, 0u) << "the scrubber never ran";
    EXPECT_LT(poisoned_scrubbed, poisoned_bare)
        << "scrubbing latent singles must prevent some double hits";
}

TEST(StorageScrubSoak, ContainedRunReplaysIdentically)
{
    // Find one contained run in the sweep and pin its replay: the
    // trace must reproduce the same diagnosis string (same kind,
    // consumer, tick and address).
    for (std::uint64_t seed = 1; seed <= 64; ++seed) {
        SystemConfig cfg = baselineConfig();
        shrinkForTorture(cfg);
        cfg.check = true;
        cfg.storageFault.enabled = true;
        cfg.storageFault.seed = seed;
        cfg.storageFault.flipPer10kAccesses = 60;
        cfg.storageFault.doublePer10k = 2000;
        cfg.storageFault.scrubIntervalCycles = 2'000;
        RandomTesterConfig tcfg;
        tcfg.seed = seed;
        tcfg.numLocations = 12;
        tcfg.roundsPerLocation = 4;
        TesterSchedule sched = buildTesterSchedule(tcfg);
        HsaSystem sys(cfg);
        RandomTester tester(sys, tcfg, sched);
        if (tester.run() || !sys.containmentReport().contained())
            continue;

        FailureTrace t =
            captureFailureTrace("baseline", /*torture=*/true, cfg, tcfg,
                                sched, &sys, sys.failReason());
        ReplayResult res = replayTrace(t);
        ASSERT_TRUE(res.reproduced) << "seed " << seed;
        EXPECT_EQ(res.failReason, sys.failReason()) << "seed " << seed;
        return;
    }
    FAIL() << "no contained run found in 64 seeds — rate too low?";
}

} // namespace
} // namespace hsc
