/**
 * @file
 * Shared helpers for the PDES identity tests (tier-1 quick checks in
 * pdes_identity_test.cc, the tier-2 acceptance matrix in
 * pdes_matrix_test.cc).
 */

#ifndef HSC_TESTS_CORE_PDES_TEST_UTIL_HH
#define HSC_TESTS_CORE_PDES_TEST_UTIL_HH

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/hsa_system.hh"
#include "workloads/workload.hh"

namespace hsc
{
namespace pdes_test
{

struct PdesResult
{
    bool ok = false;
    Cycles cycles = 0;
    std::uint64_t image = 0; ///< coherent heap image hash
    std::string stats;       ///< full registry dump text
};

/** The classic identity-matrix cell: checker off, clean wires. */
inline SystemConfig
unchecked(SystemConfig cfg)
{
    cfg.check = false;
    return cfg;
}

/** The safety-net cell: sharded checker ON over lossy wires (1% drop,
 *  1% dup, 0.1% corrupt) with the recovery transport — the config the
 *  tentpole acceptance matrix runs. */
inline SystemConfig
checkedLossy(SystemConfig cfg)
{
    cfg.check = true;
    cfg.transport.enabled = true;
    cfg.fault.enabled = true;
    cfg.fault.dropPer10k = 100;
    cfg.fault.dupPer10k = 100;
    cfg.fault.corruptPer10k = 10;
    cfg.label += "+chk-lossy";
    return cfg;
}

inline PdesResult
runPdes(const std::string &wl, SystemConfig cfg, unsigned threads)
{
    cfg.pdes.enabled = true;
    cfg.pdes.threads = threads;
    WorkloadParams wp;
    wp.scale = 1;
    HsaSystem sys(cfg);
    auto w = makeWorkload(wl, wp);
    w->setup(sys);
    PdesResult r;
    r.ok = sys.run() && w->verify(sys);
    r.cycles = sys.cpuCycles();
    r.image = sys.imageHash(sys.heapBase(), sys.heapEnd());
    std::ostringstream os;
    sys.stats().dump(os);
    r.stats = os.str();
    return r;
}

inline std::uint64_t
legacyImage(const std::string &wl, SystemConfig cfg)
{
    WorkloadParams wp;
    wp.scale = 1;
    HsaSystem sys(cfg);
    auto w = makeWorkload(wl, wp);
    w->setup(sys);
    EXPECT_TRUE(sys.run() && w->verify(sys)) << wl << " (sequential)";
    return sys.imageHash(sys.heapBase(), sys.heapEnd());
}

/**
 * One (workload, config) cell of the identity matrix: every thread
 * count produces identical cycles, heap image and stat dump, and —
 * on clean wires — the image matches the classic sequential kernel
 * (cycle counts legitimately differ there by the doorbell lookahead).
 * With wire faults enabled only the thread-count invariance is
 * asserted: per-link wire fates are drawn in physical transmit order,
 * and the retransmit schedule depends on ack round-trip timing, which
 * differs between the kernels — the two kernels legitimately run
 * different (equally valid) fault schedules.
 */
inline void
expectThreadCountInvariant(const std::string &wl,
                           const SystemConfig &cfg,
                           const std::vector<unsigned> &threadCounts)
{
    ASSERT_FALSE(threadCounts.empty());
    PdesResult ref = runPdes(wl, cfg, threadCounts.front());
    ASSERT_TRUE(ref.ok) << wl << " [" << cfg.label << "] pdes.1";
    for (std::size_t i = 1; i < threadCounts.size(); ++i) {
        unsigned t = threadCounts[i];
        PdesResult r = runPdes(wl, cfg, t);
        std::string tag =
            wl + " [" + cfg.label + "] " + std::to_string(t) + "thr";
        ASSERT_TRUE(r.ok) << tag;
        EXPECT_EQ(r.cycles, ref.cycles) << tag;
        EXPECT_EQ(r.image, ref.image) << tag;
        EXPECT_EQ(r.stats, ref.stats) << tag << ": stat dump differs";
    }
    if (!cfg.fault.enabled) {
        EXPECT_EQ(ref.image, legacyImage(wl, cfg))
            << wl << " [" << cfg.label
            << "]: pdes heap image differs from the sequential kernel";
    }
}

} // namespace pdes_test
} // namespace hsc

#endif // HSC_TESTS_CORE_PDES_TEST_UTIL_HH
