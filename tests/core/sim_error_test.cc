/**
 * @file
 * Failure containment: a fatal() raised inside a scheduled event (or a
 * workload coroutine) must not tear the process down — run() catches
 * it, returns false, and surfaces the message through failReason().
 * panic() (a simulator self-check) is different: it propagates.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/hsa_system.hh"
#include "sim/logging.hh"
#include "sim/sim_error.hh"

namespace hsc
{
namespace
{

TEST(SimErrorHandling, FatalInScheduledEventIsCaughtByRun)
{
    HsaSystem sys(baselineConfig());
    sys.addCpuThread([](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(10'000);
    });
    sys.eventQueue().scheduleIn(100, [] {
        fatal("injected mid-run fault for testing");
    });

    EXPECT_FALSE(sys.run());
    EXPECT_FALSE(sys.failReason().empty());
    EXPECT_NE(sys.failReason().find("injected mid-run fault"),
              std::string::npos);
    EXPECT_EQ(sys.lastSimError(), sys.failReason());
}

TEST(SimErrorHandling, FatalInWorkloadCoroutineIsCaughtByRun)
{
    HsaSystem sys(baselineConfig());
    Addr a = sys.alloc(64);
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(a, 1);
        fatal("workload decided the sky is falling");
    });

    EXPECT_FALSE(sys.run());
    EXPECT_NE(sys.failReason().find("sky is falling"), std::string::npos);
}

TEST(SimErrorHandling, CaughtFatalReproducesDeterministically)
{
    // Failed runs keep their registered threads, so calling run()
    // again replays the same execution — and must reach the exact
    // same diagnosis.
    HsaSystem sys(baselineConfig());
    sys.addCpuThread([](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(100);
        fatal("deterministic death");
    });
    ASSERT_FALSE(sys.run());
    std::string first = sys.failReason();
    ASSERT_FALSE(first.empty());
    ASSERT_FALSE(sys.run());
    EXPECT_EQ(sys.failReason(), first);
}

TEST(SimErrorHandling, PanicPropagatesOutOfRun)
{
    // panic() marks simulator self-check failures (a broken invariant
    // in our own code, not the modelled system) — run() must NOT eat
    // it.
    HsaSystem sys(baselineConfig());
    sys.addCpuThread([](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(100);
        panic("simulator bug");
    });
    EXPECT_THROW(sys.run(), std::logic_error);
}

} // namespace
} // namespace hsc
