/**
 * @file
 * Tier-2 PDES acceptance matrix: all ten CHAI workloads x
 * {baseline, sharersTracking} x {unchecked, checked-lossy} x
 * {1, 2, 4, 8} worker threads must give identical cycles, heap images
 * and stat dumps, and the heap image must match the classic
 * sequential kernel.  The checked-lossy cells run the tentpole
 * configuration: sharded coherence checker ON over wires dropping 1%,
 * duplicating 1% and corrupting 0.1% of frames behind the recovery
 * transport.  This is the matrix the CI pdes job runs on every
 * change; big64 gets its own checked-lossy cell below.
 */

#include "pdes_test_util.hh"

namespace hsc
{
namespace
{

class PdesMatrix
    : public ::testing::TestWithParam<
          std::tuple<std::string, bool, bool>>
{
};

TEST_P(PdesMatrix, IdentityAcrossThreadCounts)
{
    const auto &[wl, sharers, lossy] = GetParam();
    SystemConfig cfg =
        sharers ? sharerTrackingConfig() : baselineConfig();
    cfg = lossy ? pdes_test::checkedLossy(cfg)
                : pdes_test::unchecked(cfg);
    pdes_test::expectThreadCountInvariant(wl, cfg, {1, 2, 4, 8});
}

std::vector<std::tuple<std::string, bool, bool>>
matrixParams()
{
    std::vector<std::tuple<std::string, bool, bool>> p;
    for (const std::string &wl : workloadIds())
        for (bool sharers : {false, true})
            for (bool lossy : {false, true})
                p.emplace_back(wl, sharers, lossy);
    return p;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PdesMatrix, ::testing::ValuesIn(matrixParams()),
    [](const ::testing::TestParamInfo<
        std::tuple<std::string, bool, bool>> &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_sharers" : "_baseline") +
               (std::get<2>(info.param) ? "_chklossy" : "");
    });

TEST(PdesMatrixBig, Big64CheckedLossy)
{
    pdes_test::expectThreadCountInvariant(
        "tq", pdes_test::checkedLossy(big64Config()), {1, 2, 4, 8});
}

} // namespace
} // namespace hsc
