/**
 * @file
 * Tier-2 PDES acceptance matrix: all ten CHAI workloads x
 * {baseline, sharersTracking} x {1, 2, 4, 8} worker threads must give
 * identical cycles, heap images and stat dumps, and the heap image
 * must match the classic sequential kernel.  This is the matrix the
 * CI pdes job runs on every change.
 */

#include "pdes_test_util.hh"

namespace hsc
{
namespace
{

class PdesMatrix
    : public ::testing::TestWithParam<std::tuple<std::string, bool>>
{
};

TEST_P(PdesMatrix, IdentityAcrossThreadCounts)
{
    const auto &[wl, sharers] = GetParam();
    SystemConfig cfg =
        sharers ? sharerTrackingConfig() : baselineConfig();
    pdes_test::expectThreadCountInvariant(wl, cfg, {1, 2, 4, 8});
}

std::vector<std::tuple<std::string, bool>>
matrixParams()
{
    std::vector<std::tuple<std::string, bool>> p;
    for (const std::string &wl : workloadIds())
        for (bool sharers : {false, true})
            p.emplace_back(wl, sharers);
    return p;
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PdesMatrix, ::testing::ValuesIn(matrixParams()),
    [](const ::testing::TestParamInfo<std::tuple<std::string, bool>>
           &info) {
        return std::get<0>(info.param) +
               (std::get<1>(info.param) ? "_sharers" : "_baseline");
    });

} // namespace
} // namespace hsc
