/**
 * @file
 * Checkpoint × reliable-transport soak (tier-2): kill-resume with the
 * link transport ON under a lossy wire (1% drop, 1% dup), runtime
 * coherence checker ON.  Each (workload, checkpoint point) pair runs
 * an uninterrupted reference that snapshots in passing, then a
 * restored run from that snapshot; the pair must be bit-identical
 * (cycles + full stat dump), proving the transport's sequence/retry
 * state and the fault injector's wire-fate streams both survive the
 * snapshot boundary.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "bench/bench_util.hh"
#include "sim/hash.hh"
#include "workloads/workload.hh"

namespace hsc
{
namespace
{

using bench::figureParams;
using bench::scaleHierarchy;

std::uint64_t
statHash(StatRegistry &reg)
{
    std::uint64_t h = FnvOffsetBasis;
    for (const auto &[name, value] : reg.snapshot()) {
        h = fnvBytes(name.data(), name.size(), h);
        h = fnvBytes(&value, sizeof(value), h);
    }
    return h;
}

struct RunResult
{
    bool ok = false;
    Cycles cycles = 0;
    std::uint64_t stats = 0;
    std::uint64_t checkpoints = 0;
    std::uint64_t retransmits = 0;
    std::string failReason;
};

RunResult
runOne(const std::string &wl, const SystemConfig &cfg)
{
    RunResult r;
    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    r.ok = sys.run() && workload->verify(sys);
    r.cycles = sys.cpuCycles();
    r.stats = statHash(sys.stats());
    r.checkpoints = sys.checkpointsTaken();
    r.retransmits = sys.transportSummary().retransmits;
    r.failReason = sys.failReason();
    return r;
}

SystemConfig
lossyTransportConfig()
{
    SystemConfig cfg = baselineConfig();
    scaleHierarchy(cfg);
    cfg.check = true;
    cfg.transport.enabled = true;
    cfg.fault.enabled = true;
    cfg.fault.seed = 3;
    cfg.fault.dropPer10k = 100;
    cfg.fault.dupPer10k = 100;
    return cfg;
}

TEST(CkptTransportSoak, KillResumeBitIdentityUnderLossyWire)
{
    const std::string snap =
        ::testing::TempDir() + "ckpt_transport.snapshot";
    unsigned resumed = 0, skipped = 0;
    std::uint64_t retransmits = 0;
    for (const std::string &wl : workloadIds()) {
        for (Cycles at : {Cycles(2'000), Cycles(12'000)}) {
            std::remove(snap.c_str());
            SystemConfig ref_cfg = lossyTransportConfig();
            ref_cfg.ckpt.atCycles = {at};
            ref_cfg.ckpt.outPath = snap;
            RunResult ref = runOne(wl, ref_cfg);
            ASSERT_TRUE(ref.ok) << wl << "@" << at << ": "
                                << ref.failReason;
            retransmits += ref.retransmits;
            if (ref.checkpoints == 0) {
                // Finished before the checkpoint point; only legal
                // for the later one.
                ASSERT_GT(at, Cycles(2'000)) << wl;
                ++skipped;
                continue;
            }
            SystemConfig res_cfg = lossyTransportConfig();
            res_cfg.ckpt.restorePath = snap;
            RunResult res = runOne(wl, res_cfg);
            EXPECT_TRUE(res.ok) << wl << "@" << at << ": "
                                << res.failReason;
            EXPECT_EQ(res.cycles, ref.cycles) << wl << "@" << at;
            EXPECT_EQ(res.stats, ref.stats) << wl << "@" << at;
            ++resumed;
        }
    }
    std::remove(snap.c_str());
    EXPECT_GE(resumed, workloadIds().size())
        << "every workload must resume at the early point";
    EXPECT_GT(retransmits, 0u)
        << "the lossy wire never forced a retransmit — soak is vacuous";
    RecordProperty("resumed", int(resumed));
    RecordProperty("skipped", int(skipped));
}

} // namespace
} // namespace hsc
