/**
 * @file
 * System-level storage-fault tests: a deterministic one-shot flip
 * ends in a structured ContainmentReport (with a last-gasp
 * checkpoint when checkpointing is armed), the captured FailureTrace
 * replays the identical containment bit-exactly, ECC-off corruption
 * is caught by the coherence checker, and enabling the model at zero
 * rate perturbs nothing.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "core/trace_replay.hh"
#include "sim/clocked.hh"
#include "sim/sim_error.hh"

namespace hsc
{
namespace
{

SystemConfig
tortureConfig()
{
    SystemConfig cfg = baselineConfig();
    shrinkForTorture(cfg);
    cfg.check = true;
    return cfg;
}

RandomTesterConfig
testerConfig(std::uint64_t seed = 5)
{
    RandomTesterConfig tcfg;
    tcfg.seed = seed;
    tcfg.numLocations = 12;
    tcfg.roundsPerLocation = 4;
    return tcfg;
}

struct TesterRun
{
    bool ok = false;
    std::string failReason;
    ContainmentReport containment;
    bool checkerViolated = false;
    Cycles cycles = 0;
    std::uint64_t imageHash = 0;
    Tick lastGaspTick = 0;
};

TesterRun
runTester(const SystemConfig &cfg, const RandomTesterConfig &tcfg,
          const TesterSchedule &sched)
{
    HsaSystem sys(cfg);
    RandomTester tester(sys, tcfg, sched);
    TesterRun r;
    r.ok = tester.run();
    r.failReason = sys.failReason();
    r.containment = sys.containmentReport();
    r.checkerViolated = sys.checker() && sys.checker()->violated();
    r.cycles = sys.cpuCycles();
    r.imageHash = tester.imageHash();
    r.lastGaspTick = sys.lastCheckpointTick();
    return r;
}

TEST(StorageContainment, OneShotFlipEndsInContainmentReport)
{
    SystemConfig cfg = tortureConfig();
    cfg.storageFault.enabled = true;
    cfg.storageFault.flipAtTick = 20'000;
    RandomTesterConfig tcfg = testerConfig();
    TesterSchedule sched = buildTesterSchedule(tcfg);

    TesterRun r = runTester(cfg, tcfg, sched);
    ASSERT_FALSE(r.ok);
    ASSERT_TRUE(r.containment.contained()) << r.failReason;
    EXPECT_EQ(r.containment.kind,
              ContainmentReport::Kind::PoisonConsumed);
    EXPECT_GE(r.containment.atTick, Tick(20'000));
    EXPECT_FALSE(r.containment.consumer.empty());
    EXPECT_NE(r.failReason.find("storage fault contained"),
              std::string::npos)
        << r.failReason;
    EXPECT_FALSE(r.checkerViolated)
        << "ECC containment must fire before the checker sees poison";
}

TEST(StorageContainment, FailureTraceReplaysBitExactly)
{
    SystemConfig cfg = tortureConfig();
    cfg.storageFault.enabled = true;
    cfg.storageFault.flipAtTick = 20'000;
    RandomTesterConfig tcfg = testerConfig();
    TesterSchedule sched = buildTesterSchedule(tcfg);

    TesterRun r = runTester(cfg, tcfg, sched);
    ASSERT_FALSE(r.ok);
    ASSERT_TRUE(r.containment.contained());

    FailureTrace t = captureFailureTrace("baseline", /*torture=*/true,
                                         cfg, tcfg, sched, nullptr,
                                         r.failReason);
    // Through disk, like a user would hand it to hsc_replay.
    std::string path = ::testing::TempDir() + "storage_trace.json";
    writeFailureTrace(t, path);
    ReplayResult res = replayTrace(readFailureTrace(path));
    std::remove(path.c_str());

    ASSERT_TRUE(res.reproduced);
    // Bit-exact: the replay diagnosis names the same consumer, tick
    // and address, not merely "a" containment.
    EXPECT_EQ(res.failReason, r.failReason);
}

TEST(StorageContainment, ContainmentWritesLastGaspCheckpoint)
{
    const std::string snap =
        ::testing::TempDir() + "storage_gasp.snapshot";
    std::remove(snap.c_str());
    std::remove((snap + ".lastgasp").c_str());

    RandomTesterConfig tcfg = testerConfig();
    TesterSchedule sched = buildTesterSchedule(tcfg);

    // Calibrate against the fault-free run so the checkpoint (25% in)
    // provably lands before the one-shot flip (60% in).
    TesterRun probe = runTester(tortureConfig(), tcfg, sched);
    ASSERT_TRUE(probe.ok) << probe.failReason;
    Tick period = ClockDomain::fromMHz(tortureConfig().cpuMHz)
                      .periodTicks();
    SystemConfig cfg = tortureConfig();
    cfg.storageFault.enabled = true;
    cfg.storageFault.flipAtTick = Tick(probe.cycles) * period * 6 / 10;
    cfg.ckpt.atCycles = {Cycles(probe.cycles / 4)};
    cfg.ckpt.outPath = snap;

    TesterRun r = runTester(cfg, tcfg, sched);
    ASSERT_FALSE(r.ok);
    ASSERT_TRUE(r.containment.contained()) << r.failReason;
    EXPECT_GT(r.containment.lastCheckpointTick, Tick(0));
    EXPECT_EQ(r.containment.lastCheckpointTick, r.lastGaspTick);
    std::FILE *f = std::fopen((snap + ".lastgasp").c_str(), "rb");
    EXPECT_NE(f, nullptr) << "containment must re-emit the checkpoint";
    if (f)
        std::fclose(f);
    std::remove(snap.c_str());
    std::remove((snap + ".lastgasp").c_str());
}

TEST(StorageContainment, EccOffCorruptionIsCaughtByChecker)
{
    SystemConfig cfg = tortureConfig();
    cfg.storageFault.enabled = true;
    cfg.storageFault.ecc = false;
    cfg.storageFault.flipPer10kAccesses = 100;
    RandomTesterConfig tcfg = testerConfig();
    TesterSchedule sched = buildTesterSchedule(tcfg);

    TesterRun r = runTester(cfg, tcfg, sched);
    ASSERT_FALSE(r.ok) << "silent flips must not pass verification";
    EXPECT_FALSE(r.containment.contained())
        << "no poison path exists with ECC off";
    EXPECT_TRUE(r.checkerViolated)
        << "the shadow-data compare is the only line of defence: "
        << r.failReason;
}

TEST(StorageContainment, EccOffWithoutCheckerIsRejected)
{
    SystemConfig cfg = tortureConfig();
    cfg.check = false;
    cfg.storageFault.enabled = true;
    cfg.storageFault.ecc = false;
    cfg.storageFault.flipPer10kAccesses = 100;
    EXPECT_THROW(HsaSystem sys(cfg), SimError);
}

TEST(StorageContainment, EnabledAtZeroRateChangesNothing)
{
    RandomTesterConfig tcfg = testerConfig(11);
    TesterSchedule sched = buildTesterSchedule(tcfg);

    TesterRun off = runTester(tortureConfig(), tcfg, sched);
    SystemConfig on_cfg = tortureConfig();
    on_cfg.storageFault.enabled = true; // model armed, no fault source
    TesterRun on = runTester(on_cfg, tcfg, sched);

    ASSERT_TRUE(off.ok) << off.failReason;
    ASSERT_TRUE(on.ok) << on.failReason;
    EXPECT_EQ(on.cycles, off.cycles);
    EXPECT_EQ(on.imageHash, off.imageHash);
}

TEST(StorageContainment, RateBoundsAreValidated)
{
    SystemConfig cfg = tortureConfig();
    cfg.storageFault.enabled = true;
    cfg.storageFault.flipPer10kAccesses = 10'001;
    EXPECT_THROW(HsaSystem sys(cfg), SimError);
}

} // namespace
} // namespace hsc
