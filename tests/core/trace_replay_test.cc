/**
 * @file
 * Failure-trace round-trip and replay tests: every field of a
 * FailureTrace survives JSON serialisation bit-exactly, traces can be
 * written/read through disk, the SystemConfig is rebuilt faithfully,
 * and a hand-written two-op schedule reproduces a seeded bug under
 * replayTrace().
 */

#include <gtest/gtest.h>

#include "core/trace_replay.hh"
#include "sim/sim_error.hh"

namespace hsc
{
namespace
{

FailureTrace
sampleTrace()
{
    FailureTrace t;
    t.preset = "sharerTracking";
    t.torture = true;
    t.sysSeed = 0xDEAD'BEEF'CAFE'F00Dull;  // needs exact 64-bit JSON
    t.numDirBanks = 2;
    t.gpuWriteBack = true;
    t.check = false;
    t.watchdogCycles = 123'456;
    t.fault.enabled = true;
    t.fault.seed = 99;
    t.fault.maxJitter = 17;
    t.fault.spikePercent = 5;
    t.fault.spikeCycles = 300;
    t.fault.deadLinks = {"linkA", "linkB"};
    t.fault.dropPer10k = 100;
    t.fault.dupPer10k = 50;
    t.fault.corruptPer10k = 10;
    t.transport.enabled = true;
    t.transport.timeoutCycles = 250;
    t.transport.backoffShiftCap = 4;
    t.transport.retryBudget = 9;
    t.transport.ackDelayCycles = 8;
    t.transport.maxReorder = 1024;
    t.storage.enabled = true;
    t.storage.seed = 0xFEED'FACE'0000'0001ull;
    t.storage.flipPer10kAccesses = 40;
    t.storage.doublePer10k = 2500;
    t.storage.flipAtTick = 777'000;
    t.storage.ecc = false;
    t.storage.scrubIntervalCycles = 4096;
    t.bug.kind = SeededBug::Kind::IgnoreProbeData;
    t.bug.addr = 0x100040;
    t.tester.numLocations = 3;
    t.tester.roundsPerLocation = 2;
    t.tester.numCpuThreads = 2;
    t.tester.numGpuWorkgroups = 1;
    t.tester.allowDeviceScope = true;
    t.tester.seed = 424242;

    TesterOp w;
    w.loc = 1;
    w.agent = TesterAgent::Gpu;
    w.isWrite = true;
    w.value = 0xFFFF'FFFF'FFFF'FFF1ull;
    w.deviceScope = true;
    t.schedule.ops.push_back(w);
    TesterOp r;
    r.loc = 1;
    r.agent = TesterAgent::Dma;
    t.schedule.ops.push_back(r);

    t.failReason = "stale-data at byte 8";
    CheckerEvent ev;
    ev.tick = 987'654'321;
    ev.kind = CheckerCtrl::Tcc;
    ev.ctrl = "system.tcc";
    ev.addr = 0x100040;
    ev.state = "Fill";
    ev.event = "SysResp";
    t.events.push_back(ev);
    return t;
}

TEST(TraceReplay, JsonRoundTripPreservesEveryField)
{
    FailureTrace t = sampleTrace();
    FailureTrace back = failureTraceFromJson(failureTraceToJson(t));

    EXPECT_EQ(back.preset, t.preset);
    EXPECT_EQ(back.torture, t.torture);
    EXPECT_EQ(back.sysSeed, t.sysSeed);
    EXPECT_EQ(back.numDirBanks, t.numDirBanks);
    EXPECT_EQ(back.gpuWriteBack, t.gpuWriteBack);
    EXPECT_EQ(back.check, t.check);
    EXPECT_EQ(back.watchdogCycles, t.watchdogCycles);
    EXPECT_EQ(back.fault.enabled, t.fault.enabled);
    EXPECT_EQ(back.fault.seed, t.fault.seed);
    EXPECT_EQ(back.fault.maxJitter, t.fault.maxJitter);
    EXPECT_EQ(back.fault.spikePercent, t.fault.spikePercent);
    EXPECT_EQ(back.fault.spikeCycles, t.fault.spikeCycles);
    EXPECT_EQ(back.fault.deadLinks, t.fault.deadLinks);
    EXPECT_EQ(back.fault.dropPer10k, t.fault.dropPer10k);
    EXPECT_EQ(back.fault.dupPer10k, t.fault.dupPer10k);
    EXPECT_EQ(back.fault.corruptPer10k, t.fault.corruptPer10k);
    EXPECT_EQ(back.transport.enabled, t.transport.enabled);
    EXPECT_EQ(back.transport.timeoutCycles, t.transport.timeoutCycles);
    EXPECT_EQ(back.transport.backoffShiftCap,
              t.transport.backoffShiftCap);
    EXPECT_EQ(back.transport.retryBudget, t.transport.retryBudget);
    EXPECT_EQ(back.transport.ackDelayCycles,
              t.transport.ackDelayCycles);
    EXPECT_EQ(back.transport.maxReorder, t.transport.maxReorder);
    EXPECT_EQ(back.storage.enabled, t.storage.enabled);
    EXPECT_EQ(back.storage.seed, t.storage.seed);
    EXPECT_EQ(back.storage.flipPer10kAccesses,
              t.storage.flipPer10kAccesses);
    EXPECT_EQ(back.storage.doublePer10k, t.storage.doublePer10k);
    EXPECT_EQ(back.storage.flipAtTick, t.storage.flipAtTick);
    EXPECT_EQ(back.storage.ecc, t.storage.ecc);
    EXPECT_EQ(back.storage.scrubIntervalCycles,
              t.storage.scrubIntervalCycles);
    EXPECT_EQ(back.bug.kind, t.bug.kind);
    EXPECT_EQ(back.bug.addr, t.bug.addr);
    EXPECT_EQ(back.bug.agent, t.bug.agent);
    EXPECT_EQ(back.tester.numLocations, t.tester.numLocations);
    EXPECT_EQ(back.tester.allowDeviceScope, t.tester.allowDeviceScope);
    EXPECT_EQ(back.tester.seed, t.tester.seed);
    ASSERT_EQ(back.schedule.size(), 2u);
    EXPECT_EQ(back.schedule.ops[0].agent, TesterAgent::Gpu);
    EXPECT_TRUE(back.schedule.ops[0].isWrite);
    EXPECT_EQ(back.schedule.ops[0].value, 0xFFFF'FFFF'FFFF'FFF1ull);
    EXPECT_TRUE(back.schedule.ops[0].deviceScope);
    EXPECT_EQ(back.schedule.ops[1].agent, TesterAgent::Dma);
    EXPECT_FALSE(back.schedule.ops[1].isWrite);
    EXPECT_EQ(back.failReason, t.failReason);
    ASSERT_EQ(back.events.size(), 1u);
    EXPECT_EQ(back.events[0].tick, t.events[0].tick);
    EXPECT_EQ(back.events[0].kind, CheckerCtrl::Tcc);
    EXPECT_EQ(back.events[0].ctrl, "system.tcc");
    EXPECT_EQ(back.events[0].state, "Fill");

    // Second serialisation is textually identical: dumps are stable.
    EXPECT_EQ(failureTraceToJson(t).dump(2),
              failureTraceToJson(back).dump(2));
}

TEST(TraceReplay, WriteAndReadThroughDisk)
{
    std::string path = ::testing::TempDir() + "trace_roundtrip.json";
    FailureTrace t = sampleTrace();
    writeFailureTrace(t, path);
    FailureTrace back = readFailureTrace(path);
    EXPECT_EQ(back.sysSeed, t.sysSeed);
    EXPECT_EQ(back.schedule.size(), t.schedule.size());
    EXPECT_EQ(failureTraceToJson(back).dump(), failureTraceToJson(t).dump());
}

TEST(TraceReplay, RejectsForeignJson)
{
    EXPECT_THROW(failureTraceFromJson(parseJson("{\"x\": 1}")), SimError);
    EXPECT_THROW(readFailureTrace("/nonexistent/trace.json"), SimError);
    EXPECT_THROW(configPresetByName("bogus"), SimError);
}

TEST(TraceReplay, TraceSystemConfigRebuildsKnobs)
{
    FailureTrace t = sampleTrace();
    SystemConfig cfg = traceSystemConfig(t);
    EXPECT_EQ(cfg.dir.tracking, DirTracking::Sharers);
    EXPECT_EQ(cfg.numDirBanks, 2u);
    EXPECT_TRUE(cfg.gpuWriteBack);
    EXPECT_FALSE(cfg.check);
    EXPECT_EQ(cfg.watchdogCycles, 123'456u);
    EXPECT_TRUE(cfg.fault.enabled);
    EXPECT_EQ(cfg.fault.deadLinks.size(), 2u);
    EXPECT_EQ(cfg.fault.dropPer10k, 100u);
    EXPECT_TRUE(cfg.transport.enabled);
    EXPECT_EQ(cfg.transport.retryBudget, 9u);
    EXPECT_EQ(cfg.bug.kind, SeededBug::Kind::IgnoreProbeData);
}

TEST(TraceReplay, CapturedConfigSurvivesReconstruction)
{
    SystemConfig cfg = limitedPointerConfig(2);
    cfg.seed = 31337;
    cfg.numDirBanks = 4;
    RandomTesterConfig tcfg;
    FailureTrace t = captureFailureTrace("limitedPointer", false, cfg,
                                         tcfg, TesterSchedule{}, nullptr,
                                         "why not");
    EXPECT_EQ(t.limitedPointers, 2u);
    SystemConfig re = traceSystemConfig(t);
    EXPECT_EQ(re.seed, 31337u);
    EXPECT_EQ(re.numDirBanks, 4u);
    EXPECT_EQ(re.dir.tracking, DirTracking::Sharers);
    EXPECT_EQ(re.dir.maxSharerPointers, 2u);
}

TEST(TraceReplay, HandWrittenScheduleReproducesSeededBug)
{
    // Two ops are enough to trip DropWrite: a GPU system-scope write
    // that the directory's masked write drops, then a CPU read that
    // expects the lost value.
    FailureTrace t;
    t.preset = "baseline";
    t.torture = true;
    t.check = false;
    t.bug.kind = SeededBug::Kind::DropWrite;
    t.bug.addr = 0x100000;
    t.tester.numLocations = 1;
    t.tester.roundsPerLocation = 1;
    t.tester.numCpuThreads = 1;
    t.tester.numGpuWorkgroups = 1;

    TesterOp w;
    w.loc = 0;
    w.agent = TesterAgent::Gpu;
    w.isWrite = true;
    w.value = 0xABCD'EF01'2345'6789ull;
    t.schedule.ops.push_back(w);
    TesterOp r;
    r.loc = 0;
    r.agent = TesterAgent::Cpu;
    t.schedule.ops.push_back(r);

    ReplayResult res = replayTrace(t);
    EXPECT_TRUE(res.reproduced);
    ASSERT_FALSE(res.failures.empty());
    EXPECT_FALSE(res.failReason.empty());

    // Same schedule, bug unplanted: passes.
    t.bug = SeededBug{};
    ReplayResult clean = replayTrace(t);
    EXPECT_FALSE(clean.reproduced);
    EXPECT_TRUE(clean.failReason.empty());

    // With the runtime checker on and no bug it also stays silent and
    // reports work done.
    t.check = true;
    ReplayResult checked = replayTrace(t);
    EXPECT_FALSE(checked.reproduced);
    EXPECT_GT(checked.transitionsChecked, 0u);
}

} // namespace
} // namespace hsc
