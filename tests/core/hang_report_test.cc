/**
 * @file
 * Watchdog / HangReport tests: a deliberately-induced protocol hang
 * must terminate cleanly (no abort) with a structured report naming
 * the stalled transaction's address, controller and age, and a
 * directory set-conflict livelock must surface as a diagnostic.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/hsa_system.hh"
#include "core/run_report.hh"
#include "protocol/dir/directory.hh"
#include "sim/sim_error.hh"
#include "tests/protocol/dir_harness.hh"

namespace hsc
{
namespace
{

SystemConfig
tinyConfig()
{
    SystemConfig cfg = baselineConfig();
    cfg.topo = {1, 1};
    cfg.numCus = 1;
    cfg.wavefrontsPerCu = 1;
    cfg.injectIfetches = false;
    cfg.watchdogCycles = 20'000;
    return cfg;
}

TEST(HangReport, DeadResponseLinkTripsWatchdogWithDiagnosis)
{
    SystemConfig cfg = tinyConfig();
    // Drop every directory->client response: the first miss wedges.
    cfg.fault.deadLinks = {".fromDir."};

    HsaSystem sys(cfg);
    const Addr target = sys.alloc(64);
    sys.addCpuThread([target](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(target, 0xDEAD, 8);
    });

    EXPECT_FALSE(sys.run(1'000'000)); // clean false return, no abort
    const HangReport &hr = sys.hangReport();
    EXPECT_TRUE(hr.hung());
    EXPECT_EQ(hr.kind, HangReport::Kind::Watchdog);
    EXPECT_EQ(hr.liveTasks, 1u);
    EXPECT_GT(hr.atTick, hr.lastProgressTick);

    // The report names the stalled store: its address, the controller
    // holding it, and a nonzero age.
    ASSERT_FALSE(hr.stalledTxns.empty());
    bool found_l2_miss = false;
    for (const TxnInfo &t : hr.stalledTxns) {
        if (t.addr == blockAlign(target) &&
            t.controller.find("corepair") != std::string::npos) {
            found_l2_miss = true;
            EXPECT_GT(t.age, 0u);
            EXPECT_FALSE(t.waitingFor.empty());
        }
    }
    EXPECT_TRUE(found_l2_miss);

    // The directory-side transaction is stuck waiting for the unblock
    // that can never arrive.
    bool found_dir_txn = false;
    for (const TxnInfo &t : hr.stalledTxns)
        found_dir_txn |= t.controller.find(".dir") != std::string::npos;
    EXPECT_TRUE(found_dir_txn);

    // The dead link shows up with its undelivered messages.
    ASSERT_FALSE(hr.stalledLinks.empty());
    bool found_link = false;
    for (const LinkInfo &l : hr.stalledLinks)
        found_link |= l.name.find("fromDir") != std::string::npos &&
                      l.depth > 0;
    EXPECT_TRUE(found_link);

    // Controller summaries cover the whole hierarchy.
    EXPECT_GE(hr.controllerSummaries.size(), 5u);

    // brief() and print() carry the headline diagnosis.
    EXPECT_NE(hr.brief().find("watchdog"), std::string::npos);
    std::ostringstream os;
    hr.print(os);
    std::ostringstream addr_os;
    addr_os << std::hex << blockAlign(target);
    EXPECT_NE(os.str().find(addr_os.str()), std::string::npos)
        << os.str();
    EXPECT_NE(os.str().find("corepair"), std::string::npos);
}

TEST(HangReport, FailureReasonReachesRunMetrics)
{
    SystemConfig cfg = tinyConfig();
    cfg.fault.deadLinks = {".fromDir."};
    HsaSystem sys(cfg);
    const Addr target = sys.alloc(64);
    sys.addCpuThread([target](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(target, 1, 8);
    });
    bool ok = sys.run(1'000'000);
    EXPECT_FALSE(ok);
    RunMetrics m = collectMetrics(sys, "hangtest", ok);
    EXPECT_FALSE(m.failReason.empty());
    EXPECT_NE(m.failReason.find("watchdog"), std::string::npos);
}

TEST(HangReport, CleanRunReportsNoHang)
{
    SystemConfig cfg = tinyConfig();
    HsaSystem sys(cfg);
    const Addr target = sys.alloc(64);
    sys.addCpuThread([target](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(target, 7, 8);
        std::uint64_t v = co_await cpu.load(target, 8);
        EXPECT_EQ(v, 7u);
    });
    EXPECT_TRUE(sys.run());
    EXPECT_FALSE(sys.hangReport().hung());
    EXPECT_EQ(sys.hangReport().kind, HangReport::Kind::None);
}

TEST(HangReport, DirectorySetConflictLivelockIsBoundedAndDiagnosed)
{
    // One directory set (2 entries, 2-way), owner tracking, and
    // clients that never unblock: two transactions pin both ways, and
    // a third request can never find a victim.  The retry loop must
    // park it after the cap instead of spinning forever.
    DirConfig cfg;
    cfg.tracking = DirTracking::Owner;
    cfg.dirEntries = 2;
    cfg.dirAssoc = 2;
    cfg.maxSetConflictRetries = 3;
    DirBench bench(cfg);
    bench.client(0).autoUnblock = false;
    bench.client(1).autoUnblock = false;

    Msg rd;
    rd.type = MsgType::RdBlk;
    rd.addr = 0x0;
    bench.client(0).send(rd);
    rd.addr = 0x40;
    bench.client(1).send(rd);
    bench.settle();

    // Both ways now transact forever (no unblock will ever come).
    rd.addr = 0x80;
    bench.client(0).send(rd);
    bench.settle(); // terminates: the retry loop is bounded

    EXPECT_GE(bench.stats.counter("dir.setConflictRetries"), 3u);

    std::vector<std::string> diags;
    bench.dir->diagnostics(diags);
    ASSERT_EQ(diags.size(), 1u);
    EXPECT_NE(diags[0].find("livelock"), std::string::npos) << diags[0];
    EXPECT_NE(diags[0].find("0x80"), std::string::npos) << diags[0];
    EXPECT_NE(diags[0].find("RdBlk"), std::string::npos) << diags[0];

    EXPECT_NE(bench.dir->stateSummary().find("1 livelocked"),
              std::string::npos);
}

TEST(HangReport, DirectoryIntrospectionNamesWaitingTransactions)
{
    DirConfig cfg; // stateless baseline
    DirBench bench(cfg);
    bench.client(0).autoUnblock = false; // wedge after SysResp

    Msg rd;
    rd.type = MsgType::RdBlkM;
    rd.addr = 0x1000;
    bench.client(0).send(rd);
    bench.settle();

    std::vector<TxnInfo> txns;
    bench.dir->inFlightTransactions(bench.eq.curTick(), txns);
    ASSERT_EQ(txns.size(), 1u);
    EXPECT_EQ(txns[0].addr, 0x1000u);
    EXPECT_EQ(txns[0].waitingFor, "requester unblock");
    EXPECT_NE(txns[0].state.find("RdBlkM"), std::string::npos);
    EXPECT_GT(txns[0].age, 0u);

    // The formatted line carries everything a human needs.
    std::string line = txns[0].toString();
    EXPECT_NE(line.find("0x1000"), std::string::npos) << line;
    EXPECT_NE(line.find("dir"), std::string::npos) << line;
}

TEST(HangReport, InvalidConfigThrowsSimErrorNotAbort)
{
    SystemConfig cfg = tinyConfig();
    cfg.cpuMHz = 0;
    EXPECT_THROW({ HsaSystem sys(cfg); }, SimError);

    SystemConfig cfg2 = tinyConfig();
    cfg2.watchdogCycles = 0;
    EXPECT_THROW({ HsaSystem sys2(cfg2); }, SimError);

    SystemConfig cfg3 = tinyConfig();
    cfg3.fault.enabled = true;
    cfg3.fault.spikePercent = 250;
    EXPECT_THROW({ HsaSystem sys3(cfg3); }, SimError);
}

} // namespace
} // namespace hsc
