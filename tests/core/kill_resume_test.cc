/**
 * @file
 * Kill-resume correctness: a run checkpointed at tick T, killed, and
 * restored from the checkpoint must be bit-identical — final memory
 * image, full stat dump, simulated cycle count — to the same
 * (checkpoint-scheduled) run left uninterrupted.  Covers the workload
 * matrix subset (the full matrix is the tier-2 soak), both crash
 * fates with last-gasp emission, the zero-footprint guarantee when
 * checkpointing is off, and a real out-of-process SIGKILL delivered
 * to a forked child mid-run.
 */

#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <fstream>
#include <string>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench/bench_util.hh"
#include "core/random_tester.hh"
#include "sim/clocked.hh"
#include "sim/hash.hh"
#include "sim/json.hh"
#include "sim/snapshot.hh"
#include "workloads/workload.hh"

namespace hsc
{
namespace
{

using bench::figureParams;
using bench::scaleHierarchy;

/** FNV-1a over the complete stat dump, names and values — the same
 *  reduction bench/kernel_identity uses for its golden assert. */
std::uint64_t
statHash(StatRegistry &reg)
{
    std::uint64_t h = FnvOffsetBasis;
    for (const auto &[name, value] : reg.snapshot()) {
        h = fnvBytes(name.data(), name.size(), h);
        h = fnvBytes(&value, sizeof(value), h);
    }
    return h;
}

std::string
tmpPath(const std::string &leaf)
{
    return ::testing::TempDir() + leaf;
}

struct RunResult
{
    bool ok = false;
    Cycles cycles = 0;
    std::uint64_t stats = 0;
    std::uint64_t checkpoints = 0;
    Tick lastCkptTick = 0;
    std::string failReason;
};

/** Run one workload to completion (or failure) under @p cfg. */
RunResult
runOne(const std::string &wl, const SystemConfig &cfg)
{
    RunResult r;
    HsaSystem sys(cfg);
    auto workload = makeWorkload(wl, figureParams());
    workload->setup(sys);
    r.ok = sys.run() && workload->verify(sys);
    r.cycles = sys.cpuCycles();
    r.stats = statHash(sys.stats());
    r.checkpoints = sys.checkpointsTaken();
    r.lastCkptTick = sys.lastCheckpointTick();
    r.failReason = sys.failReason();
    return r;
}

/** The kernel-identity matrix scaling, but with the runtime
 *  coherence checker ON — kill-resume identity must hold under the
 *  strictest checking. */
SystemConfig
checkedConfig(SystemConfig cfg)
{
    scaleHierarchy(cfg);
    cfg.check = true;
    return cfg;
}

TEST(KillResume, DisabledCheckpointingHasZeroFootprint)
{
    SystemConfig cfg = checkedConfig(baselineConfig());
    ASSERT_FALSE(cfg.ckpt.enabled());
    HsaSystem sys(cfg);
    // No coordinator, no per-op pointer chasing, no stat rows: the
    // clean path must not know checkpointing exists.
    EXPECT_EQ(sys.snapshot(), nullptr);
    EXPECT_FALSE(sys.stats().hasCounter("system.ckpt.checkpoints"));
    EXPECT_FALSE(sys.stats().hasCounter("system.ckpt.loggedOps"));
    for (const auto &[name, value] : sys.stats().snapshot())
        EXPECT_EQ(name.find(".ckpt."), std::string::npos) << name;
}

TEST(KillResume, EnabledCheckpointingRegistersCounters)
{
    SystemConfig cfg = checkedConfig(baselineConfig());
    cfg.ckpt.atCycles = {Cycles(5000)};
    HsaSystem sys(cfg);
    ASSERT_NE(sys.snapshot(), nullptr);
    EXPECT_TRUE(sys.stats().hasCounter("system.ckpt.checkpoints"));
    EXPECT_TRUE(sys.stats().hasCounter("system.ckpt.loggedOps"));
}

/** Reference run with one checkpoint at @p at, then a fresh system
 *  restored from that checkpoint: both must agree exactly. */
void
expectKillResumeIdentity(const std::string &wl, SystemConfig cfg,
                         Cycles at, const std::string &snap_path)
{
    std::remove(snap_path.c_str());

    SystemConfig ref_cfg = cfg;
    ref_cfg.ckpt.atCycles = {at};
    ref_cfg.ckpt.outPath = snap_path;
    RunResult ref = runOne(wl, ref_cfg);
    ASSERT_TRUE(ref.ok) << wl << "/" << cfg.label << ": " << ref.failReason;
    ASSERT_EQ(ref.checkpoints, 1u)
        << wl << "/" << cfg.label << " at cycle " << at
        << ": checkpoint point outside the run";
    ASSERT_GT(ref.lastCkptTick, 0u);

    SystemConfig res_cfg = cfg;
    res_cfg.ckpt.restorePath = snap_path;
    RunResult res = runOne(wl, res_cfg);
    EXPECT_TRUE(res.ok) << wl << "/" << cfg.label << ": "
                        << res.failReason;
    EXPECT_EQ(res.cycles, ref.cycles) << wl << "/" << cfg.label;
    EXPECT_EQ(res.stats, ref.stats) << wl << "/" << cfg.label;

    std::remove(snap_path.c_str());
}

TEST(KillResume, WorkloadBitIdentityAtTwoTicks)
{
    // The tier-2 soak sweeps the full kernel-identity matrix; this
    // keeps a representative corner in every tier-1 run: a workqueue
    // workload (heavy CPU/GPU atomics) under the baseline and the
    // most state-heavy (sharer-tracking) configurations, restored
    // from two distinct checkpoint points each.
    for (const SystemConfig &base :
         {baselineConfig(), sharerTrackingConfig()}) {
        SystemConfig cfg = checkedConfig(base);
        for (Cycles at : {Cycles(5000), Cycles(15000)}) {
            expectKillResumeIdentity(
                "tq", cfg, at,
                tmpPath("kill_resume_" + cfg.label + "_" +
                        std::to_string(at) + ".snapshot"));
        }
    }
}

TEST(KillResume, CrashAtTickWritesLastGaspAndResumesIdentically)
{
    SystemConfig cfg = checkedConfig(baselineConfig());
    cfg.ckpt.everyCycles = 2000;

    // Reference: same checkpoint cadence, no crash.
    SystemConfig ref_cfg = cfg;
    ref_cfg.ckpt.outPath = tmpPath("crash_ref.snapshot");
    RunResult ref = runOne("tq", ref_cfg);
    ASSERT_TRUE(ref.ok) << ref.failReason;
    ASSERT_GE(ref.checkpoints, 2u);

    // Crash fate: a simulated process kill mid-run.  Place it near
    // the middle of the reference run's tick span.
    ClockDomain cpu = ClockDomain::fromMHz(cfg.cpuMHz);
    Tick crash_tick = cpu.toTicks(Cycles(ref.cycles / 2));
    SystemConfig crash_cfg = cfg;
    crash_cfg.ckpt.outPath = tmpPath("crash_victim.snapshot");
    crash_cfg.fault.enabled = true;
    crash_cfg.fault.crashAtTick = crash_tick;
    RunResult crash = runOne("tq", crash_cfg);
    EXPECT_FALSE(crash.ok);
    EXPECT_NE(crash.failReason.find("crash fault"), std::string::npos)
        << crash.failReason;
    ASSERT_GE(crash.checkpoints, 1u);

    // The failure path re-emits the freshest checkpoint as a
    // last-gasp file next to the configured output.
    std::string gasp = crash_cfg.ckpt.outPath + ".lastgasp";
    EXPECT_NO_THROW(openSnapshot(readSnapshotFile(gasp)));

    // Resume from the last gasp with the same cadence: bit-identical
    // to the uninterrupted reference.
    SystemConfig res_cfg = cfg;
    res_cfg.ckpt.outPath = tmpPath("crash_resumed.snapshot");
    res_cfg.ckpt.restorePath = gasp;
    RunResult res = runOne("tq", res_cfg);
    EXPECT_TRUE(res.ok) << res.failReason;
    EXPECT_EQ(res.cycles, ref.cycles);
    EXPECT_EQ(res.stats, ref.stats);

    for (const std::string &p :
         {ref_cfg.ckpt.outPath, crash_cfg.ckpt.outPath, gasp,
          res_cfg.ckpt.outPath})
        std::remove(p.c_str());
}

TEST(KillResume, TesterCrashAfterEventsResumesToSameImage)
{
    SystemConfig cfg = baselineConfig();
    shrinkForTorture(cfg);
    cfg.ckpt.everyCycles = 1000;

    RandomTesterConfig tcfg;
    tcfg.seed = 5;
    tcfg.numLocations = 6;
    tcfg.roundsPerLocation = 3;
    tcfg.numCpuThreads = 4;
    tcfg.numGpuWorkgroups = 2;
    TesterSchedule sched = buildTesterSchedule(tcfg);

    // Reference run (checkpoint cadence on, uninterrupted).
    std::uint64_t ref_image = 0;
    Cycles ref_cycles = 0;
    std::uint64_t ref_stats = 0;
    std::uint64_t ref_events = 0;
    {
        SystemConfig ref_cfg = cfg;
        ref_cfg.ckpt.outPath = tmpPath("tester_ref.snapshot");
        HsaSystem sys(ref_cfg);
        RandomTester tester(sys, tcfg, sched);
        ASSERT_TRUE(tester.run()) << sys.failReason();
        ASSERT_GE(sys.checkpointsTaken(), 2u);
        ref_image = tester.imageHash();
        ref_cycles = sys.cpuCycles();
        ref_stats = statHash(sys.stats());
        ref_events = sys.eventQueue().numExecuted();
    }

    // Crash fate keyed on executed-event count instead of ticks.
    std::string victim_path = tmpPath("tester_victim.snapshot");
    {
        SystemConfig crash_cfg = cfg;
        crash_cfg.ckpt.outPath = victim_path;
        crash_cfg.fault.enabled = true;
        // Mid-schedule: a third of the uninterrupted run's total
        // event count (which also covers the verification pass).
        crash_cfg.fault.crashAfterEvents = ref_events / 3;
        HsaSystem sys(crash_cfg);
        RandomTester tester(sys, tcfg, sched);
        ASSERT_FALSE(tester.run());
        EXPECT_NE(sys.failReason().find("crash fault"),
                  std::string::npos)
            << sys.failReason();
        ASSERT_GE(sys.checkpointsTaken(), 1u);
    }

    // Resume: replay rebuilds the tester's shadow state from the op
    // logs, then the run continues live to the same final image.
    {
        SystemConfig res_cfg = cfg;
        res_cfg.ckpt.outPath = tmpPath("tester_resumed.snapshot");
        res_cfg.ckpt.restorePath = victim_path + ".lastgasp";
        HsaSystem sys(res_cfg);
        RandomTester tester(sys, tcfg, sched);
        EXPECT_TRUE(tester.run()) << sys.failReason();
        EXPECT_EQ(tester.imageHash(), ref_image);
        EXPECT_EQ(sys.cpuCycles(), ref_cycles);
        EXPECT_EQ(statHash(sys.stats()), ref_stats);
    }

    for (const std::string &p :
         {tmpPath("tester_ref.snapshot"), victim_path,
          victim_path + ".lastgasp", tmpPath("tester_resumed.snapshot")})
        std::remove(p.c_str());
}

TEST(KillResume, ManualModeCheckpointNowProducesOpenableSnapshot)
{
    SystemConfig cfg = checkedConfig(baselineConfig());
    cfg.ckpt.manual = true;
    ASSERT_TRUE(cfg.ckpt.enabled());
    HsaSystem sys(cfg);
    ASSERT_NE(sys.snapshot(), nullptr);
    auto workload = makeWorkload("tq", figureParams());
    workload->setup(sys);
    ASSERT_TRUE(sys.run());
    ASSERT_TRUE(workload->verify(sys));
    // Manual mode never checkpoints on its own...
    EXPECT_EQ(sys.checkpointsTaken(), 0u);
    // ...but can snapshot a quiescent system on demand (the anchor
    // capture path of checkpoint-anchored shrinking).
    std::string text = sys.checkpointNow();
    ASSERT_FALSE(text.empty());
    JsonValue payload;
    ASSERT_NO_THROW(payload = openSnapshot(text));
    EXPECT_EQ(sys.checkpointsTaken(), 1u);
    EXPECT_GT(payload.at("tick").asUInt(), 0u);
}

TEST(KillResume, OutOfProcessSigkillThenResume)
{
    const std::string child_path = tmpPath("sigkill_child.snapshot");
    std::remove(child_path.c_str());

    SystemConfig cfg = checkedConfig(baselineConfig());
    cfg.ckpt.everyCycles = 500; // frequent: a checkpoint lands fast

    // Reference (in-process, same cadence, uninterrupted).
    SystemConfig ref_cfg = cfg;
    ref_cfg.ckpt.outPath = tmpPath("sigkill_ref.snapshot");
    RunResult ref = runOne("tq", ref_cfg);
    ASSERT_TRUE(ref.ok) << ref.failReason;
    ASSERT_GE(ref.checkpoints, 4u);

    pid_t pid = fork();
    ASSERT_GE(pid, 0) << "fork failed";
    if (pid == 0) {
        // Child: same run, checkpointing to child_path, until SIGKILL
        // lands (or completion, if the kill loses the race — the test
        // is valid either way).
        SystemConfig child_cfg = cfg;
        child_cfg.ckpt.outPath = child_path;
        try {
            runOne("tq", child_cfg);
        } catch (...) {
        }
        _exit(0);
    }

    // Parent: wait for the first checkpoint to appear, then deliver a
    // real SIGKILL — no atexit, no flush, no destructor runs.
    bool seen = false;
    for (int i = 0; i < 5000 && !seen; ++i) {
        std::ifstream probe(child_path);
        seen = probe.good();
        if (!seen)
            usleep(2000);
    }
    ASSERT_TRUE(seen) << "child never produced a checkpoint";
    kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);

    // The atomic tmp+rename protocol guarantees the file is a
    // complete, verifiable snapshot even though the writer died.
    std::string text;
    ASSERT_NO_THROW(text = readSnapshotFile(child_path));
    ASSERT_NO_THROW(openSnapshot(text));

    // Resume the killed run; it must land exactly on the reference.
    SystemConfig res_cfg = cfg;
    res_cfg.ckpt.outPath = tmpPath("sigkill_resumed.snapshot");
    res_cfg.ckpt.restorePath = child_path;
    RunResult res = runOne("tq", res_cfg);
    EXPECT_TRUE(res.ok) << res.failReason;
    EXPECT_EQ(res.cycles, ref.cycles);
    EXPECT_EQ(res.stats, ref.stats);

    for (const std::string &p :
         {child_path, ref_cfg.ckpt.outPath, res_cfg.ckpt.outPath})
        std::remove(p.c_str());
}

} // namespace
} // namespace hsc
