/**
 * @file
 * PDES kernel identity tests (DESIGN.md §14).
 *
 * The parallel shard-per-thread kernel must be deterministic AND
 * independent of the host worker-thread count: the partition, window
 * sequence and drain order are pure functions of simulated state.
 * These tests pin that down three ways:
 *
 *  - thread-count invariance: the same run at 1, 2 and 4 workers
 *    produces identical cycles, an identical final heap image, and a
 *    byte-identical stat dump (the satellite audit for StatRegistry:
 *    counters are registered per shard-owned object and written only
 *    by that shard's thread, so the merged dump cannot depend on T);
 *  - sequential equivalence: the final coherent memory image matches
 *    the classic sequential kernel (cycle counts legitimately differ
 *    by the doorbell lookahead on kernel-launch/DMA hops);
 *  - safety net: the sharded coherence checker, the recovery
 *    transport, wire-level fault injection, the storage-fault model
 *    and the seeded bugs all construct and run under PDES — including
 *    a checked run over lossy wires — and a planted protocol bug is
 *    caught with the same invariant name the sequential checker uses;
 *  - rejection: the features that genuinely observe the single global
 *    event order (obs, trace capture, checkpoints, flipAtTick) refuse
 *    to construct under PDES with a structured SimError instead of
 *    going silently wrong.
 *
 * The full ten-workload acceptance matrix lives in the tier-2
 * pdes_matrix_test binary.
 */

#include "pdes_test_util.hh"

#include "sim/sim_error.hh"

namespace hsc
{
namespace
{

using pdes_test::PdesResult;
using pdes_test::checkedLossy;
using pdes_test::expectThreadCountInvariant;
using pdes_test::runPdes;
using pdes_test::unchecked;

TEST(PdesIdentity, ThreadCountInvarianceQuick)
{
    for (const char *wl : {"tq", "sc"}) {
        expectThreadCountInvariant(wl, unchecked(baselineConfig()),
                                   {1, 2, 4});
        expectThreadCountInvariant(wl,
                                   unchecked(sharerTrackingConfig()),
                                   {1, 2, 4});
    }
}

TEST(PdesIdentity, CheckedLossyThreadCountInvarianceQuick)
{
    // The tentpole distilled: sharded checker ON, 1% drop + 1% dup +
    // 0.1% corrupt wires, and the run is still a pure function of
    // simulated state — not of the worker count.
    expectThreadCountInvariant("tq", checkedLossy(baselineConfig()),
                               {1, 2, 4});
}

TEST(PdesIdentity, StatDumpIdenticalOneVsN)
{
    // The satellite audit distilled: the merged stat dump is a pure
    // function of the simulation, not of the worker count.  (Counters
    // live in shard-owned objects; cross-shard links split their
    // counters by writer side; reads happen after the workers join.)
    PdesResult one = runPdes("tq", baselineConfig(), 1);
    PdesResult many = runPdes("tq", baselineConfig(), 8);
    // baselineConfig keeps check=true, so this also exercises the
    // sharded checker's deterministic merge.
    ASSERT_TRUE(one.ok);
    ASSERT_TRUE(many.ok);
    EXPECT_FALSE(one.stats.empty());
    EXPECT_EQ(one.stats, many.stats);
}

TEST(PdesIdentity, RepeatedRunIsDeterministic)
{
    PdesResult a = runPdes("trns", baselineConfig(), 4);
    PdesResult b = runPdes("trns", baselineConfig(), 4);
    ASSERT_TRUE(a.ok);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.image, b.image);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(PdesBigMachine, Big64RunsUnderPdes)
{
    SystemConfig cfg = unchecked(big64Config());
    PdesResult r = runPdes("tq", cfg, 4);
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.cycles, 0u);
    // 64 CorePairs + 8 bank shards + GPU + DMA.
    cfg.pdes.enabled = true;
    cfg.pdes.threads = 1;
    HsaSystem probe(cfg);
    EXPECT_EQ(probe.numShards(), 74u);
}

TEST(PdesBigMachine, PresetsAreWellFormed)
{
    // The named-config table resolves both big presets, and the
    // matching CLI error path lists them.
    EXPECT_EQ(configByName("big64").label, big64Config().label);
    EXPECT_EQ(configByName("big128").label, big128Config().label);
    EXPECT_THROW(configByName("nonsense"), SimError);
}

// --- rejection: incompatible features fail construction loudly ----

SystemConfig
pdesBase()
{
    SystemConfig cfg = baselineConfig();
    cfg.check = false;
    cfg.pdes.enabled = true;
    cfg.pdes.threads = 2;
    return cfg;
}

void
expectRejected(SystemConfig cfg)
{
    EXPECT_THROW({ HsaSystem sys(cfg); }, SimError);
}

TEST(PdesAccepts, SafetyNetFeaturesConstruct)
{
    // Formerly rejected, now sharded with the kernel: each of these
    // must construct cleanly under PDES.
    {
        SystemConfig cfg = pdesBase();
        cfg.check = true;
        HsaSystem sys(cfg);
        EXPECT_NE(sys.checker(), nullptr);
    }
    {
        SystemConfig cfg = pdesBase();
        cfg.transport.enabled = true;
        HsaSystem sys(cfg);
    }
    {
        SystemConfig cfg = pdesBase();
        cfg.fault.enabled = true;
        cfg.fault.maxJitter = 4;
        HsaSystem sys(cfg);
    }
    {
        SystemConfig cfg = pdesBase();
        cfg.fault.enabled = true;
        cfg.fault.deadLinks.push_back("fromDir");
        HsaSystem sys(cfg);
    }
    {
        SystemConfig cfg = pdesBase();
        cfg.storageFault.enabled = true;
        cfg.storageFault.flipPer10kAccesses = 1;
        HsaSystem sys(cfg);
    }
    {
        SystemConfig cfg = pdesBase();
        cfg.bug.kind = SeededBug::Kind::IgnoreInvProbe;
        HsaSystem sys(cfg);
    }
}

TEST(PdesRejection, Observability)
{
    SystemConfig cfg = pdesBase();
    cfg.obs.enabled = true;
    expectRejected(cfg);
    cfg = pdesBase();
    cfg.obs.samplingInterval = 100;
    expectRejected(cfg);
}

TEST(PdesRejection, TraceCapture)
{
    SystemConfig cfg = pdesBase();
    cfg.trace.outPath = "/tmp/never-written.trace";
    expectRejected(cfg);
}

TEST(PdesRejection, Checkpointing)
{
    SystemConfig cfg = pdesBase();
    cfg.ckpt.everyCycles = 1000;
    expectRejected(cfg);
    cfg = pdesBase();
    cfg.ckpt.manual = true;
    expectRejected(cfg);
}

TEST(PdesRejection, StorageFlipAtTick)
{
    // The probabilistic modes shard fine; the one-shot "first access
    // at or after tick T" reads a global access order PDES does not
    // define.
    SystemConfig cfg = pdesBase();
    cfg.storageFault.enabled = true;
    cfg.storageFault.flipAtTick = 5000;
    expectRejected(cfg);
}

TEST(PdesRejection, ZeroLinkLatency)
{
    SystemConfig cfg = pdesBase();
    cfg.linkLatency = 0;
    expectRejected(cfg);
}

TEST(PdesRejection, ChannelBankMismatch)
{
    SystemConfig cfg = pdesBase();
    cfg.numDirBanks = 4;
    cfg.memChannels = 1; // legal sequentially, rejected under pdes
    expectRejected(cfg);
}

// --- the sharded checker catches a planted protocol bug -----------

// Spin on a flag through the coherence protocol until it reads 1.
#define AWAIT_FLAG(cpu, flag)                                           \
    while (co_await (cpu).load(flag) == 0)                              \
        co_await (cpu).compute(200)

std::string
runSeededBugScenario(bool pdes, unsigned threads)
{
    SystemConfig cfg = baselineConfig();
    cfg.check = true;
    cfg.bug.kind = SeededBug::Kind::IgnoreInvProbe;
    cfg.bug.addr = 0x100000;
    cfg.bug.agent = 0; // only corepair0 ignores the probe
    if (pdes) {
        cfg.pdes.enabled = true;
        cfg.pdes.threads = threads;
    }
    HsaSystem sys(cfg);
    Addr data = sys.alloc(64);
    Addr flag = sys.alloc(64);
    EXPECT_EQ(data, 0x100000u);

    // Thread 0 (corepair0) takes the block Modified, then thread 2
    // (corepair1) writes it too; the ignored invalidation leaves two
    // L2s with write permission at once.
    sys.addCpuThread([&, data, flag](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(data, 0xAAAA'0001);
        co_await cpu.store(flag, 1);
    });
    sys.addCpuThread([](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(1);
    });
    sys.addCpuThread([&, data, flag](CpuCtx &cpu) -> SimTask {
        AWAIT_FLAG(cpu, flag);
        co_await cpu.store(data, 0xBBBB'0002);
    });

    EXPECT_FALSE(sys.run()) << (pdes ? "pdes" : "sequential");
    const CoherenceChecker *chk = sys.checker();
    EXPECT_NE(chk, nullptr);
    EXPECT_TRUE(chk->violated());
    if (!chk->violated())
        return {};
    const ViolationReport &r = chk->violations().front();
    EXPECT_EQ(r.addr, 0x100000u);
    return r.kind;
}

TEST(PdesShardedChecker, CatchesSeededBugWithSequentialInvariantName)
{
    std::string seq_kind = runSeededBugScenario(false, 0);
    EXPECT_EQ(seq_kind, "swmr");
    for (unsigned threads : {1u, 4u}) {
        std::string pdes_kind = runSeededBugScenario(true, threads);
        EXPECT_EQ(pdes_kind, seq_kind)
            << "sharded checker classifies the planted bug "
               "differently at "
            << threads << " threads";
    }
}

} // namespace
} // namespace hsc
