/**
 * @file
 * PDES kernel identity tests (DESIGN.md §14).
 *
 * The parallel shard-per-thread kernel must be deterministic AND
 * independent of the host worker-thread count: the partition, window
 * sequence and drain order are pure functions of simulated state.
 * These tests pin that down three ways:
 *
 *  - thread-count invariance: the same run at 1, 2 and 4 workers
 *    produces identical cycles, an identical final heap image, and a
 *    byte-identical stat dump (the satellite audit for StatRegistry:
 *    counters are registered per shard-owned object and written only
 *    by that shard's thread, so the merged dump cannot depend on T);
 *  - sequential equivalence: the final coherent memory image matches
 *    the classic sequential kernel (cycle counts legitimately differ
 *    by the doorbell lookahead on kernel-launch/DMA hops);
 *  - rejection: every feature that observes or perturbs the single
 *    global event order refuses to construct under PDES with a
 *    structured SimError instead of going silently wrong.
 *
 * The full ten-workload acceptance matrix lives in the tier-2
 * pdes_matrix_test binary.
 */

#include "pdes_test_util.hh"

#include "sim/sim_error.hh"

namespace hsc
{
namespace
{

using pdes_test::PdesResult;
using pdes_test::expectThreadCountInvariant;
using pdes_test::runPdes;

TEST(PdesIdentity, ThreadCountInvarianceQuick)
{
    for (const char *wl : {"tq", "sc"}) {
        expectThreadCountInvariant(wl, baselineConfig(), {1, 2, 4});
        expectThreadCountInvariant(wl, sharerTrackingConfig(),
                                   {1, 2, 4});
    }
}

TEST(PdesIdentity, StatDumpIdenticalOneVsN)
{
    // The satellite audit distilled: the merged stat dump is a pure
    // function of the simulation, not of the worker count.  (Counters
    // live in shard-owned objects; cross-shard links split their
    // counters by writer side; reads happen after the workers join.)
    PdesResult one = runPdes("tq", baselineConfig(), 1);
    PdesResult many = runPdes("tq", baselineConfig(), 8);
    ASSERT_TRUE(one.ok);
    ASSERT_TRUE(many.ok);
    EXPECT_FALSE(one.stats.empty());
    EXPECT_EQ(one.stats, many.stats);
}

TEST(PdesIdentity, RepeatedRunIsDeterministic)
{
    PdesResult a = runPdes("trns", baselineConfig(), 4);
    PdesResult b = runPdes("trns", baselineConfig(), 4);
    ASSERT_TRUE(a.ok);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.image, b.image);
    EXPECT_EQ(a.stats, b.stats);
}

TEST(PdesBigMachine, Big64RunsUnderPdes)
{
    SystemConfig cfg = big64Config();
    PdesResult r = runPdes("tq", cfg, 4);
    ASSERT_TRUE(r.ok);
    EXPECT_GT(r.cycles, 0u);
    // 64 CorePairs + 8 bank shards + GPU + DMA.
    cfg.check = false;
    cfg.pdes.enabled = true;
    cfg.pdes.threads = 1;
    HsaSystem probe(cfg);
    EXPECT_EQ(probe.numShards(), 74u);
}

TEST(PdesBigMachine, PresetsAreWellFormed)
{
    // The named-config table resolves both big presets, and the
    // matching CLI error path lists them.
    EXPECT_EQ(configByName("big64").label, big64Config().label);
    EXPECT_EQ(configByName("big128").label, big128Config().label);
    EXPECT_THROW(configByName("nonsense"), SimError);
}

// --- rejection: incompatible features fail construction loudly ----

SystemConfig
pdesBase()
{
    SystemConfig cfg = baselineConfig();
    cfg.check = false;
    cfg.pdes.enabled = true;
    cfg.pdes.threads = 2;
    return cfg;
}

void
expectRejected(SystemConfig cfg)
{
    EXPECT_THROW({ HsaSystem sys(cfg); }, SimError);
}

TEST(PdesRejection, CoherenceChecker)
{
    SystemConfig cfg = pdesBase();
    cfg.check = true;
    expectRejected(cfg);
}

TEST(PdesRejection, Observability)
{
    SystemConfig cfg = pdesBase();
    cfg.obs.enabled = true;
    expectRejected(cfg);
    cfg = pdesBase();
    cfg.obs.samplingInterval = 100;
    expectRejected(cfg);
}

TEST(PdesRejection, TraceCapture)
{
    SystemConfig cfg = pdesBase();
    cfg.trace.outPath = "/tmp/never-written.trace";
    expectRejected(cfg);
}

TEST(PdesRejection, Checkpointing)
{
    SystemConfig cfg = pdesBase();
    cfg.ckpt.everyCycles = 1000;
    expectRejected(cfg);
    cfg = pdesBase();
    cfg.ckpt.manual = true;
    expectRejected(cfg);
}

TEST(PdesRejection, Transport)
{
    SystemConfig cfg = pdesBase();
    cfg.transport.enabled = true;
    expectRejected(cfg);
}

TEST(PdesRejection, FaultInjection)
{
    SystemConfig cfg = pdesBase();
    cfg.fault.enabled = true;
    cfg.fault.maxJitter = 4;
    expectRejected(cfg);
    cfg = pdesBase();
    cfg.fault.deadLinks.push_back("fromDir");
    expectRejected(cfg);
}

TEST(PdesRejection, StorageFaults)
{
    SystemConfig cfg = pdesBase();
    cfg.storageFault.enabled = true;
    expectRejected(cfg);
}

TEST(PdesRejection, SeededBug)
{
    SystemConfig cfg = pdesBase();
    cfg.bug.kind = SeededBug::Kind::IgnoreInvProbe;
    expectRejected(cfg);
}

TEST(PdesRejection, ZeroLinkLatency)
{
    SystemConfig cfg = pdesBase();
    cfg.linkLatency = 0;
    expectRejected(cfg);
}

TEST(PdesRejection, ChannelBankMismatch)
{
    SystemConfig cfg = pdesBase();
    cfg.numDirBanks = 4;
    cfg.memChannels = 1; // legal sequentially, rejected under pdes
    expectRejected(cfg);
}

} // namespace
} // namespace hsc
