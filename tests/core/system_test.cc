/**
 * @file
 * HsaSystem-level tests: allocation, stats plumbing, the deadlock
 * watchdog, re-running, GPU dispatch behaviour, and the coherence
 * checker on quiescent systems.
 */

#include <gtest/gtest.h>

#include "core/coherence_checker.hh"
#include "core/hsa_system.hh"

namespace hsc
{
namespace
{

TEST(HsaSystem, AllocIsBlockAlignedAndDisjoint)
{
    HsaSystem sys(baselineConfig());
    Addr a = sys.alloc(1);
    Addr b = sys.alloc(100);
    Addr c = sys.alloc(64);
    EXPECT_EQ(blockOffset(a), 0u);
    EXPECT_EQ(blockOffset(b), 0u);
    EXPECT_EQ(b, a + 64);
    EXPECT_EQ(c, b + 128);
}

TEST(HsaSystem, StatsRegisteredForEveryComponent)
{
    HsaSystem sys(baselineConfig());
    StatRegistry &reg = sys.stats();
    for (const char *name :
         {"system.mem.reads", "system.mem.writes", "system.dir.requests",
          "system.dir.probesSent", "system.dir.llc.reads",
          "system.corepair0.loads", "system.corepair3.l2Misses",
          "system.tcc.writeThroughs", "system.sqc.fetches",
          "system.cu0.tcp.loads", "system.dma.reads", "gpu.kernels"}) {
        EXPECT_TRUE(reg.hasCounter(name)) << name;
    }
}

TEST(HsaSystem, RunWithNoThreadsCompletes)
{
    HsaSystem sys(baselineConfig());
    EXPECT_TRUE(sys.run());
    EXPECT_EQ(sys.cpuCycles(), 0u);
}

TEST(HsaSystem, WatchdogCatchesLostWakeup)
{
    SystemConfig cfg = baselineConfig();
    cfg.watchdogCycles = 20'000;
    HsaSystem sys(cfg);
    sys.addCpuThread([](CpuCtx &cpu) -> SimTask {
        // Await a callback that never fires: a genuine deadlock.
        co_await AwaitVoid([](std::function<void()>) {});
        co_await cpu.compute(1);
    });
    EXPECT_FALSE(sys.run());
}

TEST(HsaSystem, WatchdogToleratesLongComputePhases)
{
    SystemConfig cfg = baselineConfig();
    cfg.watchdogCycles = 50'000;
    HsaSystem sys(cfg);
    bool done = false;
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        for (int i = 0; i < 10; ++i)
            co_await cpu.compute(30'000); // each under the threshold
        done = true;
    });
    EXPECT_TRUE(sys.run());
    EXPECT_TRUE(done);
}

TEST(HsaSystem, SequentialRunsAccumulate)
{
    HsaSystem sys(baselineConfig());
    Addr a = sys.alloc(64);
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(a, 1);
    });
    ASSERT_TRUE(sys.run());
    std::uint64_t loads_before = sys.stats().counter(
        "system.corepair0.stores");
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(a, 2);
    });
    ASSERT_TRUE(sys.run());
    EXPECT_GT(sys.stats().counter("system.corepair0.stores"),
              loads_before);
    EXPECT_EQ(sys.corePair(0).peekWord(a, 8), 2u);
}

TEST(HsaSystem, KernelsSerialiseOnOneQueue)
{
    HsaSystem sys(baselineConfig());
    Addr a = sys.alloc(64);
    std::vector<int> order;
    auto make_kernel = [&](int id) {
        GpuKernel k;
        k.name = "k" + std::to_string(id);
        k.numWorkgroups = 2;
        k.body = [&order, id, a](WaveCtx &wf) -> SimTask {
            co_await wf.compute(50);
            if (wf.workgroupId() == 0)
                order.push_back(id);
            co_await wf.store(a, std::uint64_t(id), 4, Scope::System);
        };
        return k;
    };
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        cpu.launchKernelAsync(make_kernel(1));
        cpu.launchKernelAsync(make_kernel(2));
        cpu.launchKernelAsync(make_kernel(3));
        co_await cpu.waitKernels();
    });
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sys.dispatcher().kernelsLaunched(), 3u);
    EXPECT_EQ(sys.stats().counter("gpu.workgroups"), 6u);
}

TEST(HsaSystem, MoreWorkgroupsThanSlots)
{
    SystemConfig cfg = baselineConfig();
    cfg.numCus = 2;
    cfg.wavefrontsPerCu = 2; // 4 slots total
    HsaSystem sys(cfg);
    Addr counter = sys.alloc(64);
    GpuKernel k;
    k.name = "many";
    k.numWorkgroups = 13;
    k.body = [counter](WaveCtx &wf) -> SimTask {
        co_await wf.atomic(counter, AtomicOp::Add, 1, 0, 4,
                           Scope::System);
    };
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.launchKernel(k);
    });
    ASSERT_TRUE(sys.run());
    EXPECT_EQ(sys.readWord<std::uint32_t>(counter), 13u);
}

TEST(CoherenceChecker, CleanOnQuietSystem)
{
    HsaSystem sys(sharerTrackingConfig());
    Addr a = sys.alloc(256);
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        for (unsigned i = 0; i < 4; ++i)
            co_await cpu.store(a + i * 64, i);
    });
    ASSERT_TRUE(sys.run());
    CheckResult r = checkCoherenceInvariants(sys);
    EXPECT_TRUE(r.ok);
    EXPECT_TRUE(bool(r));
    EXPECT_TRUE(r.violations.empty());
}

TEST(HsaSystem, ClockDomainsMatchTable3)
{
    HsaSystem sys(baselineConfig());
    EXPECT_EQ(sys.cpuClock().periodTicks(),
              ClockDomain::fromMHz(3500).periodTicks());
    EXPECT_EQ(sys.gpuClock().periodTicks(),
              ClockDomain::fromMHz(1100).periodTicks());
    EXPECT_EQ(sys.numCorePairs(), 4u);
    EXPECT_EQ(sys.numCus(), 8u);
}

} // namespace
} // namespace hsc
