/**
 * @file
 * Per-workload unit tests beyond the big run-and-verify sweep:
 * verification quality (a corrupted output must be rejected),
 * parameter scaling, and workload-specific structural expectations.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "core/run_report.hh"
#include "workloads/workload.hh"

namespace hsc
{
namespace
{

TEST(WorkloadVerify, RejectsCorruptedOutput)
{
    // Run hsto, then corrupt one bin *behind the caches' backs* at a
    // location the caches no longer hold; verify() must notice.
    SystemConfig cfg = baselineConfig();
    HsaSystem sys(cfg);
    WorkloadParams p;
    auto wl = makeWorkload("hsto", p);
    wl->setup(sys);
    ASSERT_TRUE(sys.run());
    ASSERT_TRUE(wl->verify(sys));

    // The bins live at the second allocation; sweep all candidate
    // words and corrupt whichever one coherentPeek currently reads
    // from memory (i.e. not cached anywhere).
    bool corrupted_one = false;
    for (Addr probe = 0x100000; probe < 0x140000 && !corrupted_one;
         probe += 4) {
        bool cached = false;
        for (unsigned i = 0; i < sys.numCorePairs(); ++i)
            cached |= sys.corePair(i).hasLine(probe);
        if (cached)
            continue;
        std::uint32_t cur = sys.readWord<std::uint32_t>(probe);
        if (cur != 0 && sys.directory().llc().peek(probe) == nullptr) {
            sys.writeWord<std::uint32_t>(probe, cur + 13);
            corrupted_one = true;
        }
    }
    if (corrupted_one) {
        EXPECT_FALSE(wl->verify(sys));
    }
}

TEST(WorkloadScaling, ScaleGrowsWork)
{
    WorkloadParams small, big;
    small.scale = 1;
    big.scale = 3;
    RunMetrics a = benchWorkload("hsti", baselineConfig(), small);
    RunMetrics b = benchWorkload("hsti", baselineConfig(), big);
    EXPECT_TRUE(a.ok);
    EXPECT_TRUE(b.ok);
    EXPECT_GT(b.cycles, a.cycles);
    EXPECT_GT(b.dirRequests, a.dirRequests);
}

TEST(WorkloadStructure, TqUsesGpuAtomicsHeavily)
{
    SystemConfig cfg = baselineConfig();
    HsaSystem sys(cfg);
    WorkloadParams p;
    auto wl = makeWorkload("tq", p);
    wl->setup(sys);
    ASSERT_TRUE(sys.run());
    ASSERT_TRUE(wl->verify(sys));
    EXPECT_GT(sys.stats().counter("system.tcc.atomicsSystem"), 0u);
    EXPECT_GT(sys.stats().counter("system.dir.atomics"), 0u);
}

TEST(WorkloadStructure, HstoReadsInputFromBothDevices)
{
    SystemConfig cfg = baselineConfig();
    HsaSystem sys(cfg);
    WorkloadParams p;
    auto wl = makeWorkload("hsto", p);
    wl->setup(sys);
    ASSERT_TRUE(sys.run());
    ASSERT_TRUE(wl->verify(sys));
    // Output partitioning: both CPU loads and GPU reads are heavy.
    EXPECT_GT(sys.stats().sumCounters("system.corepair"), 0u);
    EXPECT_GT(sys.stats().counter("system.tcc.reads"), 0u);
}

TEST(WorkloadStructure, CeddProducesFlushesInWriteBackMode)
{
    SystemConfig cfg = baselineConfig();
    cfg.gpuWriteBack = true;
    HsaSystem sys(cfg);
    WorkloadParams p;
    auto wl = makeWorkload("cedd", p);
    wl->setup(sys);
    ASSERT_TRUE(sys.run());
    ASSERT_TRUE(wl->verify(sys));
    EXPECT_GT(sys.stats().counter("system.tcc.flushes"), 0u)
        << "per-frame release must drain as Flush requests";
}

TEST(WorkloadStructure, PadWaitsOnFlags)
{
    WorkloadParams p;
    RunMetrics m = benchWorkload("pad", baselineConfig(), p);
    EXPECT_TRUE(m.ok);
    EXPECT_GT(m.dirRequests, 0u);
}

TEST(DumpConfig, PrintsTheInstantiatedKnobs)
{
    SystemConfig cfg = sharerTrackingConfig();
    cfg.numDirBanks = 2;
    HsaSystem sys(cfg);
    std::ostringstream os;
    sys.dumpConfig(os);
    std::string out = os.str();
    EXPECT_NE(out.find("tracking=sharers"), std::string::npos);
    EXPECT_NE(out.find("banks=2"), std::string::npos);
    EXPECT_NE(out.find("llcWriteBack=1"), std::string::npos);
    EXPECT_NE(out.find("corePairs=4"), std::string::npos);
}

TEST(StatsDump, ContainsHistogramsAndCounters)
{
    HsaSystem sys(baselineConfig());
    Addr a = sys.alloc(64);
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(a, 1);
    });
    ASSERT_TRUE(sys.run());
    std::ostringstream os;
    sys.stats().dump(os);
    std::string out = os.str();
    EXPECT_NE(out.find("system.dir.requests"), std::string::npos);
    EXPECT_GT(sys.stats().counter("system.dir.requests"), 0u);
    EXPECT_NE(out.find("system.dir.txnLatency.samples"),
              std::string::npos);
}

} // namespace
} // namespace hsc
