/**
 * @file
 * Workload correctness: every CHAI-like workload must run to
 * completion and verify its numerical output under every directory
 * configuration (parameterized sweep), plus GPU write-back mode and a
 * cache-pressure (torture) geometry on the baseline and the most
 * enhanced configuration.
 */

#include <gtest/gtest.h>

#include "workloads/workload.hh"

namespace hsc
{
namespace
{

struct Param
{
    std::string workload;
    std::string cfgName;
    SystemConfig cfg;

    std::string
    name() const
    {
        std::string n = workload + "_" + cfgName;
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    }
};

class WorkloadFixture : public ::testing::TestWithParam<Param>
{
};

TEST_P(WorkloadFixture, RunsAndVerifies)
{
    const Param &p = GetParam();
    WorkloadParams wp;
    wp.scale = 1;
    WorkloadRun r = runWorkload(p.workload, p.cfg, wp);
    ASSERT_TRUE(r.ran) << "simulation incomplete";
    EXPECT_TRUE(r.verified) << "output verification failed";
    EXPECT_GT(r.cycles, 0u);
}

std::vector<Param>
makeParams()
{
    std::vector<Param> params;
    std::vector<std::pair<std::string, SystemConfig>> cfgs = {
        {"baseline", baselineConfig()},
        {"earlyResp", earlyRespConfig()},
        {"noCleanVicMem", noCleanVicToMemConfig()},
        {"noCleanVicLlc", noCleanVicToLlcConfig()},
        {"llcWB", llcWriteBackConfig()},
        {"llcWBuseL3", llcWriteBackUseL3Config()},
        {"owner", ownerTrackingConfig()},
        {"sharers", sharerTrackingConfig()},
        {"limitedPtr2", limitedPointerConfig(2)},
    };
    for (const std::string &wl : workloadIds()) {
        for (auto &[name, cfg] : cfgs)
            params.push_back({wl, name, cfg});
    }
    // HeteroSync-style microbenchmarks on a representative config set.
    for (const std::string &wl : heteroSyncIds()) {
        params.push_back({wl, "baseline", baselineConfig()});
        params.push_back({wl, "llcWBuseL3", llcWriteBackUseL3Config()});
        params.push_back({wl, "sharers", sharerTrackingConfig()});
        SystemConfig wb = sharerTrackingConfig();
        wb.gpuWriteBack = true;
        params.push_back({wl, "sharersGpuWB", wb});
    }
    for (const std::string &wl : workloadIds()) {

        SystemConfig wb = baselineConfig();
        wb.gpuWriteBack = true;
        params.push_back({wl, "baselineGpuWB", wb});

        SystemConfig wb2 = sharerTrackingConfig();
        wb2.gpuWriteBack = true;
        params.push_back({wl, "sharersGpuWB", wb2});

        SystemConfig torture = baselineConfig();
        shrinkForTorture(torture);
        params.push_back({wl, "baselineTorture", torture});

        SystemConfig torture2 = sharerTrackingConfig();
        shrinkForTorture(torture2);
        params.push_back({wl, "sharersTorture", torture2});
    }
    return params;
}

INSTANTIATE_TEST_SUITE_P(AllWorkloads, WorkloadFixture,
                         ::testing::ValuesIn(makeParams()),
                         [](const auto &info) { return info.param.name(); });

TEST(WorkloadRegistry, AllIdsConstruct)
{
    WorkloadParams p;
    for (const std::string &id : workloadIds()) {
        auto wl = makeWorkload(id, p);
        ASSERT_NE(wl, nullptr);
        EXPECT_EQ(wl->name(), id);
    }
    EXPECT_THROW(makeWorkload("nope", p), std::runtime_error);
}

TEST(WorkloadRegistry, CoherenceActiveIsSubset)
{
    for (const std::string &id : coherenceActiveIds()) {
        bool found = false;
        for (const std::string &all : workloadIds())
            found |= (all == id);
        EXPECT_TRUE(found) << id;
    }
}

} // namespace
} // namespace hsc
