/**
 * @file
 * sim/json.hh unit tests: exact integer round-trips (the property the
 * failure-trace format depends on), order-preserving objects, pretty
 * printing, and parse-error reporting.
 */

#include <gtest/gtest.h>

#include "sim/json.hh"
#include "sim/sim_error.hh"

namespace hsc
{
namespace
{

TEST(Json, ScalarKindsRoundTrip)
{
    JsonValue v = parseJson(
        "{\"b\": true, \"n\": null, \"i\": 42, \"neg\": -7, "
        "\"d\": 1.5, \"s\": \"hi\"}");
    EXPECT_TRUE(v.at("b").asBool());
    EXPECT_TRUE(v.at("n").isNull());
    EXPECT_EQ(v.at("i").asUInt(), 42u);
    EXPECT_EQ(v.at("neg").asInt(), -7);
    EXPECT_DOUBLE_EQ(v.at("d").asDouble(), 1.5);
    EXPECT_EQ(v.at("s").asString(), "hi");
}

TEST(Json, Uint64KeepsFullPrecision)
{
    // 2^64 - 1 and a typical RNG seed would both lose bits through a
    // double; the Int kind must carry them exactly.
    std::uint64_t big = 0xFFFF'FFFF'FFFF'FFFFull;
    std::uint64_t seed = 0x9E37'79B9'7F4A'7C15ull;
    JsonValue obj = JsonValue::makeObject();
    obj.set("big", JsonValue(big));
    obj.set("seed", JsonValue(seed));
    JsonValue back = parseJson(obj.dump());
    EXPECT_EQ(back.at("big").asUInt(), big);
    EXPECT_EQ(back.at("seed").asUInt(), seed);
}

TEST(Json, NegativeInt64RoundTrips)
{
    JsonValue v(std::int64_t(-123456789012345));
    EXPECT_EQ(parseJson(v.dump()).asInt(), -123456789012345);
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue obj = JsonValue::makeObject();
    obj.set("zeta", JsonValue(1));
    obj.set("alpha", JsonValue(2));
    obj.set("mid", JsonValue(3));
    ASSERT_EQ(obj.members().size(), 3u);
    EXPECT_EQ(obj.members()[0].first, "zeta");
    EXPECT_EQ(obj.members()[1].first, "alpha");
    EXPECT_EQ(obj.members()[2].first, "mid");
    // set() on an existing key overwrites in place.
    obj.set("alpha", JsonValue(9));
    EXPECT_EQ(obj.members().size(), 3u);
    EXPECT_EQ(obj.at("alpha").asUInt(), 9u);
}

TEST(Json, NestedContainersRoundTrip)
{
    JsonValue arr = JsonValue::makeArray();
    for (unsigned i = 0; i < 3; ++i) {
        JsonValue o = JsonValue::makeObject();
        o.set("i", JsonValue(i));
        o.set("sq", JsonValue(i * i));
        arr.push(std::move(o));
    }
    JsonValue root = JsonValue::makeObject();
    root.set("rows", std::move(arr));
    JsonValue back = parseJson(root.dump(2));
    ASSERT_EQ(back.at("rows").size(), 3u);
    EXPECT_EQ(back.at("rows").items()[2].at("sq").asUInt(), 4u);
}

TEST(Json, StringEscapesRoundTrip)
{
    std::string tricky = "quote\" slash\\ tab\t nl\n ctrl\x01 end";
    JsonValue back = parseJson(JsonValue(tricky).dump());
    EXPECT_EQ(back.asString(), tricky);
}

TEST(Json, FindReturnsNullOnMissingKey)
{
    JsonValue obj = JsonValue::makeObject();
    obj.set("present", JsonValue(1));
    EXPECT_NE(obj.find("present"), nullptr);
    EXPECT_EQ(obj.find("absent"), nullptr);
    EXPECT_THROW(obj.at("absent"), SimError);
}

TEST(Json, KindMismatchIsFatal)
{
    JsonValue v(std::string("text"));
    EXPECT_THROW(v.asUInt(), SimError);
    EXPECT_THROW(v.items(), SimError);
    EXPECT_THROW(JsonValue(true).asString(), SimError);
}

TEST(Json, MalformedInputThrows)
{
    EXPECT_THROW(parseJson(""), SimError);
    EXPECT_THROW(parseJson("{"), SimError);
    EXPECT_THROW(parseJson("[1, 2,]"), SimError);
    EXPECT_THROW(parseJson("{\"a\": }"), SimError);
    EXPECT_THROW(parseJson("\"unterminated"), SimError);
    EXPECT_THROW(parseJson("tru"), SimError);
    EXPECT_THROW(parseJson("{} trailing"), SimError);
}

TEST(Json, PrettyAndCompactParseTheSame)
{
    JsonValue root = JsonValue::makeObject();
    root.set("a", JsonValue(1));
    JsonValue inner = JsonValue::makeArray();
    inner.push(JsonValue(false));
    inner.push(JsonValue("x"));
    root.set("list", std::move(inner));
    EXPECT_EQ(parseJson(root.dump()).dump(), parseJson(root.dump(2)).dump());
}

} // namespace
} // namespace hsc
