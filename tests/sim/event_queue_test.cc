/** @file Unit tests for the discrete-event queue. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace hsc
{
namespace
{

TEST(EventQueue, StartsEmptyAtTickZero)
{
    EventQueue eq;
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.curTick(), 0u);
    EXPECT_EQ(eq.run(), 0u);
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 8; ++i)
        eq.schedule(5, [&, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, PriorityOrdersWithinTick)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(5, [&] { order.push_back(2); }, EventPriority::Late);
    eq.schedule(5, [&] { order.push_back(1); }, EventPriority::Default);
    eq.schedule(5, [&] { order.push_back(0); }, EventPriority::Early);
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueue, EventsMayScheduleEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] {
        eq.scheduleIn(5, [&] { fired = 1; });
    });
    eq.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.curTick(), 15u);
}

TEST(EventQueue, RunRespectsLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(100, [&] { ++fired; });
    EXPECT_EQ(eq.run(50), 1u);
    EXPECT_EQ(fired, 1);
    // The tick advances to the limit when events remain beyond it.
    EXPECT_EQ(eq.run(MaxTick), 1u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, SchedulingInPastPanics)
{
    EventQueue eq;
    eq.schedule(10, [&] {
        EXPECT_THROW(eq.schedule(5, [] {}), std::logic_error);
    });
    eq.run();
}

TEST(EventQueue, RunUntilPredicate)
{
    EventQueue eq;
    int count = 0;
    for (Tick t = 1; t <= 10; ++t)
        eq.schedule(t, [&] { ++count; });
    bool hit = eq.runUntil([&] { return count == 4; });
    EXPECT_TRUE(hit);
    EXPECT_EQ(count, 4);
    EXPECT_EQ(eq.curTick(), 4u);
    // Remaining events still run afterwards.
    eq.run();
    EXPECT_EQ(count, 10);
}

TEST(EventQueue, ProgressNotification)
{
    EventQueue eq;
    eq.schedule(42, [&] { eq.notifyProgress(); });
    eq.run();
    EXPECT_EQ(eq.lastProgress(), 42u);
}

TEST(EventQueue, CountsExecutedEvents)
{
    EventQueue eq;
    for (int i = 0; i < 5; ++i)
        eq.schedule(i, [] {});
    eq.run();
    EXPECT_EQ(eq.numExecuted(), 5u);
}

} // namespace
} // namespace hsc
