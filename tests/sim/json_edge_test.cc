/**
 * @file
 * sim/json.hh edge cases the snapshot format leans on: full-width
 * integer extremes (INT64_MIN has no positive counterpart — negation
 * must happen in the unsigned domain), deeply nested documents
 * (snapshots nest sections several levels), and a truncation corpus
 * that cuts a valid document at every byte offset — each prefix must
 * fail with a clean SimError, never crash or parse successfully.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>

#include "sim/json.hh"
#include "sim/sim_error.hh"

namespace hsc
{
namespace
{

TEST(JsonEdge, Int64ExtremesRoundTrip)
{
    const std::int64_t lo = std::numeric_limits<std::int64_t>::min();
    const std::int64_t hi = std::numeric_limits<std::int64_t>::max();
    JsonValue obj = JsonValue::makeObject();
    obj.set("lo", JsonValue(lo));
    obj.set("hi", JsonValue(hi));
    obj.set("m1", JsonValue(std::int64_t(-1)));
    JsonValue back = parseJson(obj.dump());
    EXPECT_EQ(back.at("lo").asInt(), lo);
    EXPECT_EQ(back.at("hi").asInt(), hi);
    EXPECT_EQ(back.at("m1").asInt(), -1);
}

TEST(JsonEdge, Int64MinParsesFromText)
{
    JsonValue v = parseJson("-9223372036854775808");
    EXPECT_EQ(v.asInt(), std::numeric_limits<std::int64_t>::min());
    EXPECT_EQ(v.dump(), "-9223372036854775808");
}

TEST(JsonEdge, Uint64MaxRoundTrips)
{
    const std::uint64_t top = std::numeric_limits<std::uint64_t>::max();
    JsonValue back = parseJson(JsonValue(top).dump());
    EXPECT_EQ(back.asUInt(), top);
    EXPECT_EQ(back.dump(), "18446744073709551615");
}

TEST(JsonEdge, DeeplyNestedArrayRoundTrips)
{
    // 256 levels: enough to catch accidental O(depth^2) or stack
    // abuse in the writer/parser while staying portable.
    constexpr int Depth = 256;
    JsonValue doc(std::uint64_t(42));
    for (int i = 0; i < Depth; ++i) {
        JsonValue outer = JsonValue::makeArray();
        outer.push(std::move(doc));
        doc = std::move(outer);
    }
    JsonValue back = parseJson(doc.dump());
    const JsonValue *cur = &back;
    for (int i = 0; i < Depth; ++i) {
        ASSERT_TRUE(cur->isArray());
        ASSERT_EQ(cur->size(), 1u);
        cur = &cur->at(std::size_t(0));
    }
    EXPECT_EQ(cur->asUInt(), 42u);
}

TEST(JsonEdge, DeeplyNestedObjectRoundTrips)
{
    constexpr int Depth = 200;
    JsonValue doc(std::string("leaf"));
    for (int i = 0; i < Depth; ++i) {
        JsonValue outer = JsonValue::makeObject();
        outer.set("k", std::move(doc));
        doc = std::move(outer);
    }
    JsonValue back = parseJson(doc.dump(2)); // pretty-printed too
    const JsonValue *cur = &back;
    for (int i = 0; i < Depth; ++i) {
        ASSERT_TRUE(cur->isObject());
        cur = &cur->at("k");
    }
    EXPECT_EQ(cur->asString(), "leaf");
}

/** Every proper prefix of a valid document must raise SimError. */
void
expectAllTruncationsThrow(const std::string &doc)
{
    // Offset 0 (empty input) through n-1: none is a complete document
    // for these corpus entries (no entry has a shorter valid prefix).
    for (std::size_t cut = 0; cut < doc.size(); ++cut) {
        const std::string prefix = doc.substr(0, cut);
        EXPECT_THROW(parseJson(prefix), SimError)
            << "doc=" << doc << " cut=" << cut << " prefix=" << prefix;
    }
    EXPECT_NO_THROW(parseJson(doc)) << doc;
}

TEST(JsonEdge, TruncationAtEveryByteOffsetThrowsCleanly)
{
    // Chosen so no proper prefix is itself valid JSON: documents
    // either open a container/string that a cut leaves unclosed, or
    // are scalars whose every prefix is incomplete ("tru", "-").
    const char *corpus[] = {
        "{\"tick\": 123, \"stats\": {\"a\": [1, 2, 3]}, \"s\": \"x\"}",
        "[[], [null, true, false], {\"k\": -17}]",
        "{\"esc\": \"a\\\"b\\\\c\\n\"}",
        "[1.25e2, -0.5]",
        "true",
        "null",
        "-7",
        "\"string with spaces\"",
    };
    for (const char *doc : corpus)
        expectAllTruncationsThrow(doc);
}

TEST(JsonEdge, TrailingGarbageThrows)
{
    EXPECT_THROW(parseJson("{} extra"), SimError);
    EXPECT_THROW(parseJson("1 2"), SimError);
    EXPECT_THROW(parseJson("[1],"), SimError);
}

} // namespace
} // namespace hsc
