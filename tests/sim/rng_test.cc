/** @file Unit tests for the deterministic PRNG. */

#include <gtest/gtest.h>

#include "sim/rng.hh"

namespace hsc
{
namespace
{

TEST(Rng, DeterministicForSeed)
{
    Rng a(1234), b(1234);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng r(7);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        auto v = r.range(3, 6);
        EXPECT_GE(v, 3u);
        EXPECT_LE(v, 6u);
        saw_lo |= (v == 3);
        saw_hi |= (v == 6);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(99);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

} // namespace
} // namespace hsc
