/** @file Unit tests for the statistics framework. */

#include <gtest/gtest.h>

#include <sstream>

#include "stats/stats.hh"

namespace hsc
{
namespace
{

TEST(Counter, IncrementAndAdd)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    ++c;
    c++;
    c += 10;
    EXPECT_EQ(c.value(), 12u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(Histogram, BucketsAndMoments)
{
    Histogram h(10, 4);
    h.sample(0);
    h.sample(9);
    h.sample(10);
    h.sample(35);
    h.sample(1000); // overflow bucket
    EXPECT_EQ(h.samples(), 5u);
    EXPECT_EQ(h.sum(), 1054u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_DOUBLE_EQ(h.mean(), 1054.0 / 5);
    EXPECT_EQ(h.raw()[0], 2u);
    EXPECT_EQ(h.raw()[1], 1u);
    EXPECT_EQ(h.raw()[3], 1u);
    EXPECT_EQ(h.raw()[4], 1u); // overflow
}

TEST(StatRegistry, LookupAndSum)
{
    StatRegistry reg;
    Counter a, b, other;
    reg.addCounter("dir.probes", &a);
    reg.addCounter("dir.reads", &b);
    reg.addCounter("mem.reads", &other);
    a += 5;
    b += 7;
    other += 100;
    EXPECT_EQ(reg.counter("dir.probes"), 5u);
    EXPECT_EQ(reg.counter("nonexistent"), 0u);
    EXPECT_FALSE(reg.hasCounter("nonexistent"));
    EXPECT_TRUE(reg.hasCounter("dir.reads"));
    EXPECT_EQ(reg.sumCounters("dir."), 12u);
}

TEST(StatRegistry, DuplicateNamePanics)
{
    StatRegistry reg;
    Counter a, b;
    reg.addCounter("x", &a);
    EXPECT_THROW(reg.addCounter("x", &b), std::logic_error);
}

TEST(StatRegistry, SnapshotCapturesAllCounters)
{
    StatRegistry reg;
    Counter a, b;
    reg.addCounter("a", &a);
    reg.addCounter("b", &b);
    a += 3;
    auto snap = reg.snapshot();
    ASSERT_EQ(snap.size(), 2u);
    EXPECT_EQ(snap["a"], 3u);
    EXPECT_EQ(snap["b"], 0u);
}

TEST(StatRegistry, SnapshotDeltaAdvancesBaseline)
{
    StatRegistry reg;
    Counter a, b;
    reg.addCounter("a", &a);
    reg.addCounter("b", &b);

    StatRegistry::Snapshot baseline = reg.snapshot();
    a += 5;
    b += 2;
    auto d1 = reg.snapshotDelta(baseline);
    EXPECT_EQ(d1["a"], 5u);
    EXPECT_EQ(d1["b"], 2u);

    a += 1;
    auto d2 = reg.snapshotDelta(baseline);
    EXPECT_EQ(d2["a"], 1u) << "baseline must advance between deltas";
    EXPECT_EQ(d2["b"], 0u);
}

TEST(StatRegistry, SnapshotDeltaSeesLateRegistrations)
{
    StatRegistry reg;
    Counter a;
    reg.addCounter("a", &a);
    StatRegistry::Snapshot baseline = reg.snapshot();

    Counter late;
    reg.addCounter("late", &late);
    late += 7;
    auto d = reg.snapshotDelta(baseline);
    EXPECT_EQ(d["late"], 7u)
        << "counters registered after the baseline report full value";
    auto d2 = reg.snapshotDelta(baseline);
    EXPECT_EQ(d2["late"], 0u);
}

TEST(StatRegistry, DumpWithPrefixFilters)
{
    StatRegistry reg;
    Counter a, b;
    a += 1;
    b += 2;
    reg.addCounter("dir.reads", &a);
    reg.addCounter("mem.reads", &b);
    std::ostringstream os;
    reg.dump(os, "dir.");
    EXPECT_NE(os.str().find("dir.reads 1"), std::string::npos);
    EXPECT_EQ(os.str().find("mem.reads"), std::string::npos);
}

TEST(StatRegistry, ResetAll)
{
    StatRegistry reg;
    Counter a;
    Histogram h;
    reg.addCounter("a", &a);
    reg.addHistogram("h", &h);
    a += 3;
    h.sample(5);
    reg.resetAll();
    EXPECT_EQ(a.value(), 0u);
    EXPECT_EQ(h.samples(), 0u);
}

TEST(StatRegistry, DumpFormat)
{
    StatRegistry reg;
    Counter a;
    a += 42;
    reg.addCounter("sys.counter", &a);
    std::ostringstream os;
    reg.dump(os);
    EXPECT_NE(os.str().find("sys.counter 42"), std::string::npos);
}

TEST(StatRegistry, CounterNamesSorted)
{
    StatRegistry reg;
    Counter a, b;
    reg.addCounter("zz", &a);
    reg.addCounter("aa", &b);
    auto names = reg.counterNames();
    ASSERT_EQ(names.size(), 2u);
    EXPECT_EQ(names[0], "aa");
    EXPECT_EQ(names[1], "zz");
}

} // namespace
} // namespace hsc
