/**
 * @file
 * Digest pinning for the shared FNV-1a helpers (sim/hash.hh).
 *
 * Every digest in the tree — frame checksums, snapshot integrity,
 * stat/image hashes — reduces to these two mixers, so their outputs
 * are pinned against the published FNV-1a test vectors: an
 * accidental constant or order change would silently invalidate
 * recorded goldens and cross-process checkpoint verification.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "sim/hash.hh"

namespace hsc
{
namespace
{

TEST(FnvHash, MatchesPublishedVectors)
{
    // Canonical FNV-1a 64-bit vectors (draft-eastlake-fnv).
    EXPECT_EQ(fnvBytes("", 0), 0xcbf29ce484222325ull);
    EXPECT_EQ(fnvBytes("a", 1), 0xaf63dc4c8601ec8cull);
    EXPECT_EQ(fnvBytes("foobar", 6), 0x85944171f73967e8ull);
}

TEST(FnvHash, EmptyInputIsOffsetBasis)
{
    EXPECT_EQ(fnvBytes(nullptr, 0), FnvOffsetBasis);
    EXPECT_EQ(FnvOffsetBasis, 0xCBF29CE484222325ull);
    EXPECT_EQ(FnvPrime, 0x100000001B3ull);
}

TEST(FnvHash, BytesChainsAcrossCalls)
{
    std::uint64_t h = fnvBytes("foo", 3);
    EXPECT_EQ(fnvBytes("bar", 3, h), fnvBytes("foobar", 6));
}

TEST(FnvHash, WordMixMatchesDefinition)
{
    std::uint64_t h = FnvOffsetBasis;
    fnvMix(h, 0x123456789abcdef0ull);
    EXPECT_EQ(h, (FnvOffsetBasis ^ 0x123456789abcdef0ull) * FnvPrime);
}

} // namespace
} // namespace hsc
