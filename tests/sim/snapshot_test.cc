/**
 * @file
 * Snapshot envelope and coordinator unit tests: the on-disk envelope
 * must reject truncated/corrupted/foreign files with a structured
 * SimError (category "snapshot"), file IO must be atomic-rename
 * round-trippable, and the SnapshotCoordinator's record/replay/park
 * machinery must preserve op logs exactly and panic on divergence.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/json.hh"
#include "sim/sim_error.hh"
#include "sim/snapshot.hh"

namespace hsc
{
namespace
{

JsonValue
samplePayload()
{
    JsonValue p = JsonValue::makeObject();
    p.set("tick", JsonValue(std::uint64_t(123456789)));
    p.set("name", JsonValue("unit"));
    JsonValue arr = JsonValue::makeArray();
    for (unsigned i = 0; i < 4; ++i)
        arr.push(JsonValue(std::uint64_t(i * 7)));
    p.set("arr", std::move(arr));
    return p;
}

TEST(SnapshotEnvelope, RoundTripsPayload)
{
    JsonValue payload = samplePayload();
    std::string text = wrapSnapshot(payload);
    JsonValue back = openSnapshot(text);
    EXPECT_EQ(back.dump(), payload.dump());
}

TEST(SnapshotEnvelope, TruncationAtEveryOffsetThrows)
{
    std::string text = wrapSnapshot(samplePayload());
    ASSERT_GT(text.size(), 2u);
    ASSERT_EQ(text.back(), '\n');
    // Every cut except "lost only the trailing newline" must fail;
    // the envelope is one object, so no proper prefix parses.
    for (std::size_t cut = 0; cut + 1 < text.size(); ++cut) {
        try {
            openSnapshot(text.substr(0, cut));
            FAIL() << "truncation at offset " << cut << " accepted";
        } catch (const SimError &e) {
            EXPECT_EQ(e.context(), "snapshot") << "offset " << cut;
        }
    }
    EXPECT_NO_THROW(openSnapshot(text.substr(0, text.size() - 1)));
}

TEST(SnapshotEnvelope, SingleByteCorruptionThrows)
{
    std::string text = wrapSnapshot(samplePayload());
    for (std::size_t i = 0; i + 1 < text.size(); ++i) {
        // Whitespace-to-whitespace flips ('\n' -> '\v') are not
        // corruption: JSON ignores inter-token whitespace entirely.
        if (std::isspace(static_cast<unsigned char>(text[i])))
            continue;
        std::string bad = text;
        bad[i] ^= 0x01;
        EXPECT_THROW(openSnapshot(bad), SimError)
            << "offset " << i << " byte '" << text[i] << "'";
    }
}

TEST(SnapshotEnvelope, BadMagicAndVersionAndChecksumThrow)
{
    JsonValue payload = samplePayload();

    JsonValue env = parseJson(wrapSnapshot(payload));
    env.set("magic", JsonValue("not-a-snapshot"));
    EXPECT_THROW(openSnapshot(env.dump()), SimError);

    env = parseJson(wrapSnapshot(payload));
    env.set("version", JsonValue(std::uint64_t(999)));
    EXPECT_THROW(openSnapshot(env.dump()), SimError);

    env = parseJson(wrapSnapshot(payload));
    env.set("checksum", JsonValue(env.at("checksum").asUInt() + 1));
    EXPECT_THROW(openSnapshot(env.dump()), SimError);

    EXPECT_THROW(openSnapshot("[1, 2, 3]"), SimError); // not an object
}

TEST(SnapshotFile, WriteReadRoundTripAndMissingFileThrows)
{
    std::string path = "snapshot_test_io.tmpfile";
    std::string text = wrapSnapshot(samplePayload());
    writeSnapshotFile(path, text);
    EXPECT_EQ(readSnapshotFile(path), text);
    // The atomic-rename staging file must not linger.
    std::FILE *tmp = std::fopen((path + ".tmp").c_str(), "rb");
    EXPECT_EQ(tmp, nullptr);
    if (tmp)
        std::fclose(tmp);
    std::remove(path.c_str());
    EXPECT_THROW(readSnapshotFile(path), SimError);
}

TEST(SnapshotCoordinator, RecordSerializeReplayRoundTrip)
{
    SnapshotCoordinator rec;
    rec.record(0, OpKind::CpuLoad, {0xdeadbeefull});
    rec.record(0, OpKind::CpuStore, {});
    rec.record(7, OpKind::CpuAmo, {41});
    EXPECT_EQ(rec.assignLaunchOrdinal(0), 0u);
    EXPECT_EQ(rec.assignLaunchOrdinal(7), 1u);
    rec.record(waveAgentKey(0, 2), OpKind::GpuVload, {1, 2, 3, 4});
    EXPECT_EQ(rec.loggedOps(), 4u);

    JsonValue out = JsonValue::makeObject();
    rec.serializeLogs(out);

    SnapshotCoordinator rep;
    rep.beginReplay(out);
    EXPECT_TRUE(rep.replaying());

    const OpRecord *r = rep.replayNext(0, OpKind::CpuLoad);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->word(0), 0xdeadbeefull);
    ASSERT_NE(rep.replayNext(0, OpKind::CpuStore), nullptr);
    // Log exhausted: the next op must park, not replay.
    EXPECT_EQ(rep.replayNext(0, OpKind::CpuLoad), nullptr);

    r = rep.replayNext(7, OpKind::CpuAmo);
    ASSERT_NE(r, nullptr);
    EXPECT_EQ(r->word(0), 41u);

    // Launch ordinals are re-derived per agent, in each agent's own
    // launch order, regardless of cross-agent replay order.
    EXPECT_EQ(rep.takeLaunchOrdinal(7), 1u);
    EXPECT_EQ(rep.takeLaunchOrdinal(0), 0u);

    r = rep.replayNext(waveAgentKey(0, 2), OpKind::GpuVload);
    ASSERT_NE(r, nullptr);
    ASSERT_EQ(r->words.size(), 4u);
    EXPECT_EQ(r->word(3), 4u);

    rep.endReplay();
    EXPECT_FALSE(rep.replaying());
}

TEST(SnapshotCoordinator, ReplayKindDivergencePanics)
{
    SnapshotCoordinator rec;
    rec.record(3, OpKind::CpuLoad, {1});
    JsonValue out = JsonValue::makeObject();
    rec.serializeLogs(out);

    SnapshotCoordinator rep;
    rep.beginReplay(out);
    // The recorded op is a load; asking for a store means the replay
    // diverged from the recorded program — a protocol-level panic.
    EXPECT_THROW(rep.replayNext(3, OpKind::CpuStore), std::logic_error);
}

TEST(SnapshotCoordinator, EndReplayWithUnconsumedLogPanics)
{
    SnapshotCoordinator rec;
    rec.record(1, OpKind::CpuLoad, {9});
    JsonValue out = JsonValue::makeObject();
    rec.serializeLogs(out);

    SnapshotCoordinator rep;
    rep.beginReplay(out);
    EXPECT_THROW(rep.endReplay(), std::logic_error);
}

TEST(SnapshotCoordinator, ReleaseGatesResumesInAgentKeyOrder)
{
    SnapshotCoordinator snap;
    snap.beginDrain();
    EXPECT_TRUE(snap.draining());

    std::vector<std::uint64_t> order;
    snap.park(42, [&] { order.push_back(42); });
    snap.park(7, [&] { order.push_back(7); });
    snap.park(waveAgentKey(0, 1),
              [&] { order.push_back(waveAgentKey(0, 1)); });
    EXPECT_EQ(snap.parkedCount(), 3u);

    EventQueue eq;
    snap.endDrain();
    snap.releaseGates(eq);
    EXPECT_EQ(snap.parkedCount(), 0u);
    EXPECT_TRUE(order.empty()); // resumes are events, not immediate
    eq.runUntil([&] { return order.size() == 3; });
    ASSERT_EQ(order.size(), 3u);
    EXPECT_EQ(order[0], 7u);
    EXPECT_EQ(order[1], 42u);
    EXPECT_EQ(order[2], waveAgentKey(0, 1));
}

} // namespace
} // namespace hsc
