/** @file Unit tests for clock domains. */

#include <gtest/gtest.h>

#include "sim/clocked.hh"

namespace hsc
{
namespace
{

TEST(ClockDomain, FromMHz)
{
    // 3.5 GHz -> 285 ps period (integer division).
    EXPECT_EQ(ClockDomain::fromMHz(3500).periodTicks(), 285u);
    EXPECT_EQ(ClockDomain::fromMHz(1100).periodTicks(), 909u);
    EXPECT_EQ(ClockDomain::fromMHz(1000).periodTicks(), 1000u);
}

TEST(ClockDomain, CycleTickConversions)
{
    ClockDomain d(100);
    EXPECT_EQ(d.toTicks(5), 500u);
    EXPECT_EQ(d.toCycles(550), 5u);
}

TEST(ClockDomain, ClockEdgeRoundsUp)
{
    ClockDomain d(100);
    EXPECT_EQ(d.clockEdge(0), 0u);
    EXPECT_EQ(d.clockEdge(1), 100u);
    EXPECT_EQ(d.clockEdge(100), 100u);
    EXPECT_EQ(d.clockEdge(101, 2), 400u);
}

TEST(Clocked, SchedulesOnEdges)
{
    EventQueue eq;
    Clocked obj("obj", eq, ClockDomain(100));
    Tick fired = 0;
    eq.schedule(42, [&] {
        obj.scheduleCycles(3, [&] { fired = eq.curTick(); });
    });
    eq.run();
    // Edge after 42 is 100; +3 cycles = 400.
    EXPECT_EQ(fired, 400u);
}

TEST(Clocked, CurCycleTracksDomain)
{
    EventQueue eq;
    Clocked obj("obj", eq, ClockDomain(250));
    eq.schedule(1000, [&] { EXPECT_EQ(obj.curCycle(), 4u); });
    eq.run();
}

} // namespace
} // namespace hsc
