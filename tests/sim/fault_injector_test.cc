/**
 * @file
 * FaultInjector and MessageBuffer robustness tests: deterministic
 * delivery schedules, FIFO preservation under jitter, dead links, and
 * the fail-fast consumer check.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mem/message_buffer.hh"
#include "sim/fault_injector.hh"
#include "sim/sim_error.hh"

namespace hsc
{
namespace
{

FaultConfig
jitterConfig(std::uint64_t seed, Cycles max_jitter)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = seed;
    fc.maxJitter = max_jitter;
    return fc;
}

TEST(FaultInjector, SameSeedSameDelaySequence)
{
    FaultInjector a(jitterConfig(42, 16), 10);
    FaultInjector b(jitterConfig(42, 16), 10);
    for (int i = 0; i < 200; ++i)
        EXPECT_EQ(a.extraDelay(0), b.extraDelay(0));
}

TEST(FaultInjector, PerLinkStreamsAreIndependent)
{
    // Draining one link's stream must not perturb another link's
    // schedule: the k-th message on a link sees the same delay no
    // matter how much traffic other links carried.
    FaultInjector a(jitterConfig(7, 32), 10);
    FaultInjector b(jitterConfig(7, 32), 10);
    for (int i = 0; i < 100; ++i)
        (void)a.extraDelay(1); // extra traffic on link 1 of a
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(a.extraDelay(2), b.extraDelay(2));
}

TEST(FaultInjector, DifferentSeedsDiffer)
{
    FaultInjector a(jitterConfig(1, 1000), 1);
    FaultInjector b(jitterConfig(2, 1000), 1);
    bool any_diff = false;
    for (int i = 0; i < 50 && !any_diff; ++i)
        any_diff = a.extraDelay(0) != b.extraDelay(0);
    EXPECT_TRUE(any_diff);
}

TEST(FaultInjector, DisabledInjectsNothing)
{
    FaultConfig fc;
    fc.maxJitter = 100; // ignored: enabled is false
    FaultInjector fi(fc, 10);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(fi.extraDelay(0), 0u);
}

TEST(FaultInjector, JitterBoundedAndCycleScaled)
{
    const Tick period = 10;
    FaultInjector fi(jitterConfig(3, 8), period);
    for (int i = 0; i < 500; ++i) {
        Tick d = fi.extraDelay(0);
        EXPECT_LE(d, 8u * period);
        EXPECT_EQ(d % period, 0u);
    }
}

TEST(FaultInjector, CertainSpikeAlwaysFires)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.spikePercent = 100;
    fc.spikeCycles = 50;
    FaultInjector fi(fc, 10);
    for (int i = 0; i < 20; ++i)
        EXPECT_EQ(fi.extraDelay(0), 500u);
}

TEST(FaultInjector, WireFateSameSeedSameSchedule)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = 11;
    fc.maxJitter = 8;
    fc.dropPer10k = 500;
    fc.dupPer10k = 300;
    fc.corruptPer10k = 100;
    FaultInjector a(fc, 10);
    FaultInjector b(fc, 10);
    for (int i = 0; i < 500; ++i) {
        WireFate fa = a.wireFate(4);
        WireFate fb = b.wireFate(4);
        EXPECT_EQ(fa.extraDelay, fb.extraDelay);
        EXPECT_EQ(fa.drop, fb.drop);
        EXPECT_EQ(fa.duplicate, fb.duplicate);
        EXPECT_EQ(fa.dupExtraDelay, fb.dupExtraDelay);
        EXPECT_EQ(fa.corrupt, fb.corrupt);
        EXPECT_EQ(fa.corruptByte, fb.corruptByte);
    }
}

TEST(FaultInjector, WireFateRatesRoughlyMatchConfig)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = 21;
    fc.dropPer10k = 1000; // 10%
    FaultInjector fi(fc, 10);
    unsigned drops = 0;
    for (int i = 0; i < 10000; ++i)
        drops += fi.wireFate(0).drop ? 1 : 0;
    EXPECT_GT(drops, 800u);
    EXPECT_LT(drops, 1200u);
}

TEST(FaultInjector, WireFateStreamsIndependentAcrossLinks)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = 31;
    fc.maxJitter = 16;
    fc.dropPer10k = 200;
    FaultInjector a(fc, 10);
    FaultInjector b(fc, 10);
    for (int i = 0; i < 300; ++i)
        (void)a.wireFate(7); // extra traffic on link 7 of a
    for (int i = 0; i < 100; ++i) {
        WireFate fa = a.wireFate(9);
        WireFate fb = b.wireFate(9);
        EXPECT_EQ(fa.extraDelay, fb.extraDelay);
        EXPECT_EQ(fa.drop, fb.drop);
    }
}

TEST(FaultInjector, WireFateDisabledIsClean)
{
    FaultConfig fc;
    fc.dropPer10k = 10000; // ignored: enabled is false
    FaultInjector fi(fc, 10);
    for (int i = 0; i < 20; ++i) {
        WireFate f = fi.wireFate(0);
        EXPECT_EQ(f.extraDelay, 0u);
        EXPECT_FALSE(f.drop);
        EXPECT_FALSE(f.duplicate);
        EXPECT_FALSE(f.corrupt);
    }
}

TEST(FaultInjector, DeadLinkMatchesSubstring)
{
    FaultConfig fc;
    fc.deadLinks = {".fromDir."};
    FaultInjector fi(fc, 10);
    EXPECT_TRUE(fi.isDead("sys.fromDir.b0c3"));
    EXPECT_FALSE(fi.isDead("sys.toDir.b0c3"));
    EXPECT_TRUE(fc.any()); // dead links alone activate the injector
}

TEST(MessageBufferFault, JitterPreservesFifoOrder)
{
    EventQueue eq;
    FaultInjector fi(jitterConfig(99, 64), 10);
    MessageBuffer link("jittery", eq, 100);
    link.attachFaultInjector(&fi);

    std::vector<Addr> order;
    std::vector<Tick> arrivals;
    link.setConsumer([&](Msg &&m) {
        order.push_back(m.addr);
        arrivals.push_back(eq.curTick());
    });
    eq.schedule(0, [&] {
        for (Addr a = 0; a < 64; ++a) {
            Msg m;
            m.addr = a * 64;
            link.enqueue(m);
        }
    });
    eq.run();

    ASSERT_EQ(order.size(), 64u);
    for (Addr a = 0; a < 64; ++a)
        EXPECT_EQ(order[a], a * 64);
    for (std::size_t i = 1; i < arrivals.size(); ++i)
        EXPECT_GE(arrivals[i], arrivals[i - 1]);
    // Jitter only ever adds latency.
    for (Tick t : arrivals)
        EXPECT_GE(t, 100u);
}

TEST(MessageBufferFault, SameSeedSameDeliverySchedule)
{
    auto deliver = [](std::uint64_t seed) {
        EventQueue eq;
        FaultInjector fi(jitterConfig(seed, 32), 10);
        MessageBuffer link("sys.toDir.b0c0", eq, 50);
        link.attachFaultInjector(&fi);
        std::vector<Tick> arrivals;
        link.setConsumer([&](Msg &&) { arrivals.push_back(eq.curTick()); });
        eq.schedule(0, [&] {
            for (int i = 0; i < 40; ++i)
                link.enqueue(Msg{});
        });
        eq.run();
        return arrivals;
    };
    EXPECT_EQ(deliver(5), deliver(5));
    EXPECT_NE(deliver(5), deliver(6));
}

TEST(MessageBufferFault, ScheduleKeyedByLinkIdNotName)
{
    // The fault stream is keyed by (seed, link id): renaming a link
    // must not change its schedule, and two links with different ids
    // draw different schedules even when identically named.
    auto deliver = [](const std::string &name, unsigned link_id) {
        EventQueue eq;
        FaultInjector fi(jitterConfig(9, 32), 10);
        MessageBuffer link(name, eq, 50, link_id);
        link.attachFaultInjector(&fi);
        std::vector<Tick> arrivals;
        link.setConsumer([&](Msg &&) { arrivals.push_back(eq.curTick()); });
        eq.schedule(0, [&] {
            for (int i = 0; i < 40; ++i)
                link.enqueue(Msg{});
        });
        eq.run();
        return arrivals;
    };
    EXPECT_EQ(deliver("sys.toDir.b0c0", 3), deliver("renamed.link", 3));
    EXPECT_NE(deliver("sys.toDir.b0c0", 3), deliver("sys.toDir.b0c0", 4));
}

TEST(MessageBufferFault, DeadLinkDropsButTracksDepth)
{
    EventQueue eq;
    FaultConfig fc;
    fc.deadLinks = {"dead"};
    FaultInjector fi(fc, 10);
    MessageBuffer link("sys.dead.link", eq, 10);
    link.attachFaultInjector(&fi);
    unsigned delivered = 0;
    link.setConsumer([&](Msg &&) { ++delivered; });
    eq.schedule(0, [&] {
        link.enqueue(Msg{});
        link.enqueue(Msg{});
    });
    eq.run();
    EXPECT_EQ(delivered, 0u);
    EXPECT_EQ(link.queueDepth(), 2u);
    EXPECT_EQ(link.oldestPendingAge(eq.curTick() + 500), 500u);
    LinkInfo li = link.linkInfo(eq.curTick());
    EXPECT_EQ(li.name, "sys.dead.link");
    EXPECT_EQ(li.depth, 2u);
}

TEST(MessageBufferFault, EnqueueWithoutConsumerThrows)
{
    EventQueue eq;
    MessageBuffer link("orphan", eq, 10);
    try {
        link.enqueue(Msg{});
        FAIL() << "expected SimError";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("orphan"), std::string::npos)
            << e.what();
        EXPECT_NE(std::string(e.what()).find("no consumer"),
                  std::string::npos)
            << e.what();
    }
}

TEST(MessageBufferFault, PendingDrainsAfterDelivery)
{
    EventQueue eq;
    MessageBuffer link("l", eq, 10);
    link.setConsumer([](Msg &&) {});
    eq.schedule(0, [&] { link.enqueue(Msg{}); });
    eq.run();
    EXPECT_EQ(link.queueDepth(), 0u);
    EXPECT_EQ(link.oldestPendingAge(eq.curTick()), 0u);
}

} // namespace
} // namespace hsc
