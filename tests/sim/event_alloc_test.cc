/**
 * @file
 * Asserts the event kernel's central host-performance invariant
 * (DESIGN.md §9): once warmed, scheduling and running events performs
 * no heap allocation at all — callbacks live inline in the queue
 * (InlineFunction rejects oversized captures at compile time) and
 * bucket storage is retained across horizon laps.
 *
 * The global operator new/delete overrides count every allocation in
 * the process, which is why this test lives in its own binary.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <new>

#include "sim/event_queue.hh"

namespace
{
std::uint64_t g_allocs = 0;
}

void *
operator new(std::size_t n)
{
    ++g_allocs;
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

void *
operator new(std::size_t n, std::align_val_t al)
{
    ++g_allocs;
    std::size_t a = std::size_t(al);
    if (void *p = std::aligned_alloc(a, (n + a - 1) / a * a))
        return p;
    throw std::bad_alloc();
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

namespace hsc
{
namespace
{

/**
 * A self-rescheduling event: copies itself into the queue each hop.
 * The capture is a few pointers, far inside the inline budget.
 */
struct Hopper
{
    EventQueue *eq;
    int *remaining;
    Tick stride;
    EventPriority prio;

    void
    operator()() const
    {
        if (--*remaining > 0)
            eq->schedule(eq->curTick() + stride, *this, prio,
                         /*progress=*/true);
    }
};

/** Strides in the modelled-latency range (L2 hit to DRAM), each
 *  longer than the 512-tick bucket span so a chain never revisits a
 *  bucket before it resets.  One event per chain is in flight at a
 *  time, so even a pathological collision puts at most four entries
 *  in one bucket — within the inline bucket capacity, making the
 *  zero-allocation assertion strict.  (Sub-bucket strides — e.g. the
 *  285-tick CPU cycle — legitimately stack several same-chain events
 *  per bucket and may spill it to its retained heap block; that path
 *  is bounded by the ColdQueue test below instead.) */
constexpr Tick Strides[] = {600, 1300, 2900, 42750};

void
runChains(EventQueue &eq, int events)
{
    int remaining = events;
    int i = 0;
    for (Tick s : Strides) {
        auto prio = EventPriority(i++ % 3 - 1);
        eq.schedule(eq.curTick() + s, Hopper{&eq, &remaining, s, prio},
                    prio);
    }
    eq.run();
}

TEST(EventKernel, SteadyStateSchedulingIsAllocationFree)
{
    EventQueue eq;
    // Warm-up: first laps may spill deep buckets to their retained
    // heap blocks and grow the ring's internals.
    runChains(eq, 20000);

    std::uint64_t before = g_allocs;
    runChains(eq, 20000);
    std::uint64_t during = g_allocs - before;

    EXPECT_EQ(during, 0u)
        << during << " heap allocations in 20000 steady-state events";
    EXPECT_GE(eq.numExecuted(), 40000u);
}

TEST(EventKernel, ColdQueueAllocatesOnlyBucketSpills)
{
    // Sub-bucket strides (the CPU/GPU cycle times) stack several
    // same-chain events per bucket, so buckets spill to heap blocks —
    // but those blocks are retained across horizon laps, so the total
    // is bounded by a few allocations per ring bucket plus the ring
    // itself, never by the event count.
    std::uint64_t before = g_allocs;
    {
        EventQueue eq;
        int remaining = 40000;
        for (Tick s : {Tick(60), Tick(285), Tick(909), Tick(42750)})
            eq.schedule(s, Hopper{&eq, &remaining, s,
                                  EventPriority::Default});
        eq.run();
    }
    std::uint64_t during = g_allocs - before;
    EXPECT_LT(during, 4096u)
        << during << " allocations for a cold 40000-event run";
}

} // namespace
} // namespace hsc
