/**
 * @file
 * Property tests of the calendar event queue against a reference
 * model, plus directed tests of the calendar-specific edge cases the
 * unit tests cannot reach: events beyond the ring horizon (overflow
 * heap), horizon wraparound, the MaxTick run bound, and scheduling
 * back into the currently-executing tick from inside a callback.
 *
 * The reference model is a sorted multiset keyed exactly like the
 * kernel — (tick, priority, insertion sequence) — so any divergence
 * in execution order or count is a kernel bug, not a model artifact.
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace hsc
{
namespace
{

/** (tick, prio, seq) key: the kernel's deterministic total order. */
using Key = std::tuple<Tick, int, std::uint64_t>;

/**
 * Drive an EventQueue and a reference model with the same random
 * schedule and check that each firing event is the (tick, prio, seq)
 * minimum of the currently pending set.  Callbacks randomly schedule
 * follow-up events, so insertion happens both from outside run() and
 * from inside firing events — including same-tick spawns, which must
 * come out ahead of everything still pending but (correctly) after
 * same-tick events that already fired, which is why the model is a
 * live pending set rather than a pre-sorted global order.
 */
void
runRandomSchedule(std::uint64_t seed, unsigned initial, unsigned maxSpawn,
                  Tick maxDelta)
{
    EventQueue eq;
    std::set<Key> pending;
    std::uint64_t modelSeq = 0;
    std::uint64_t fired = 0;
    unsigned mismatches = 0;
    Rng rng(seed);

    // The queue assigns sequence numbers in schedule() call order, so
    // mirroring every schedule with a model insertion keeps the two
    // keyspaces identical.
    unsigned budget = maxSpawn;
    std::function<void(Tick, EventPriority)> scheduleOne =
        [&](Tick when, EventPriority prio) {
            Key key{when, int(prio), modelSeq++};
            pending.insert(key);
            eq.schedule(
                when,
                [&, key] {
                    ++fired;
                    if (pending.empty() || *pending.begin() != key)
                        ++mismatches;
                    pending.erase(key);
                    EXPECT_EQ(eq.curTick(), std::get<0>(key));
                    // Occasionally fan out new work from inside the
                    // firing callback, including same-tick events.
                    if (budget > 0 && rng.below(4) == 0) {
                        --budget;
                        Tick d = rng.below(maxDelta);
                        auto p = EventPriority(int(rng.below(3)) - 1);
                        scheduleOne(eq.curTick() + d, p);
                    }
                },
                prio);
        };

    for (unsigned i = 0; i < initial; ++i) {
        Tick when = rng.below(maxDelta);
        scheduleOne(when, EventPriority(int(rng.below(3)) - 1));
    }

    std::uint64_t n = eq.run();
    EXPECT_EQ(mismatches, 0u) << "out-of-order events (seed " << seed
                              << ")";
    EXPECT_EQ(n, fired);
    EXPECT_EQ(fired, modelSeq);
    EXPECT_TRUE(pending.empty());
    EXPECT_TRUE(eq.empty());
}

TEST(EventQueueProperty, MatchesReferenceModelNearFuture)
{
    // Deltas well inside one ring lap: exercises bucket sorting and
    // same-bucket/same-tick ordering.
    for (std::uint64_t seed = 1; seed <= 8; ++seed)
        runRandomSchedule(seed, 200, 200, 1 << 12);
}

TEST(EventQueueProperty, MatchesReferenceModelAcrossHorizon)
{
    // Deltas up to 8 ring horizons: events constantly migrate between
    // the overflow heap and the ring as the horizon advances.
    for (std::uint64_t seed = 11; seed <= 18; ++seed)
        runRandomSchedule(seed, 150, 150, Tick(1) << 22);
}

TEST(EventQueueProperty, MatchesReferenceModelDenseTicks)
{
    // Tiny deltas: many events collide on the same tick, so ordering
    // is dominated by (prio, seq) tie-breaking.
    for (std::uint64_t seed = 21; seed <= 28; ++seed)
        runRandomSchedule(seed, 200, 200, 8);
}

TEST(EventQueueCalendar, FarFutureEventSurvivesOverflow)
{
    EventQueue eq;
    std::vector<int> order;
    // Far beyond the ring horizon (512 Ki ticks): lives in the
    // overflow heap until the horizon reaches it.
    eq.schedule(Tick(1) << 40, [&] { order.push_back(2); });
    eq.schedule(100, [&] { order.push_back(1); });
    EXPECT_EQ(eq.run(), 2u);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(eq.curTick(), Tick(1) << 40);
}

TEST(EventQueueCalendar, ChainAcrossManyHorizonLaps)
{
    // A self-rescheduling chain whose stride exceeds the bucket span
    // forces the ring to wrap repeatedly while reusing bucket storage.
    EventQueue eq;
    constexpr Tick Stride = 700;  // > one 512-tick bucket
    constexpr int Hops = 4000;    // ~5.3 ring laps
    int hops = 0;
    std::function<void()> hop = [&] {
        if (++hops < Hops)
            eq.scheduleIn(Stride, [&] { hop(); });
    };
    eq.schedule(0, [&] { hop(); });
    EXPECT_EQ(eq.run(), std::uint64_t(Hops));
    EXPECT_EQ(eq.curTick(), Tick(Hops - 1) * Stride);
}

TEST(EventQueueCalendar, RunHonoursLimitAcrossOverflow)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(10, [&] { ++fired; });
    eq.schedule(Tick(1) << 30, [&] { ++fired; });
    // Bound short of the far event: it must stay queued, and time
    // stays at the last executed event (the kernel only fast-forwards
    // to the limit when the queue drains).
    EXPECT_EQ(eq.run(1 << 20), 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(eq.empty());
    EXPECT_EQ(eq.curTick(), 10u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueueCalendar, EventAtMaxTickRuns)
{
    EventQueue eq;
    bool ran = false;
    eq.schedule(MaxTick, [&] { ran = true; });
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_TRUE(ran);
    EXPECT_EQ(eq.curTick(), MaxTick);
}

TEST(EventQueueCalendar, ScheduleIntoCurrentTickFromCallback)
{
    // A firing event may schedule more work at the *current* tick —
    // the new event lands behind the consumed prefix of the same
    // bucket and must still fire this tick, after same-tick events
    // already queued, in seq order.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(512, [&] {
        order.push_back(0);
        eq.schedule(512, [&] { order.push_back(2); });
        eq.schedule(512, [&] { order.push_back(3); },
                    EventPriority::Late);
    });
    eq.schedule(512, [&] { order.push_back(1); });
    EXPECT_EQ(eq.run(), 4u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 512u);
}

TEST(EventQueueCalendar, BoundedRunLeavesCursorBeforeLaterSchedules)
{
    // Regression: run(limit) with the next event far past the limit
    // used to park the bucket cursor at that event's bucket.  A
    // subsequent schedule() between the limit and the parked cursor
    // then looked like the past (unsigned wrap), fell into the
    // overflow heap, and stayed unreachable until the ring drained —
    // after which curTick warped backwards.  The cursor must never
    // pass the run bound.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(0); });
    eq.schedule(50000, [&] { order.push_back(2); }); // in-ring, far
    EXPECT_EQ(eq.run(511), 1u);
    EXPECT_EQ(eq.curTick(), 100u); // no fast-forward: queue not empty
    eq.schedule(600, [&] { order.push_back(1); }); // behind old cursor
    EXPECT_EQ(eq.run(1023), 1u);
    EXPECT_EQ(eq.curTick(), 600u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(eq.curTick(), 50000u);
}

TEST(EventQueueCalendar, BoundedRunWithOnlyOverflowPendingStaysPut)
{
    // Same trap via the other path: when the ring is empty and the
    // only pending event lives in the overflow heap, the cursor's
    // horizon jump must clamp to the run bound instead of leaping to
    // the overflow event's bucket.
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(100, [&] { order.push_back(0); });
    eq.schedule(Tick(1) << 20, [&] { order.push_back(2); }); // overflow
    EXPECT_EQ(eq.run(511), 1u);
    EXPECT_EQ(eq.curTick(), 100u);
    eq.schedule(600, [&] { order.push_back(1); });
    EXPECT_EQ(eq.run(1023), 1u);
    EXPECT_EQ(eq.curTick(), 600u);
    EXPECT_EQ(eq.run(), 1u);
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
}

TEST(EventQueueCalendar, RepeatedBoundedRunsMatchSingleRun)
{
    // Windowed execution — run(w-1), run(2w-1), ... as the PDES
    // driver does — must fire the same events in the same order as
    // one unbounded run, whatever the window size.
    std::vector<std::pair<Tick, int>> ref;
    {
        EventQueue eq;
        for (int i = 0; i < 64; ++i)
            eq.schedule(Tick(i) * 397 % 9001, [&, i] {
                ref.emplace_back(eq.curTick(), i);
            });
        EXPECT_EQ(eq.run(), 64u);
    }
    for (Tick w : {64u, 512u, 2850u, 4096u}) {
        EventQueue eq;
        std::vector<std::pair<Tick, int>> got;
        for (int i = 0; i < 64; ++i)
            eq.schedule(Tick(i) * 397 % 9001, [&, i] {
                got.emplace_back(eq.curTick(), i);
            });
        std::uint64_t total = 0;
        for (Tick end = w - 1; got.size() < 64; end += w)
            total += eq.run(end);
        EXPECT_EQ(total, 64u) << "window " << w;
        EXPECT_EQ(got, ref) << "window " << w;
    }
}

TEST(EventQueueCalendar, PrioritiesOrderWithinTickAcrossBuckets)
{
    // Early/Default/Late must order within a tick even when the tick
    // arrives via overflow migration.
    EventQueue eq;
    std::vector<int> order;
    const Tick far = Tick(3) << 21; // beyond the horizon
    eq.schedule(far, [&] { order.push_back(1); }, EventPriority::Late);
    eq.schedule(far, [&] { order.push_back(0); }, EventPriority::Early);
    eq.schedule(5, [&] { order.push_back(-1); });
    EXPECT_EQ(eq.run(), 3u);
    EXPECT_EQ(order, (std::vector<int>{-1, 0, 1}));
}

} // namespace
} // namespace hsc
