/**
 * @file
 * CoherenceChecker unit tests, driven directly (no protocol): legal
 * event tables, SWMR tracking, shadow-image data checking, trace
 * rings, and the violation cap.
 */

#include <gtest/gtest.h>

#include "sim/coherence_checker.hh"

namespace hsc
{
namespace
{

constexpr Addr kBlk = 0x4000;

struct CheckerFixture : ::testing::Test
{
    EventQueue eq;
    CoherenceChecker chk{"chk", eq};
};

DataBlock
patternBlock(std::uint8_t base)
{
    DataBlock b;
    for (unsigned i = 0; i < BlockSizeBytes; ++i)
        b.raw()[i] = std::uint8_t(base + i);
    return b;
}

TEST_F(CheckerFixture, LegalEventsPass)
{
    EXPECT_TRUE(chk.noteEvent(CheckerCtrl::CorePair, "l2", kBlk, "TBE",
                              "SysResp"));
    EXPECT_TRUE(chk.noteEvent(CheckerCtrl::CorePair, "l2", kBlk, "V",
                              "WBAck"));
    EXPECT_TRUE(chk.noteEvent(CheckerCtrl::CorePair, "l2", kBlk, "I",
                              "PrbInv"));
    EXPECT_TRUE(chk.noteEvent(CheckerCtrl::Tcc, "tcc", kBlk, "A",
                              "AtomicResp"));
    EXPECT_TRUE(chk.noteEvent(CheckerCtrl::Dma, "dma", kBlk, "Issued",
                              "DmaResp"));
    EXPECT_TRUE(chk.noteEvent(CheckerCtrl::Directory, "dir", kBlk, "O",
                              "VicDirty"));
    EXPECT_FALSE(chk.violated());
    EXPECT_EQ(chk.transitionsChecked(), 6u);
}

TEST_F(CheckerFixture, IllegalEventsAreFlaggedNotThrown)
{
    // A WBAck with no victim outstanding has no defined transition.
    EXPECT_FALSE(chk.noteEvent(CheckerCtrl::CorePair, "system.corepair0",
                               kBlk, "TBE", "WBAck"));
    ASSERT_TRUE(chk.violated());
    const ViolationReport &r = chk.violations().front();
    EXPECT_EQ(r.kind, "illegal-event");
    EXPECT_EQ(r.addr, kBlk);
    EXPECT_NE(r.detail.find("system.corepair0"), std::string::npos);
    EXPECT_NE(r.detail.find("WBAck"), std::string::npos);
    EXPECT_NE(chk.brief().find("illegal-event"), std::string::npos);
}

TEST_F(CheckerFixture, DirtyVictimFromCleanDirectoryIsIllegal)
{
    EXPECT_FALSE(chk.noteEvent(CheckerCtrl::Directory, "dir", kBlk, "S",
                               "VicDirty"));
    EXPECT_EQ(chk.violations().front().kind, "illegal-event");
}

TEST_F(CheckerFixture, SwmrSecondWriterIsViolation)
{
    using Perm = CoherenceChecker::Perm;
    chk.notePermission("l2a", kBlk, Perm::Write, "M");
    EXPECT_FALSE(chk.violated());
    chk.notePermission("l2b", kBlk, Perm::Write, "M");
    ASSERT_TRUE(chk.violated());
    const ViolationReport &r = chk.violations().front();
    EXPECT_EQ(r.kind, "swmr");
    EXPECT_EQ(r.addr, kBlk);
    EXPECT_NE(r.detail.find("l2a"), std::string::npos);
    EXPECT_NE(r.detail.find("l2b"), std::string::npos);
    EXPECT_FALSE(r.history.empty());
}

TEST_F(CheckerFixture, SwmrHandoffAndReadersAreFine)
{
    using Perm = CoherenceChecker::Perm;
    chk.notePermission("l2a", kBlk, Perm::Write, "M");
    chk.notePermission("l2a", kBlk, Perm::None, "I");   // invalidated
    chk.notePermission("l2b", kBlk, Perm::Write, "M");  // clean handoff
    chk.notePermission("l2b", kBlk, Perm::Read, "O");   // downgrade
    chk.notePermission("l2a", kBlk, Perm::Read, "S");
    chk.notePermission("l2c", kBlk, Perm::Read, "S");
    EXPECT_FALSE(chk.violated());
    // Distinct blocks never interact.
    chk.notePermission("l2a", kBlk, Perm::Write, "M");
    chk.notePermission("l2b", kBlk + BlockSizeBytes, Perm::Write, "M");
    EXPECT_FALSE(chk.violated());
}

TEST_F(CheckerFixture, StoreWithoutPermissionIsViolation)
{
    chk.noteStoreApplied("l2a", kBlk, "M", true);
    EXPECT_FALSE(chk.violated());
    chk.noteStoreApplied("l2b", kBlk, "S", false);
    ASSERT_TRUE(chk.violated());
    EXPECT_EQ(chk.violations().front().kind, "no-write-permission");
}

TEST_F(CheckerFixture, CleanDataSeedsThenChecksShadow)
{
    DataBlock d = patternBlock(0x10);
    // First observation seeds the unknown shadow bytes.
    chk.noteCleanData("dir", kBlk, d, "backing response");
    EXPECT_FALSE(chk.violated());
    // Matching data is fine; one corrupt byte is a violation.
    chk.noteCleanData("l2", kBlk, d, "clean victim");
    EXPECT_FALSE(chk.violated());
    d.raw()[5] ^= 0xFF;
    chk.noteCleanData("l2", kBlk, d, "clean victim");
    ASSERT_TRUE(chk.violated());
    const ViolationReport &r = chk.violations().front();
    EXPECT_EQ(r.kind, "stale-data");
    EXPECT_NE(r.detail.find("byte 5"), std::string::npos);
}

TEST_F(CheckerFixture, SystemWriteUpdatesOnlyMaskedBytes)
{
    DataBlock first = patternBlock(0x20);
    chk.noteCleanData("dir", kBlk, first, "backing response");

    DataBlock store;
    store.set<std::uint64_t>(8, 0xDEAD'BEEF'0BAD'F00Dull);
    chk.noteSystemWrite("dir", kBlk, store, makeMask(8, 8));

    // Clean data must now show the stored bytes...
    DataBlock merged = first;
    merged.merge(store, makeMask(8, 8));
    chk.noteCleanData("l2", kBlk, merged, "clean probe forward");
    EXPECT_FALSE(chk.violated());
    // ...and the pre-store image has become stale.
    chk.noteCleanData("l2", kBlk, first, "clean probe forward");
    ASSERT_TRUE(chk.violated());
    EXPECT_EQ(chk.violations().front().kind, "stale-data");
    EXPECT_EQ(chk.blocksShadowed(), 1u);
}

TEST_F(CheckerFixture, ViolationCarriesPerBlockHistory)
{
    for (int i = 0; i < 30; ++i)
        chk.noteEvent(CheckerCtrl::CorePair, "l2", kBlk, "I", "PrbInv");
    chk.noteEvent(CheckerCtrl::CorePair, "l2", kBlk, "TBE", "WBAck");
    ASSERT_TRUE(chk.violated());
    const auto &hist = chk.violations().front().history;
    // Bounded ring: recent events only, newest (the bad one) last.
    ASSERT_FALSE(hist.empty());
    EXPECT_LE(hist.size(), 16u);
    EXPECT_EQ(hist.back().event, "WBAck");
}

TEST_F(CheckerFixture, TraceTailIsOldestFirstAndBounded)
{
    EventQueue q;
    CoherenceChecker small("small", q, /*global_ring=*/8);
    for (int i = 0; i < 20; ++i) {
        small.noteEvent(CheckerCtrl::Directory, "dir",
                        Addr(i) * BlockSizeBytes, "U", "RdBlk");
    }
    std::vector<CheckerEvent> tail = small.traceTail();
    ASSERT_EQ(tail.size(), 8u);
    // Events 12..19 survive, in order.
    for (std::size_t i = 0; i < tail.size(); ++i)
        EXPECT_EQ(tail[i].addr, Addr(12 + i) * BlockSizeBytes);
    EXPECT_EQ(small.traceTail(3).size(), 3u);
    EXPECT_EQ(small.traceTail(3).back().addr, Addr(19) * BlockSizeBytes);
}

TEST_F(CheckerFixture, ViolationListIsCapped)
{
    for (int i = 0; i < 40; ++i)
        chk.noteEvent(CheckerCtrl::CorePair, "l2", kBlk, "TBE", "WBAck");
    EXPECT_LE(chk.violations().size(), 16u);
    EXPECT_NE(chk.brief().find("more"), std::string::npos);
}

TEST_F(CheckerFixture, ReportViolationNamesController)
{
    chk.reportViolation("double-dirty", "dir", kBlk,
                        "two dirty probe responses");
    ASSERT_TRUE(chk.violated());
    EXPECT_EQ(chk.violations().front().kind, "double-dirty");
    EXPECT_NE(chk.violations().front().detail.find("dir"),
              std::string::npos);
}

} // namespace
} // namespace hsc
