/**
 * @file
 * ShardGroup model tests: the multi-shard analogue of the event-queue
 * property tests.  A small doorbell-only model system checks the
 * conservative-lookahead contract directly —
 *
 *  - a cross-shard send arrives exactly one lookahead after the send
 *    tick, i.e. at the earliest tick the window protocol allows, and
 *    never executes inside the sender's window even when one worker
 *    owns both endpoints and could already see the push;
 *  - same-tick arrivals from different senders deliver in channel
 *    registration order, independent of sender execution order and of
 *    the thread count;
 *  - a randomized 2..8-shard doorbell ping-pong soak produces a
 *    bit-identical per-shard (tick, payload) trace at 1 worker thread
 *    and at N.
 *
 * All model state is shard-owned (per-shard traces, per-shard RNG
 * streams) except one atomic live-chain counter for the done
 * predicate, mirroring how HsaSystem uses the group.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "sim/rng.hh"
#include "sim/shard.hh"

namespace hsc
{
namespace
{

TEST(ShardGroup, CrossShardCallArrivesAtExactLookaheadHorizon)
{
    for (unsigned threads : {1u, 2u}) {
        ShardGroup g(2, 100);
        std::vector<Tick> arrivals; // written by shard 1 only
        std::atomic<int> live{1};
        g.queue(0).schedule(0, [&] {
            g.postCall(1, [&] {
                arrivals.push_back(g.queue(1).curTick());
                live.fetch_sub(1, std::memory_order_relaxed);
            });
        });
        auto oc = g.run(threads, Tick(1) << 30, 0, [&] {
            return live.load(std::memory_order_relaxed) == 0;
        });
        EXPECT_EQ(oc.kind, ShardGroup::Outcome::Kind::Completed);
        ASSERT_EQ(arrivals.size(), 1u) << threads << " threads";
        // Sent at tick 0, lookahead 100: the arrival lands exactly on
        // the next window's start — the earliest legal cross-shard
        // tick — not in the sender's own window.
        EXPECT_EQ(arrivals[0], 100u) << threads << " threads";
        EXPECT_EQ(oc.executed, 2u);
    }
}

TEST(ShardGroup, SameTickArrivalsDeliverInRegistrationOrder)
{
    // Senders 2 and 1 both post to shard 0 with the same arrival
    // tick.  Doorbell channels register in (from = 0, 1, 2) order at
    // construction, so delivery order is 1 then 2 — even though
    // sender 2's event executes first at every thread count.
    for (unsigned threads : {1u, 2u, 3u}) {
        ShardGroup g(3, 100);
        std::vector<int> order; // written by shard 0 only
        std::atomic<int> live{2};
        auto sendFrom = [&](unsigned s, int id) {
            g.queue(s).schedule(0, [&, id] {
                g.postCall(0, [&, id] {
                    order.push_back(id);
                    live.fetch_sub(1, std::memory_order_relaxed);
                });
            });
        };
        sendFrom(2, 2);
        sendFrom(1, 1);
        auto oc = g.run(threads, Tick(1) << 30, 0, [&] {
            return live.load(std::memory_order_relaxed) == 0;
        });
        EXPECT_EQ(oc.kind, ShardGroup::Outcome::Kind::Completed);
        EXPECT_EQ(order, (std::vector<int>{1, 2}))
            << threads << " threads";
    }
}

TEST(ShardGroup, EmptyGroupReportsHang)
{
    // Nothing scheduled and the predicate never holds: the group must
    // diagnose a hang rather than spin.
    ShardGroup g(2, 100);
    auto oc = g.run(2, Tick(1) << 30, 0, [] { return false; });
    EXPECT_EQ(oc.kind, ShardGroup::Outcome::Kind::Hang);
}

TEST(ShardGroup, CycleLimitStopsBeforeTheBound)
{
    // A self-rescheduling chain on shard 0 runs forever; the limit
    // must stop the group with no window past the bound.
    ShardGroup g(2, 100);
    std::function<void()> tick = [&] {
        g.queue(0).scheduleIn(10, tick);
    };
    g.queue(0).schedule(0, tick);
    auto oc = g.run(2, 5000, 0, [] { return false; });
    EXPECT_EQ(oc.kind, ShardGroup::Outcome::Kind::CycleLimit);
    // The limit is enforced at window granularity: the group stops
    // before starting a window past the bound, so execution overshoots
    // by less than one lookahead.
    EXPECT_LT(oc.finalTick, 5000u + 100u);
}

/**
 * Randomized doorbell ping-pong: chains hop between shards (or
 * reschedule locally), each hop recording (tick, chain id) into the
 * executing shard's private trace.  Every decision draws from the
 * executing shard's own RNG stream, so the whole run is a pure
 * function of (shards, seed) — the returned traces must not depend
 * on the worker-thread count.
 */
struct PingPongModel
{
    ShardGroup g;
    std::vector<Rng> rngs;
    std::vector<std::vector<std::pair<Tick, int>>> trace;
    std::atomic<int> live{0};

    PingPongModel(unsigned shards, std::uint64_t seed)
        : g(shards, 64), trace(shards)
    {
        rngs.reserve(shards);
        for (unsigned s = 0; s < shards; ++s)
            rngs.emplace_back(seed * 1009 + s);
    }

    void
    hop(unsigned s, int id, int budget)
    {
        trace[s].emplace_back(g.queue(s).curTick(), id);
        if (budget == 0) {
            live.fetch_sub(1, std::memory_order_relaxed);
            return;
        }
        unsigned target = unsigned(rngs[s].below(g.numShards()));
        if (target == s) {
            Tick d = 1 + rngs[s].below(200);
            g.queue(s).scheduleIn(
                d, [this, s, id, budget] { hop(s, id, budget - 1); });
        } else {
            g.postCall(target, [this, target, id, budget] {
                hop(target, id, budget - 1);
            });
        }
    }

    std::vector<std::vector<std::pair<Tick, int>>>
    run(unsigned threads)
    {
        const unsigned n = g.numShards();
        live.store(int(n), std::memory_order_relaxed);
        for (unsigned s = 0; s < n; ++s)
            g.queue(s).schedule(Tick(s) * 7, [this, s] {
                hop(s, int(s), 40);
            });
        auto oc = g.run(threads, Tick(1) << 40, Tick(1) << 20, [this] {
            return live.load(std::memory_order_relaxed) == 0;
        });
        EXPECT_EQ(oc.kind, ShardGroup::Outcome::Kind::Completed);
        return trace;
    }
};

TEST(ShardGroupSoak, TracesIdenticalAcrossThreadCounts)
{
    for (unsigned shards = 2; shards <= 8; ++shards) {
        for (std::uint64_t seed = 1; seed <= 3; ++seed) {
            auto ref = PingPongModel(shards, seed).run(1);
            std::uint64_t hops = 0;
            for (const auto &t : ref)
                hops += t.size();
            EXPECT_GT(hops, 0u);
            for (unsigned threads : {2u, shards}) {
                auto got = PingPongModel(shards, seed).run(threads);
                EXPECT_EQ(got, ref)
                    << shards << " shards, seed " << seed << ", "
                    << threads << " threads";
            }
        }
    }
}

} // namespace
} // namespace hsc
