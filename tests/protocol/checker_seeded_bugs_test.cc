/**
 * @file
 * End-to-end sanitizer validation: each SeededBug kind is planted in a
 * small deterministic scenario and the runtime CoherenceChecker must
 * catch it, classify it, and name the corrupted block.
 *
 * Thread-to-cache mapping (threads round-robin over 8 cores, two cores
 * per pair): thread 0 runs on corepair0, thread 2 on corepair1, so the
 * two protagonists always fight through the directory.
 */

#include <gtest/gtest.h>

#include "core/hsa_system.hh"

namespace hsc
{
namespace
{

// Spin on a flag through the coherence protocol until it reads 1.
// (SimTask is not itself awaitable, so this is a macro, not a helper
// coroutine.)
#define AWAIT_FLAG(cpu, flag)                                           \
    while (co_await (cpu).load(flag) == 0)                              \
        co_await (cpu).compute(200)

const ViolationReport &
firstViolation(HsaSystem &sys)
{
    const CoherenceChecker *chk = sys.checker();
    EXPECT_NE(chk, nullptr);
    EXPECT_TRUE(chk->violated());
    return chk->violations().front();
}

TEST(CheckerSeededBugs, IgnoredInvalidationIsSwmrViolation)
{
    SystemConfig cfg = baselineConfig();
    cfg.bug.kind = SeededBug::Kind::IgnoreInvProbe;
    cfg.bug.addr = 0x100000;
    cfg.bug.agent = 0;  // only corepair0 ignores the probe
    HsaSystem sys(cfg);
    Addr data = sys.alloc(64);
    Addr flag = sys.alloc(64);
    ASSERT_EQ(data, 0x100000u);

    // Thread 0 (corepair0) takes the block Modified, then thread 2
    // (corepair1) writes it too.  The invalidating probe is ignored,
    // so two L2s end up with write permission at once.
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(data, 0xAAAA'0001);
        co_await cpu.store(flag, 1);
    });
    sys.addCpuThread([](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(1);
    });
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        AWAIT_FLAG(cpu, flag);
        co_await cpu.store(data, 0xBBBB'0002);
    });

    EXPECT_FALSE(sys.run());
    const ViolationReport &r = firstViolation(sys);
    EXPECT_EQ(r.kind, "swmr");
    EXPECT_EQ(r.addr, 0x100000u);
    EXPECT_NE(r.detail.find("corepair0"), std::string::npos);
    EXPECT_NE(r.detail.find("corepair1"), std::string::npos);
    EXPECT_FALSE(r.history.empty());
    EXPECT_NE(sys.failReason().find("swmr"), std::string::npos);
    EXPECT_NE(sys.failReason().find("0x100000"), std::string::npos);
}

TEST(CheckerSeededBugs, DroppedProbeDataIsStaleDataViolation)
{
    SystemConfig cfg = baselineConfig();
    cfg.bug.kind = SeededBug::Kind::IgnoreProbeData;
    cfg.bug.addr = 0x100000;
    HsaSystem sys(cfg);
    Addr data = sys.alloc(64);
    Addr flag = sys.alloc(64);

    // Thread 0 dirties the block; thread 2's read forces a downgrade
    // whose forwarded dirty data the directory drops, so the reader is
    // filled from the stale backing store.
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(data, 0xDEAD'0001);
        co_await cpu.store(flag, 1);
    });
    sys.addCpuThread([](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(1);
    });
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        AWAIT_FLAG(cpu, flag);
        co_await cpu.load(data);
    });

    EXPECT_FALSE(sys.run());
    const ViolationReport &r = firstViolation(sys);
    EXPECT_EQ(r.kind, "stale-data");
    EXPECT_EQ(r.addr, 0x100000u);
    EXPECT_NE(r.detail.find("L2 fill"), std::string::npos);
    EXPECT_NE(sys.failReason().find("stale-data"), std::string::npos);
}

TEST(CheckerSeededBugs, StoreInSharedIsNoWritePermissionViolation)
{
    SystemConfig cfg = baselineConfig();
    cfg.bug.kind = SeededBug::Kind::WriteNoPermission;
    cfg.bug.addr = 0x100000;
    cfg.bug.agent = 0;
    HsaSystem sys(cfg);
    Addr data = sys.alloc(64);
    Addr flag1 = sys.alloc(64);
    Addr flag2 = sys.alloc(64);

    // Both pairs read the block (thread 2's load downgrades thread 0's
    // Exclusive copy to Shared), then thread 0 stores without the
    // upgrade its seeded bug skips.
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.load(data);
        co_await cpu.store(flag1, 1);
        AWAIT_FLAG(cpu, flag2);
        co_await cpu.store(data, 0xC0FF'EE01);
    });
    sys.addCpuThread([](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(1);
    });
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        AWAIT_FLAG(cpu, flag1);
        co_await cpu.load(data);
        co_await cpu.store(flag2, 1);
    });

    EXPECT_FALSE(sys.run());
    const ViolationReport &r = firstViolation(sys);
    EXPECT_EQ(r.kind, "no-write-permission");
    EXPECT_EQ(r.addr, 0x100000u);
    EXPECT_NE(r.detail.find("corepair0"), std::string::npos);
    EXPECT_NE(sys.failReason().find("no-write-permission"),
              std::string::npos);
}

TEST(CheckerSeededBugs, BogusWBAckIsIllegalEventViolation)
{
    SystemConfig cfg = baselineConfig();
    cfg.bug.kind = SeededBug::Kind::BogusWBAck;
    cfg.bug.addr = 0x100000;
    HsaSystem sys(cfg);
    Addr data = sys.alloc(64);

    // A single read is enough: the directory acks a write-back nobody
    // issued, which has no defined transition in the L2's tables.
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.load(data);
    });

    EXPECT_FALSE(sys.run());
    const ViolationReport &r = firstViolation(sys);
    EXPECT_EQ(r.kind, "illegal-event");
    EXPECT_EQ(r.addr, 0x100000u);
    EXPECT_NE(r.detail.find("WBAck"), std::string::npos);
    EXPECT_NE(sys.failReason().find("illegal-event"), std::string::npos);
}

TEST(CheckerSeededBugs, CheckerOffMissesTheCorruptionSilently)
{
    // The same stale-data scenario with the sanitizer disabled: the
    // run "succeeds" and the reader observes the wrong value — the
    // checker is what turns silent corruption into a diagnosis.
    SystemConfig cfg = baselineConfig();
    cfg.check = false;
    cfg.bug.kind = SeededBug::Kind::IgnoreProbeData;
    cfg.bug.addr = 0x100000;
    HsaSystem sys(cfg);
    ASSERT_EQ(sys.checker(), nullptr);
    Addr data = sys.alloc(64);
    Addr flag = sys.alloc(64);
    std::uint64_t observed = ~0ull;

    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(data, 0xDEAD'0001);
        co_await cpu.store(flag, 1);
    });
    sys.addCpuThread([](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(1);
    });
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        AWAIT_FLAG(cpu, flag);
        observed = co_await cpu.load(data);
    });

    EXPECT_TRUE(sys.run());
    EXPECT_TRUE(sys.failReason().empty());
    EXPECT_NE(observed, 0xDEAD'0001u);  // stale fill went unnoticed
}

TEST(CheckerSeededBugs, CleanRunReportsNoViolations)
{
    // Control: the same traffic with no seeded bug stays clean and
    // the checker visibly did work.
    SystemConfig cfg = baselineConfig();
    HsaSystem sys(cfg);
    Addr data = sys.alloc(64);
    Addr flag = sys.alloc(64);

    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(data, 0xAAAA'0001);
        co_await cpu.store(flag, 1);
    });
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        AWAIT_FLAG(cpu, flag);
        co_await cpu.store(data, 0xBBBB'0002);
    });

    EXPECT_TRUE(sys.run());
    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_FALSE(sys.checker()->violated());
    EXPECT_TRUE(sys.failReason().empty());
    EXPECT_GT(sys.checker()->transitionsChecked(), 0u);
    EXPECT_GT(sys.checker()->blocksShadowed(), 0u);
    EXPECT_EQ(sys.stats().counter("system.checker.violations"), 0u);
}

} // namespace
} // namespace hsc
