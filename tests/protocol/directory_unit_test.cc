/**
 * @file
 * Message-level unit tests of the baseline (stateless) directory —
 * the Fig. 2 state machine — and of the enhancement knobs, using fake
 * scripted clients.  Topology here is 2 CorePairs + 1 TCC + DMA
 * (machine ids 0, 1 = L2s; 2 = TCC; 3 = DMA).
 */

#include <gtest/gtest.h>

#include "tests/protocol/dir_harness.hh"

namespace hsc
{
namespace
{

constexpr Addr A = 0x4000;

Msg
req(MsgType t, Addr a = A)
{
    Msg m;
    m.type = t;
    m.addr = a;
    return m;
}

TEST(DirBaseline, RdBlkBroadcastsDowngradesExceptRequesterAndTcc)
{
    DirBench b;
    b.client(0).send(req(MsgType::RdBlk));
    b.settle();
    // Requester not probed; the other L2 downgraded; the TCC skipped.
    EXPECT_EQ(b.client(0).count(MsgType::PrbDowngrade), 0u);
    EXPECT_EQ(b.client(1).count(MsgType::PrbDowngrade), 1u);
    EXPECT_EQ(b.client(2).count(MsgType::PrbDowngrade), 0u);
    EXPECT_EQ(b.client(2).count(MsgType::PrbInv), 0u);
}

TEST(DirBaseline, RdBlkMBroadcastsInvalsIncludingTcc)
{
    DirBench b;
    b.client(0).send(req(MsgType::RdBlkM));
    b.settle();
    EXPECT_EQ(b.client(1).count(MsgType::PrbInv), 1u);
    EXPECT_EQ(b.client(2).count(MsgType::PrbInv), 1u);
    auto resp = b.client(0).last(MsgType::SysResp);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->grant, Grant::Modified);
}

TEST(DirBaseline, ExclusiveGrantOnlyWhenNoHit)
{
    DirBench b;
    b.client(0).send(req(MsgType::RdBlk));
    b.settle();
    auto resp = b.client(0).last(MsgType::SysResp);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->grant, Grant::Exclusive);

    // Second reader: the first one's copy reports hit -> Shared.
    DirBench b2;
    b2.client(1).script({A, true, false, false, 0});
    b2.client(0).send(req(MsgType::RdBlk));
    b2.settle();
    auto resp2 = b2.client(0).last(MsgType::SysResp);
    ASSERT_TRUE(resp2.has_value());
    EXPECT_EQ(resp2->grant, Grant::Shared);
}

TEST(DirBaseline, RdBlkSAlwaysShared)
{
    DirBench b;
    b.client(0).send(req(MsgType::RdBlkS));
    b.settle();
    auto resp = b.client(0).last(MsgType::SysResp);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->grant, Grant::Shared);
}

TEST(DirBaseline, DirtyProbeDataBeatsMemory)
{
    DirBench b;
    b.mem.functionalWriteWord<std::uint64_t>(A, 111); // stale
    b.client(1).script({A, true, true, true, 999});   // dirty owner
    b.client(0).send(req(MsgType::RdBlk));
    b.settle();
    auto resp = b.client(0).last(MsgType::SysResp);
    ASSERT_TRUE(resp.has_value());
    EXPECT_TRUE(resp->hasData);
    EXPECT_EQ(resp->data.get<std::uint64_t>(0), 999u);
    EXPECT_EQ(resp->grant, Grant::Shared);
}

TEST(DirBaseline, MemoryDataWhenAllMiss)
{
    DirBench b;
    b.mem.functionalWriteWord<std::uint64_t>(A, 4242);
    b.client(0).send(req(MsgType::RdBlk));
    b.settle();
    auto resp = b.client(0).last(MsgType::SysResp);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->data.get<std::uint64_t>(0), 4242u);
    EXPECT_EQ(b.mem.reads(), 1u);
}

TEST(DirBaseline, VictimsWriteLlcAndMemoryWriteThrough)
{
    DirBench b; // default config: WT LLC
    Msg vic = req(MsgType::VicDirty);
    vic.hasData = true;
    vic.dirty = true;
    vic.data.set<std::uint64_t>(0, 777);
    b.client(0).send(vic);
    b.settle();
    EXPECT_EQ(b.client(0).count(MsgType::WBAck), 1u);
    // Write-through LLC: memory updated too.
    EXPECT_EQ(b.mem.functionalReadWord<std::uint64_t>(A), 777u);
    ASSERT_NE(b.dir->llc().peek(A), nullptr);
    EXPECT_EQ(b.dir->llc().peek(A)->get<std::uint64_t>(0), 777u);
}

TEST(DirEnhB, CleanVictimSkipsMemory)
{
    DirConfig cfg;
    cfg.noCleanVicToMem = true;
    DirBench b(cfg);
    Msg vic = req(MsgType::VicClean);
    vic.hasData = true;
    vic.data.set<std::uint64_t>(0, 55);
    b.client(0).send(vic);
    b.settle();
    EXPECT_EQ(b.mem.writes(), 0u);
    ASSERT_NE(b.dir->llc().peek(A), nullptr); // still a victim cache
    EXPECT_EQ(b.dir->llc().peek(A)->get<std::uint64_t>(0), 55u);

    // Dirty victims are unaffected (§III-B).
    Msg vic2 = req(MsgType::VicDirty, A + 64);
    vic2.hasData = true;
    vic2.dirty = true;
    b.client(0).send(vic2);
    b.settle();
    EXPECT_EQ(b.mem.writes(), 1u);
}

TEST(DirEnhB1, CleanVictimLostInTheAir)
{
    DirConfig cfg;
    cfg.noCleanVicToMem = true;
    cfg.noCleanVicToLlc = true;
    DirBench b(cfg);
    Msg vic = req(MsgType::VicClean);
    vic.hasData = true;
    b.client(0).send(vic);
    b.settle();
    EXPECT_EQ(b.client(0).count(MsgType::WBAck), 1u);
    EXPECT_EQ(b.mem.writes(), 0u);
    EXPECT_EQ(b.dir->llc().peek(A), nullptr);
}

TEST(DirEnhC, WriteBackLlcDefersMemory)
{
    DirConfig cfg;
    cfg.noCleanVicToMem = true;
    cfg.llcWriteBack = true;
    DirBench b(cfg);
    Msg vic = req(MsgType::VicDirty);
    vic.hasData = true;
    vic.dirty = true;
    vic.data.set<std::uint64_t>(0, 808);
    b.client(0).send(vic);
    b.settle();
    EXPECT_EQ(b.mem.writes(), 0u) << "dirty victim must not write memory";
    EXPECT_TRUE(b.dir->llc().lineDirty(A));

    // Fill the LLC set so the dirty line is evicted -> memory write.
    // Set index bits are [9:6] with 16 sets; A maps to set 0.
    for (unsigned i = 1; i <= 2; ++i) {
        Msg v2 = req(MsgType::VicClean, A + i * 64 * 16);
        v2.hasData = true;
        b.client(0).send(v2);
    }
    b.settle();
    EXPECT_EQ(b.mem.writes(), 1u);
    EXPECT_EQ(b.mem.functionalReadWord<std::uint64_t>(A), 808u);
}

TEST(DirEnhC, StickyDirtyBitSurvivesCleanRewrite)
{
    DirConfig cfg;
    cfg.llcWriteBack = true;
    DirBench b(cfg);
    Msg vic = req(MsgType::VicDirty);
    vic.hasData = true;
    vic.dirty = true;
    b.client(0).send(vic);
    b.settle();
    // A later clean victim of the same line (a dirty sharer's noisy
    // eviction) must not clear the dirty bit.
    Msg vic2 = req(MsgType::VicClean);
    vic2.hasData = true;
    b.client(1).send(vic2);
    b.settle();
    EXPECT_TRUE(b.dir->llc().lineDirty(A));
}

TEST(DirEnhA, EarlyResponseBeatsMemory)
{
    // Without early response the requester waits for memory (1000
    // ticks); with it the dirty ack answers first.
    auto run_one = [](bool early) {
        DirConfig cfg;
        cfg.earlyDirtyResp = early;
        DirBench b(cfg);
        b.client(1).script({A, true, true, true, 31337});
        b.client(0).send(req(MsgType::RdBlk));
        Tick resp_at = 0;
        b.eq.runUntil([&] {
            if (auto r = b.client(0).last(MsgType::SysResp)) {
                resp_at = b.eq.curTick();
                return true;
            }
            return false;
        });
        b.settle();
        return resp_at;
    };
    Tick with = run_one(true);
    Tick without = run_one(false);
    EXPECT_LT(with, without);
}

TEST(DirEnhA, EarlyResponseCountsStat)
{
    DirConfig cfg;
    cfg.earlyDirtyResp = true;
    DirBench b(cfg);
    b.client(1).script({A, true, true, true, 1});
    b.client(0).send(req(MsgType::RdBlk));
    b.settle();
    EXPECT_EQ(b.stats.counter("dir.earlyResponses"), 1u);
    // Write-permission requests never take the early path.
    b.client(0).send(req(MsgType::RdBlkM, A + 64));
    b.settle();
    EXPECT_EQ(b.stats.counter("dir.earlyResponses"), 1u);
}

TEST(DirBaseline, PerLineStallingSerialisesTransactions)
{
    DirBench b;
    b.client(0).send(req(MsgType::RdBlk));
    b.client(1).send(req(MsgType::RdBlkM));
    b.settle();
    EXPECT_GE(b.stats.counter("dir.stalls"), 1u);
    // Both eventually served.
    EXPECT_TRUE(b.client(0).last(MsgType::SysResp).has_value());
    EXPECT_TRUE(b.client(1).last(MsgType::SysResp).has_value());
}

TEST(DirBaseline, WriteThroughMergesMaskedBytes)
{
    DirBench b;
    b.mem.functionalWriteWord<std::uint64_t>(A, 0x1111111111111111ull);
    Msg wt = req(MsgType::WriteThrough);
    wt.hasData = true;
    wt.mask = makeMask(0, 4);
    wt.data.set<std::uint32_t>(0, 0xABCD);
    b.client(2).send(wt); // from the TCC
    b.settle();
    EXPECT_EQ(b.client(2).count(MsgType::WBAck), 1u);
    EXPECT_EQ(b.mem.functionalReadWord<std::uint32_t>(A), 0xABCDu);
    EXPECT_EQ(b.mem.functionalReadWord<std::uint32_t>(A + 4),
              0x11111111u);
    // The TCC's WT probes invalidate the L2s.
    EXPECT_EQ(b.client(0).count(MsgType::PrbInv), 1u);
    EXPECT_EQ(b.client(1).count(MsgType::PrbInv), 1u);
}

TEST(DirBaseline, WriteThroughMergesOverDirtyProbeData)
{
    DirBench b;
    // L2 0 holds the line dirty with 0xEE..EE; the TCC writes 4 bytes.
    FakeClient::LineScript s{A, true, true, true, 0};
    s.value = 0xEEEEEEEEEEEEEEEEull;
    b.client(0).script(s);
    Msg wt = req(MsgType::WriteThrough);
    wt.hasData = true;
    wt.mask = makeMask(0, 4);
    wt.data.set<std::uint32_t>(0, 0x1234);
    b.client(2).send(wt);
    b.settle();
    // Result: the L2's dirty bytes persisted with the WT merged in.
    EXPECT_EQ(b.mem.functionalReadWord<std::uint32_t>(A), 0x1234u);
    EXPECT_EQ(b.mem.functionalReadWord<std::uint32_t>(A + 4),
              0xEEEEEEEEu);
}

TEST(DirBaseline, AtomicReturnsOldValueAndApplies)
{
    DirBench b;
    b.mem.functionalWriteWord<std::uint64_t>(A, 100);
    Msg at = req(MsgType::Atomic);
    at.atomicOp = AtomicOp::Add;
    at.atomicOperand = 5;
    at.atomicOffset = 0;
    at.atomicSize = 8;
    at.txnId = 77;
    b.client(2).send(at);
    b.settle();
    auto resp = b.client(2).last(MsgType::AtomicResp);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->atomicResult, 100u);
    EXPECT_EQ(resp->txnId, 77u);
    EXPECT_EQ(b.mem.functionalReadWord<std::uint64_t>(A), 105u);
}

TEST(DirBaseline, DmaReadProbesAndReturnsDirtyData)
{
    DirBench b;
    Topology topo{2, 1};
    b.client(0).script({A, true, true, true, 64646});
    Msg rd = req(MsgType::DmaRead);
    rd.sender = topo.dmaId();
    b.client(3).send(rd);
    b.settle();
    auto resp = b.client(3).last(MsgType::DmaResp);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->data.get<std::uint64_t>(0), 64646u);
    // Fig. 3: DMA reads broadcast (downgrade) probes to the L2s.
    EXPECT_EQ(b.client(0).count(MsgType::PrbDowngrade), 1u);
    EXPECT_EQ(b.client(1).count(MsgType::PrbDowngrade), 1u);
    EXPECT_EQ(b.client(2).count(MsgType::PrbDowngrade), 0u);
}

TEST(DirBaseline, DmaWriteProbesGpuToo)
{
    DirBench b;
    Msg wr = req(MsgType::DmaWrite);
    wr.hasData = true;
    wr.mask = FullMask;
    wr.data.set<std::uint64_t>(0, 5);
    b.client(3).send(wr);
    b.settle();
    EXPECT_EQ(b.client(0).count(MsgType::PrbInv), 1u);
    EXPECT_EQ(b.client(1).count(MsgType::PrbInv), 1u);
    EXPECT_EQ(b.client(2).count(MsgType::PrbInv), 1u); // the TCC
    EXPECT_EQ(b.mem.functionalReadWord<std::uint64_t>(A), 5u);
}

TEST(DirBaseline, CancelledVicIsDropped)
{
    DirBench b;
    b.mem.functionalWriteWord<std::uint64_t>(A, 1);
    // Client 0's probe response says "this data came from a pending
    // write-back that your probe cancelled".
    FakeClient::LineScript s{A, true, true, true, 42};
    s.cancelledVic = true;
    b.client(0).script(s);
    b.client(1).send(req(MsgType::RdBlkM));
    b.settle();
    // The in-flight stale victim now arrives and must be dropped.
    Msg vic = req(MsgType::VicDirty);
    vic.hasData = true;
    vic.dirty = true;
    vic.data.set<std::uint64_t>(0, 42);
    b.client(0).send(vic);
    b.settle();
    EXPECT_EQ(b.stats.counter("dir.staleVicDropped"), 1u);
    EXPECT_EQ(b.client(0).count(MsgType::WBAck), 1u);
    // The stale data must not have been written anywhere.
    EXPECT_EQ(b.mem.functionalReadWord<std::uint64_t>(A), 1u);
    EXPECT_EQ(b.dir->llc().peek(A), nullptr);
}

TEST(DirBaseline, ProbeCountMatchesFigure7Metric)
{
    DirBench b;
    b.client(0).send(req(MsgType::RdBlk));        // 1 downgrade
    b.client(0).send(req(MsgType::RdBlkM, A + 64)); // 2 invals
    b.settle();
    EXPECT_EQ(b.dir->probesSent(), 3u);
    EXPECT_EQ(b.stats.counter("dir.probesSent"), 3u);
}

TEST(DirTracked, UntrackedVictimDropped)
{
    DirConfig cfg;
    cfg.tracking = DirTracking::Sharers;
    DirBench b(cfg);
    Msg vic = req(MsgType::VicClean);
    vic.hasData = true;
    b.client(0).send(vic);
    b.settle();
    EXPECT_EQ(b.stats.counter("dir.staleVicDropped"), 1u);
    EXPECT_EQ(b.client(0).count(MsgType::WBAck), 1u);
}

TEST(DirTracked, ReadOnlyRegionReadsAreNotTracked)
{
    DirConfig cfg;
    cfg.tracking = DirTracking::Sharers;
    cfg.readOnlyBase = A;
    cfg.readOnlyLimit = A + 128;
    DirBench b(cfg);
    b.mem.functionalWriteWord<std::uint64_t>(A, 3);
    b.client(0).send(req(MsgType::RdBlk));
    b.settle();
    auto resp = b.client(0).last(MsgType::SysResp);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->grant, Grant::Shared) << "no Exclusive in RO region";
    EXPECT_EQ(resp->data.get<std::uint64_t>(0), 3u);
    EXPECT_FALSE(b.dir->tracks(A));
    EXPECT_EQ(b.stats.counter("dir.readOnlyElided"), 1u);

    // Outside the region, tracking happens as usual.
    b.client(0).send(req(MsgType::RdBlk, A + 256));
    b.settle();
    EXPECT_TRUE(b.dir->tracks(A + 256));
}

TEST(DirTracked, TrackedReadThenWriteFlow)
{
    DirConfig cfg;
    cfg.tracking = DirTracking::Sharers;
    DirBench b(cfg);
    b.mem.functionalWriteWord<std::uint64_t>(A, 9);
    b.client(0).send(req(MsgType::RdBlk));
    b.settle();
    EXPECT_TRUE(b.dir->tracks(A));
    EXPECT_EQ(b.dir->trackedState(A), DirState::O);
    EXPECT_EQ(b.dir->trackedOwner(A), 0);

    // Writer 1 takes over; owner must be probed (E forwards data).
    b.client(0).script({A, true, true, false, 9});
    b.client(1).send(req(MsgType::RdBlkM));
    b.settle();
    EXPECT_EQ(b.dir->trackedOwner(A), 1);
    EXPECT_EQ(b.client(0).count(MsgType::PrbInv), 1u);
    auto resp = b.client(1).last(MsgType::SysResp);
    ASSERT_TRUE(resp.has_value());
    EXPECT_EQ(resp->data.get<std::uint64_t>(0), 9u);
}

} // namespace
} // namespace hsc
