/** @file Shared helpers for protocol-level tests. */

#ifndef HSC_TESTS_PROTOCOL_TEST_UTIL_HH
#define HSC_TESTS_PROTOCOL_TEST_UTIL_HH

#include <gtest/gtest.h>

#include "core/coherence_checker.hh"
#include "core/hsa_system.hh"

namespace hsc
{

/** All directory configurations a protocol test should pass under. */
inline std::vector<SystemConfig>
allDirConfigs()
{
    return {
        baselineConfig(),       earlyRespConfig(),
        noCleanVicToMemConfig(), noCleanVicToLlcConfig(),
        llcWriteBackConfig(),   llcWriteBackUseL3Config(),
        ownerTrackingConfig(),  sharerTrackingConfig(),
        limitedPointerConfig(2),
    };
}

/** Run @p sys and assert success plus clean invariants. */
inline void
runAndCheck(HsaSystem &sys)
{
    ASSERT_TRUE(sys.run()) << "simulation did not complete";
    CheckResult chk = checkCoherenceInvariants(sys);
    EXPECT_TRUE(chk.ok);
    for (const auto &v : chk.violations)
        ADD_FAILURE() << "invariant: " << v;
}

} // namespace hsc

#endif // HSC_TESTS_PROTOCOL_TEST_UTIL_HH
