/**
 * @file
 * Tests of the banked (distributed) directory — the §VII future-work
 * extension: address interleaving, per-bank tracking, coherence under
 * the random tester, and workload verification with multiple banks.
 */

#include "core/random_tester.hh"
#include "core/run_report.hh"
#include "tests/protocol/test_util.hh"
#include "workloads/workload.hh"

namespace hsc
{
namespace
{

TEST(BankedDir, BanksOwnInterleavedAddresses)
{
    SystemConfig cfg = sharerTrackingConfig();
    cfg.numDirBanks = 4;
    HsaSystem sys(cfg);
    EXPECT_EQ(sys.numDirBanks(), 4u);
    Addr base = sys.alloc(64 * 8);
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        for (unsigned i = 0; i < 8; ++i)
            co_await cpu.store(base + i * 64, i);
    });
    runAndCheck(sys);
    // Each line is tracked exactly by its owning bank.
    for (unsigned i = 0; i < 8; ++i) {
        Addr a = base + i * 64;
        unsigned owner_bank = unsigned((a >> BlockShift) % 4);
        for (unsigned b = 0; b < 4; ++b) {
            EXPECT_EQ(sys.dirBank(b).tracks(a), b == owner_bank)
                << "line " << i << " bank " << b;
        }
        EXPECT_TRUE(sys.dirFor(a).tracks(a));
    }
}

TEST(BankedDir, NonPowerOfTwoBanksRejected)
{
    SystemConfig cfg = baselineConfig();
    cfg.numDirBanks = 3;
    EXPECT_THROW(HsaSystem sys(cfg), std::runtime_error);
}

TEST(BankedDir, CrossCorePairTransferThroughBanks)
{
    for (unsigned banks : {2u, 4u}) {
        SystemConfig cfg = baselineConfig();
        cfg.numDirBanks = banks;
        HsaSystem sys(cfg);
        Addr data = sys.alloc(64 * 4);
        Addr flag = sys.alloc(64);
        std::uint64_t sum = 0;
        sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
            for (unsigned i = 0; i < 4; ++i)
                co_await cpu.store(data + i * 64, 100 + i);
            co_await cpu.store(flag, 1);
        });
        sys.addCpuThread([](CpuCtx &) -> SimTask { co_return; });
        sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
            while (co_await cpu.load(flag) == 0)
                co_await cpu.compute(50);
            for (unsigned i = 0; i < 4; ++i)
                sum += co_await cpu.load(data + i * 64);
        });
        ASSERT_TRUE(sys.run()) << banks << " banks";
        EXPECT_EQ(sum, 406u) << banks << " banks";
    }
}

struct BankParam
{
    unsigned banks;
    SystemConfig cfg;
    std::uint64_t seed;

    std::string
    name() const
    {
        std::string n = cfg.label + "_b" + std::to_string(banks) + "_s" +
                        std::to_string(seed);
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    }
};

class BankedTesterFixture : public ::testing::TestWithParam<BankParam>
{
};

TEST_P(BankedTesterFixture, CoherentUnderRandomTraffic)
{
    BankParam p = GetParam();
    SystemConfig cfg = p.cfg;
    cfg.numDirBanks = p.banks;
    shrinkForTorture(cfg);
    HsaSystem sys(cfg);
    RandomTesterConfig tcfg;
    tcfg.seed = p.seed;
    tcfg.numLocations = 24;
    RandomTester tester(sys, tcfg);
    bool ok = tester.run();
    for (const auto &f : tester.failures())
        ADD_FAILURE() << f;
    ASSERT_TRUE(ok);
    CheckResult chk = checkCoherenceInvariants(sys);
    for (const auto &v : chk.violations)
        ADD_FAILURE() << "invariant: " << v;
}

INSTANTIATE_TEST_SUITE_P(
    Banks, BankedTesterFixture,
    ::testing::Values(BankParam{2, baselineConfig(), 7},
                      BankParam{4, baselineConfig(), 7},
                      BankParam{2, sharerTrackingConfig(), 7},
                      BankParam{4, sharerTrackingConfig(), 7},
                      BankParam{4, ownerTrackingConfig(), 99},
                      BankParam{2, llcWriteBackUseL3Config(), 31}),
    [](const auto &info) { return info.param.name(); });

TEST(BankedDir, WorkloadsVerifyWithBanks)
{
    for (const std::string &wl : {std::string("tq"), std::string("hsti"),
                                  std::string("trns")}) {
        SystemConfig cfg = sharerTrackingConfig();
        cfg.numDirBanks = 4;
        WorkloadRun r = runWorkload(wl, cfg);
        ASSERT_TRUE(r.ran) << wl;
        EXPECT_TRUE(r.verified) << wl;
    }
}

TEST(BankedDir, MetricsAggregateAcrossBanks)
{
    SystemConfig cfg = sharerTrackingConfig();
    cfg.numDirBanks = 4;
    RunMetrics m = benchWorkload("hsti", cfg);
    EXPECT_TRUE(m.ok);
    EXPECT_GT(m.dirRequests, 0u);
    // Per-bank counters exist and sum to the aggregate.
    HsaSystem sys(cfg);
    (void)sys;
}

} // namespace
} // namespace hsc
