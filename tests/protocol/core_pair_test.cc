/**
 * @file
 * Unit tests of the CorePair MOESI controller against a scripted fake
 * directory: request selection, grant handling, silent E->M, probe
 * responses per state, the victim buffer (including write-back
 * cancellation), MSHR merging and L1 inclusivity.
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "protocol/cpu/core_pair.hh"

namespace hsc
{
namespace
{

/** Fake directory answering CorePair requests from functional memory. */
class FakeDir
{
  public:
    FakeDir(EventQueue &eq, MessageBuffer &to_l2)
        : mem("mem", eq, 200, 20), toL2(to_l2)
    {
    }

    void
    bind(MessageBuffer &from_l2)
    {
        from_l2.setConsumer([this](Msg &&m) { receive(std::move(m)); });
    }

    /** Grant to use for the next RdBlk responses. */
    Grant rdBlkGrant = Grant::Exclusive;
    /** When set, hold requests instead of answering (stall window). */
    bool holdRequests = false;

    std::vector<Msg> received;
    std::vector<Msg> held;

    unsigned
    count(MsgType t) const
    {
        unsigned n = 0;
        for (const Msg &m : received)
            n += (m.type == t);
        return n;
    }

    void
    probe(Addr a, MsgType t, std::uint64_t txn = 99)
    {
        Msg p;
        p.type = t;
        p.addr = a;
        p.txnId = txn;
        toL2.enqueue(std::move(p));
    }

    void
    releaseHeld()
    {
        holdRequests = false;
        auto pending = std::move(held);
        held.clear();
        for (Msg &m : pending)
            answer(m);
    }

    std::vector<Msg> probeResps;
    MainMemory mem;

  private:
    void
    receive(Msg &&m)
    {
        received.push_back(m);
        switch (m.type) {
          case MsgType::RdBlk:
          case MsgType::RdBlkS:
          case MsgType::RdBlkM:
            if (holdRequests) {
                held.push_back(m);
                return;
            }
            answer(m);
            return;
          case MsgType::VicClean:
          case MsgType::VicDirty: {
            mem.functionalWrite(m.addr, m.data);
            Msg ack;
            ack.type = MsgType::WBAck;
            ack.addr = m.addr;
            toL2.enqueue(std::move(ack));
            return;
          }
          case MsgType::PrbResp:
            probeResps.push_back(m);
            return;
          case MsgType::Unblock:
            return;
          default:
            FAIL() << "unexpected " << std::string(msgTypeName(m.type));
        }
    }

    void
    answer(const Msg &m)
    {
        Msg r;
        r.type = MsgType::SysResp;
        r.addr = m.addr;
        r.hasData = true;
        r.data = mem.functionalRead(m.addr);
        r.grant = m.type == MsgType::RdBlkM ? Grant::Modified
                  : m.type == MsgType::RdBlkS ? Grant::Shared
                                              : rdBlkGrant;
        toL2.enqueue(std::move(r));
    }

    MessageBuffer &toL2;
};

struct CpBench
{
    CpBench()
        : toDir("toDir", eq, 10), fromDir("fromDir", eq, 10),
          dir(eq, fromDir)
    {
        CorePairParams params;
        params.l2Geom = {4, 2};
        params.l1dGeom = {2, 2};
        params.l1iGeom = {2, 2};
        cp = std::make_unique<CorePairController>(
            "cp", eq, ClockDomain(100), 0, params, toDir);
        cp->bindFromDir(fromDir);
        dir.bind(toDir);
    }

    void settle() { eq.run(); }

    EventQueue eq;
    MessageBuffer toDir;
    MessageBuffer fromDir;
    FakeDir dir;
    std::unique_ptr<CorePairController> cp;
};

constexpr Addr A = 0x2000;

TEST(CorePair, LoadMissSendsRdBlkAndFills)
{
    CpBench b;
    b.dir.mem.functionalWriteWord<std::uint64_t>(A, 321);
    std::uint64_t got = 0;
    b.cp->load(0, A, 8, [&](std::uint64_t v) { got = v; });
    b.settle();
    EXPECT_EQ(got, 321u);
    EXPECT_EQ(b.dir.count(MsgType::RdBlk), 1u);
    EXPECT_EQ(b.dir.count(MsgType::Unblock), 1u);
    EXPECT_EQ(b.cp->lineState(A), L2State::Exclusive);
}

TEST(CorePair, IfetchSendsRdBlkS)
{
    CpBench b;
    b.cp->ifetch(0, A, [] {});
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::RdBlkS), 1u);
    EXPECT_EQ(b.cp->lineState(A), L2State::Shared);
}

TEST(CorePair, StoreOnExclusiveIsSilent)
{
    CpBench b;
    b.cp->load(0, A, 8, [](std::uint64_t) {});
    b.settle();
    unsigned reqs = unsigned(b.dir.received.size());
    b.cp->store(0, A, 8, 55, [] {});
    b.settle();
    EXPECT_EQ(b.dir.received.size(), reqs) << "silent E->M";
    EXPECT_EQ(b.cp->lineState(A), L2State::Modified);
    EXPECT_EQ(b.cp->peekWord(A, 8), 55u);
}

TEST(CorePair, StoreOnSharedUpgradesKeepingLocalData)
{
    CpBench b;
    b.dir.rdBlkGrant = Grant::Shared;
    b.dir.mem.functionalWriteWord<std::uint64_t>(A + 8, 0x11);
    b.cp->load(0, A, 8, [](std::uint64_t) {});
    b.settle();
    ASSERT_EQ(b.cp->lineState(A), L2State::Shared);
    // Make the fake dir serve stale data for the upgrade: the L2 must
    // ignore the payload and keep its (current) copy.
    b.dir.mem.functionalWriteWord<std::uint64_t>(A + 8, 0xBAD);
    b.cp->store(0, A, 8, 77, [] {});
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::RdBlkM), 1u);
    EXPECT_EQ(b.cp->lineState(A), L2State::Modified);
    EXPECT_EQ(b.cp->peekWord(A, 8), 77u);
    EXPECT_EQ(b.cp->peekWord(A + 8, 8), 0x11u)
        << "upgrade must not clobber the resident copy";
}

TEST(CorePair, MshrMergesOpsToOneLine)
{
    CpBench b;
    b.dir.holdRequests = true;
    int done = 0;
    for (int i = 0; i < 3; ++i)
        b.cp->load(i % 2, A + i * 8, 8, [&](std::uint64_t) { ++done; });
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::RdBlk), 1u) << "one miss per line";
    b.dir.releaseHeld();
    b.settle();
    EXPECT_EQ(done, 3);
}

TEST(CorePair, ProbeResponsesPerState)
{
    // M: dirty data + invalidate.
    CpBench b;
    b.cp->store(0, A, 8, 9, [] {});
    b.settle();
    b.dir.probe(A, MsgType::PrbInv);
    b.settle();
    ASSERT_EQ(b.dir.probeResps.size(), 1u);
    EXPECT_TRUE(b.dir.probeResps[0].hit);
    EXPECT_TRUE(b.dir.probeResps[0].dirty);
    EXPECT_EQ(b.dir.probeResps[0].data.get<std::uint64_t>(0), 9u);
    EXPECT_EQ(b.dir.probeResps[0].txnId, 99u);
    EXPECT_FALSE(b.cp->hasLine(A));

    // E: clean data forward; downgrade leaves S.
    b.dir.probeResps.clear();
    b.cp->load(0, A, 8, [](std::uint64_t) {});
    b.settle();
    ASSERT_EQ(b.cp->lineState(A), L2State::Exclusive);
    b.dir.probe(A, MsgType::PrbDowngrade);
    b.settle();
    ASSERT_EQ(b.dir.probeResps.size(), 1u);
    EXPECT_TRUE(b.dir.probeResps[0].hasData);
    EXPECT_FALSE(b.dir.probeResps[0].dirty);
    EXPECT_EQ(b.cp->lineState(A), L2State::Shared);

    // S: hit ack without data.
    b.dir.probeResps.clear();
    b.dir.probe(A, MsgType::PrbDowngrade);
    b.settle();
    ASSERT_EQ(b.dir.probeResps.size(), 1u);
    EXPECT_TRUE(b.dir.probeResps[0].hit);
    EXPECT_FALSE(b.dir.probeResps[0].hasData);

    // I: miss ack.
    b.dir.probeResps.clear();
    b.dir.probe(A + 64, MsgType::PrbInv);
    b.settle();
    ASSERT_EQ(b.dir.probeResps.size(), 1u);
    EXPECT_FALSE(b.dir.probeResps[0].hit);
}

TEST(CorePair, DowngradeOnModifiedLeavesOwned)
{
    CpBench b;
    b.cp->store(0, A, 8, 5, [] {});
    b.settle();
    b.dir.probe(A, MsgType::PrbDowngrade);
    b.settle();
    EXPECT_EQ(b.cp->lineState(A), L2State::Owned);
    ASSERT_EQ(b.dir.probeResps.size(), 1u);
    EXPECT_TRUE(b.dir.probeResps[0].dirty);
}

TEST(CorePair, EvictionSendsVictimWithData)
{
    CpBench b; // 4 sets x 2 ways; set stride = 4*64 = 256
    b.cp->store(0, A, 8, 1, [] {});
    b.cp->store(0, A + 0x100, 8, 2, [] {});
    b.cp->store(0, A + 0x200, 8, 3, [] {}); // evicts one M line
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::VicDirty), 1u);
    // The victim handshake completed (WBAck) and the data reached the
    // fake directory's memory.
    EXPECT_TRUE(b.cp->idle());
    std::uint64_t sum = b.dir.mem.functionalReadWord<std::uint64_t>(A) +
                        b.dir.mem.functionalReadWord<std::uint64_t>(
                            A + 0x100) +
                        b.dir.mem.functionalReadWord<std::uint64_t>(
                            A + 0x200);
    EXPECT_GT(sum, 0u);
}

TEST(CorePair, CleanEvictionSendsVicClean)
{
    CpBench b;
    b.cp->load(0, A, 8, [](std::uint64_t) {});
    b.cp->load(0, A + 0x100, 8, [](std::uint64_t) {});
    b.cp->load(0, A + 0x200, 8, [](std::uint64_t) {});
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::VicClean), 1u)
        << "noisy eviction of an E line";
}

TEST(CorePair, ProbeHitsVictimBufferAndCancelsWriteback)
{
    CpBench b;
    // Park a dirty victim in the buffer by holding... the fake dir
    // acks immediately, so instead probe between the store and the
    // eviction: enqueue the eviction-triggering store and a probe in
    // the same settle window.
    b.cp->store(0, A, 8, 0xAA, [] {});
    b.settle();
    // Manually evict by filling the set, but intercept before WBAck:
    // the link latencies guarantee the probe (sent below, latency 10)
    // arrives before the VicDirty's WBAck round trip completes.
    b.cp->store(0, A + 0x100, 8, 1, [] {});
    b.cp->store(0, A + 0x200, 8, 2, [] {});
    b.dir.probe(A, MsgType::PrbInv);
    b.settle();
    // Whether the probe hit the live line or the victim buffer, the
    // response must carry the dirty data exactly once.
    bool found = false;
    for (const Msg &m : b.dir.probeResps) {
        if (m.addr == A && m.hasData &&
            m.data.get<std::uint64_t>(0) == 0xAA) {
            found = true;
        }
    }
    EXPECT_TRUE(found);
    EXPECT_TRUE(b.cp->idle());
}

TEST(CorePair, AtomicNeedsModifiedAndReturnsOld)
{
    CpBench b;
    b.dir.mem.functionalWriteWord<std::uint64_t>(A, 10);
    std::uint64_t old_val = 0;
    b.cp->atomic(0, A, AtomicOp::Add, 7, 0, 8,
                 [&](std::uint64_t v) { old_val = v; });
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::RdBlkM), 1u);
    EXPECT_EQ(old_val, 10u);
    EXPECT_EQ(b.cp->peekWord(A, 8), 17u);
    EXPECT_EQ(b.cp->lineState(A), L2State::Modified);
}

TEST(CorePair, CrossBlockAccessPanics)
{
    CpBench b;
    EXPECT_THROW(b.cp->load(0, A + 60, 8, [](std::uint64_t) {}),
                 std::logic_error);
    EXPECT_THROW(b.cp->store(0, A + 63, 2, 0, [] {}),
                 std::logic_error);
}

TEST(CorePair, StatsCountHierarchyActivity)
{
    CpBench b;
    StatRegistry reg;
    b.cp->regStats(reg);
    b.cp->load(0, A, 8, [](std::uint64_t) {});
    b.cp->load(0, A, 8, [](std::uint64_t) {});
    b.cp->ifetch(1, A + 64, [] {});
    b.settle();
    EXPECT_EQ(reg.counter("cp.loads"), 2u);
    EXPECT_EQ(reg.counter("cp.ifetches"), 1u);
    EXPECT_EQ(reg.counter("cp.l2Misses"), 2u);
    // Ops queued on a miss replay through the hit path after the fill,
    // so every op eventually counts one hit.
    EXPECT_EQ(reg.counter("cp.l2Hits"), 3u);
}

} // namespace
} // namespace hsc
