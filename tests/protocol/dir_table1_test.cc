/**
 * @file
 * Table I conformance: directed tests of the tracking directory's
 * state machine, one scenario per (state, request) cell, including
 * the footnote special cases.
 *
 * Scenarios drive real CPU/GPU/DMA traffic and then assert the
 * directory's tracked state via introspection, so each test checks
 * both the transition and its observable effect.
 */

#include "tests/protocol/test_util.hh"

namespace hsc
{
namespace
{

struct Fixture
{
    explicit Fixture(SystemConfig cfg = sharerTrackingConfig())
        : sys(std::move(cfg)), a(sys.alloc(64))
    {
        sys.writeWord<std::uint64_t>(a, 0x1111);
    }

    /** Run one CPU thread body on a chosen core. */
    void
    onThread(unsigned tid, HsaSystem::CpuThreadFn fn)
    {
        while (threads <= tid) {
            if (threads == tid) {
                sys.addCpuThread(std::move(fn));
            } else {
                sys.addCpuThread([](CpuCtx &) -> SimTask { co_return; });
            }
            ++threads;
        }
    }

    HsaSystem sys;
    Addr a;
    unsigned threads = 0;
};

// ----- I-state transitions -------------------------------------------

TEST(Table1, IState_RdBlk_TracksConservativeOwner)
{
    Fixture f;
    f.onThread(0, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.load(f.a);
    });
    runAndCheck(f.sys);
    // RdBlk in I grants Exclusive and tracks the requester as a
    // conservative owner (E can silently become M).
    EXPECT_EQ(f.sys.corePair(0).lineState(f.a), L2State::Exclusive);
    ASSERT_TRUE(f.sys.directory().tracks(f.a));
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::O);
    EXPECT_EQ(f.sys.directory().trackedOwner(f.a), 0);
    // No probes were needed: untracked means uncached.
    EXPECT_EQ(f.sys.directory().probesSent(), 0u);
}

TEST(Table1, IState_RdBlkM_TracksOwner)
{
    Fixture f;
    f.onThread(0, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(f.a, 5);
    });
    runAndCheck(f.sys);
    EXPECT_EQ(f.sys.corePair(0).lineState(f.a), L2State::Modified);
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::O);
    EXPECT_EQ(f.sys.directory().trackedOwner(f.a), 0);
    EXPECT_EQ(f.sys.directory().probesSent(), 0u);
}

TEST(Table1, IState_TccRdBlk_TracksTccAsSharer)
{
    Fixture f;
    GpuKernel k{"read", 1, [&](WaveCtx &wf) -> SimTask {
                    co_await wf.vload(f.a, 4, 4);
                }};
    f.onThread(0, [&, k](CpuCtx &cpu) -> SimTask {
        co_await cpu.launchKernel(k);
    });
    runAndCheck(f.sys);
    ASSERT_TRUE(f.sys.directory().tracks(f.a));
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::S);
    EXPECT_TRUE(f.sys.directory().isSharer(
        f.a, f.sys.config().topo.tccId(0)));
}

// ----- S-state transitions -------------------------------------------

TEST(Table1, SState_ReadsElideProbesAndForceShared)
{
    Fixture f;
    // Two readers on different CorePairs.
    f.onThread(0, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.load(f.a);
    });
    f.onThread(2, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(2000);
        co_await cpu.load(f.a);
    });
    runAndCheck(f.sys);
    // Reader 1 got E (tracked O); reader 2's read probed the owner
    // (clean downgrade) -> directory state became S with both sharers.
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::S);
    EXPECT_TRUE(f.sys.directory().isSharer(f.a, 0));
    EXPECT_TRUE(f.sys.directory().isSharer(f.a, 1));
    EXPECT_EQ(f.sys.corePair(0).lineState(f.a), L2State::Shared);
    EXPECT_EQ(f.sys.corePair(1).lineState(f.a), L2State::Shared);
    // Exactly one probe (the owner downgrade); a third read must
    // elide probes entirely.
    EXPECT_EQ(f.sys.directory().probesSent(), 1u);
}

TEST(Table1, SState_ThirdReadServedFromLlcNoProbes)
{
    Fixture f;
    for (unsigned t : {0u, 2u, 4u}) {
        f.onThread(t, [&, t](CpuCtx &cpu) -> SimTask {
            co_await cpu.compute(t * 2000);
            co_await cpu.load(f.a);
        });
    }
    runAndCheck(f.sys);
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::S);
    EXPECT_TRUE(f.sys.directory().isSharer(f.a, 2));
    // Only the first downgrade probe; the third read hit S state.
    EXPECT_EQ(f.sys.directory().probesSent(), 1u);
}

TEST(Table1, SState_RdBlkM_MulticastsInvalidations)
{
    Fixture f;
    // Three sharers, then core on pair 3 writes.
    for (unsigned t : {0u, 2u, 4u}) {
        f.onThread(t, [&, t](CpuCtx &cpu) -> SimTask {
            co_await cpu.compute(t * 1500);
            co_await cpu.load(f.a);
        });
    }
    f.onThread(6, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(20000);
        co_await cpu.store(f.a, 7);
    });
    runAndCheck(f.sys);
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::O);
    EXPECT_EQ(f.sys.directory().trackedOwner(f.a), 3);
    EXPECT_FALSE(f.sys.corePair(0).hasLine(f.a));
    EXPECT_FALSE(f.sys.corePair(1).hasLine(f.a));
    EXPECT_FALSE(f.sys.corePair(2).hasLine(f.a));
    EXPECT_EQ(f.sys.corePair(3).lineState(f.a), L2State::Modified);
    // 1 downgrade (second read) + 3 multicast invals (not a
    // broadcast to TCC as the baseline would).
    EXPECT_EQ(f.sys.directory().probesSent(), 4u);
}

// ----- O-state transitions -------------------------------------------

TEST(Table1, OState_RdBlk_ProbesOnlyOwnerDirtyStaysO)
{
    Fixture f;
    f.onThread(0, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(f.a, 99); // owner, dirty
    });
    f.onThread(2, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(5000);
        std::uint64_t v = co_await cpu.load(f.a);
        EXPECT_EQ(v, 99u);
    });
    runAndCheck(f.sys);
    // Dirty downgrade: owner keeps ownership (L2 state Owned),
    // directory stays O, reader tracked as sharer.
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::O);
    EXPECT_EQ(f.sys.directory().trackedOwner(f.a), 0);
    EXPECT_TRUE(f.sys.directory().isSharer(f.a, 1));
    EXPECT_EQ(f.sys.corePair(0).lineState(f.a), L2State::Owned);
    EXPECT_EQ(f.sys.corePair(1).lineState(f.a), L2State::Shared);
    EXPECT_EQ(f.sys.directory().probesSent(), 1u);
}

TEST(Table1, OState_CleanDowngradeBecomesS)
{
    Fixture f;
    f.onThread(0, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.load(f.a); // E, clean (conservative O at dir)
    });
    f.onThread(2, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(5000);
        co_await cpu.load(f.a);
    });
    runAndCheck(f.sys);
    // Footnote f: E downgrades to S; the clean probe response lets the
    // directory demote the line to S with both caches as sharers.
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::S);
    EXPECT_TRUE(f.sys.directory().isSharer(f.a, 0));
    EXPECT_TRUE(f.sys.directory().isSharer(f.a, 1));
}

TEST(Table1, OState_RdBlkM_OwnerChangeForwardsData)
{
    Fixture f;
    f.onThread(0, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(f.a, 123);
    });
    f.onThread(2, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(5000);
        std::uint64_t old_val = co_await cpu.atomic(
            f.a, AtomicOp::Add, 1);
        EXPECT_EQ(old_val, 123u);
    });
    runAndCheck(f.sys);
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::O);
    EXPECT_EQ(f.sys.directory().trackedOwner(f.a), 1);
    EXPECT_FALSE(f.sys.corePair(0).hasLine(f.a));
    EXPECT_EQ(f.sys.corePair(1).peekWord(f.a, 8), 124u);
}

TEST(Table1, OState_UpgradeGrantsWithoutData)
{
    Fixture f;
    std::uint64_t seen = 0;
    f.onThread(0, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(f.a, 50);     // owner M
    });
    f.onThread(2, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(5000);
        seen = co_await cpu.load(f.a);   // O/S sharing
        co_await cpu.compute(2000);
        co_await cpu.store(f.a, 60);     // new owner via RdBlkM
    });
    runAndCheck(f.sys);
    EXPECT_EQ(seen, 50u);
    EXPECT_EQ(f.sys.directory().trackedOwner(f.a), 1);
    EXPECT_EQ(f.sys.corePair(1).peekWord(f.a, 8), 60u);
    EXPECT_FALSE(f.sys.corePair(0).hasLine(f.a));
}

// ----- Victim transitions (Table I rows VicClean / VicDirty) ---------

TEST(Table1, VicCleanFromExclusiveOwnerFreesEntry)
{
    SystemConfig cfg = sharerTrackingConfig();
    shrinkForTorture(cfg);
    HsaSystem sys(cfg);
    // Fill enough lines mapping to one L2 set that an E line gets
    // evicted (VicClean, footnote g).
    Addr base = sys.alloc(64 * 64);
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        for (unsigned i = 0; i < 16; ++i)
            co_await cpu.load(base + i * 64 * 16); // same set
    });
    runAndCheck(sys);
    // The evicted (oldest) lines must no longer be tracked.
    unsigned tracked = 0;
    for (unsigned i = 0; i < 16; ++i)
        tracked += sys.directory().tracks(base + i * 64 * 16);
    EXPECT_LT(tracked, 16u);
    for (unsigned i = 0; i < 16; ++i) {
        if (!sys.corePair(0).hasLine(base + i * 64 * 16)) {
            EXPECT_FALSE(sys.directory().tracks(base + i * 64 * 16))
                << "evicted line " << i << " still tracked";
        }
    }
}

TEST(Table1, VicDirtyFromOwnerReconcilesLlc)
{
    SystemConfig cfg = sharerTrackingConfig();
    shrinkForTorture(cfg);
    HsaSystem sys(cfg);
    Addr base = sys.alloc(64 * 64);
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        for (unsigned i = 0; i < 8; ++i)
            co_await cpu.store(base + i * 64 * 16, 1000 + i);
        // Re-read through the protocol: evicted dirty lines must be
        // served from the LLC with the written values.
        for (unsigned i = 0; i < 8; ++i) {
            std::uint64_t v = co_await cpu.load(base + i * 64 * 16);
            EXPECT_EQ(v, 1000 + i);
        }
    });
    runAndCheck(sys);
}

// ----- Directory replacement (inclusive back-invalidation) -----------

TEST(Table1, DirectoryEvictionBackInvalidatesL2)
{
    SystemConfig cfg = sharerTrackingConfig();
    // Big L2s, tiny directory: dir evictions must shoot lines out of
    // the (otherwise unpressured) L2s.
    cfg.dir.dirEntries = 16;
    cfg.dir.dirAssoc = 2;
    HsaSystem sys(cfg);
    Addr base = sys.alloc(64 * 256);
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        for (unsigned i = 0; i < 64; ++i)
            co_await cpu.store(base + i * 64, i);
        // All values must survive the directory eviction round trips.
        for (unsigned i = 0; i < 64; ++i) {
            std::uint64_t v = co_await cpu.load(base + i * 64);
            EXPECT_EQ(v, i);
        }
    });
    runAndCheck(sys);
    EXPECT_GT(sys.stats().counter("system.dir.dirEvictions"), 0u);
    EXPECT_GT(sys.stats().counter("system.dir.backInvals"), 0u);
    // Inclusion: every cached line still tracked.
    sys.corePair(0).forEachLine([&](Addr a, L2State) {
        EXPECT_TRUE(sys.directory().tracks(a));
    });
}

// ----- WriteThrough / Atomic rows ------------------------------------

TEST(Table1, WriteThroughInvalidatesTrackedSharers)
{
    Fixture f;
    GpuKernel k{"wt", 1, [&](WaveCtx &wf) -> SimTask {
                    co_await wf.store(f.a, 0xAB, 4, Scope::System);
                }};
    f.onThread(0, [&, k](CpuCtx &cpu) -> SimTask {
        co_await cpu.load(f.a); // CPU sharer first
        co_await cpu.launchKernel(k);
        std::uint64_t v = co_await cpu.load(f.a, 4);
        EXPECT_EQ(v, 0xABu);
    });
    runAndCheck(f.sys);
}

TEST(Table1, AtomicInOStateElidesLlcRead)
{
    SystemConfig cfg = sharerTrackingConfig();
    cfg.injectIfetches = false; // keep the LLC-read counter exact
    Fixture f{cfg};
    GpuKernel k{"atomic", 1, [&](WaveCtx &wf) -> SimTask {
                    std::uint64_t old_val = co_await wf.atomic(
                        f.a, AtomicOp::Add, 5, 0, 8, Scope::System);
                    EXPECT_EQ(old_val, 77u);
                }};
    f.onThread(0, [&, k](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(f.a, 77); // dir state O, owner dirty
        std::uint64_t llc_reads_before =
            f.sys.stats().counter("system.dir.llc.reads");
        co_await cpu.launchKernel(k);
        std::uint64_t llc_reads_after =
            f.sys.stats().counter("system.dir.llc.reads");
        // The atomic's data came from the owner probe, not the LLC.
        EXPECT_EQ(llc_reads_after, llc_reads_before);
        std::uint64_t v = co_await cpu.load(f.a);
        EXPECT_EQ(v, 82u);
    });
    runAndCheck(f.sys);
}

// ----- DMA rows -------------------------------------------------------

TEST(Table1, DmaReadProbesOwnerOnly)
{
    Fixture f;
    f.onThread(0, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(f.a, 0x5A);
        std::uint64_t probes_before = f.sys.directory().probesSent();
        DataBlock blk = co_await f.sys.dma().readBlock(f.a);
        EXPECT_EQ(blk.get<std::uint64_t>(0), 0x5Au);
        EXPECT_EQ(f.sys.directory().probesSent(), probes_before + 1);
    });
    runAndCheck(f.sys);
    // DMA does not get tracked; the owner keeps the (downgraded) line.
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::O);
    EXPECT_EQ(f.sys.directory().trackedOwner(f.a), 0);
}

TEST(Table1, DmaWriteInvalidatesAndUntracks)
{
    Fixture f;
    f.onThread(0, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(f.a, 1);
        DataBlock blk;
        blk.set<std::uint64_t>(0, 0xFEED);
        co_await f.sys.dma().writeBlock(f.a, blk, makeMask(0, 8));
        std::uint64_t v = co_await cpu.load(f.a);
        EXPECT_EQ(v, 0xFEEDu);
    });
    runAndCheck(f.sys);
}

// ----- Owner-only tracking falls back to broadcast -------------------

TEST(Table1, OwnerTrackingBroadcastsSStateInvalidation)
{
    Fixture f{ownerTrackingConfig()};
    for (unsigned t : {0u, 2u}) {
        f.onThread(t, [&, t](CpuCtx &cpu) -> SimTask {
            co_await cpu.compute(t * 1500);
            co_await cpu.load(f.a);
        });
    }
    f.onThread(4, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(15000);
        co_await cpu.store(f.a, 3);
    });
    runAndCheck(f.sys);
    EXPECT_EQ(f.sys.directory().trackedState(f.a), DirState::O);
    EXPECT_EQ(f.sys.directory().trackedOwner(f.a), 2);
    // S-state invalidation had to broadcast: 3 L2s + TCC probed.
    // (1 downgrade for the second read + 4 invalidating probes.)
    EXPECT_EQ(f.sys.directory().probesSent(), 5u);
}

// ----- Limited pointers (footnote b) ----------------------------------

TEST(Table1, LimitedPointerOverflowPreservesBroadcast)
{
    Fixture f{limitedPointerConfig(1)};
    for (unsigned t : {0u, 2u, 4u}) {
        f.onThread(t, [&, t](CpuCtx &cpu) -> SimTask {
            co_await cpu.compute(t * 1500);
            co_await cpu.load(f.a);
        });
    }
    f.onThread(6, [&](CpuCtx &cpu) -> SimTask {
        co_await cpu.compute(20000);
        co_await cpu.store(f.a, 4);
        std::uint64_t v = co_await cpu.load(f.a);
        EXPECT_EQ(v, 4u);
    });
    runAndCheck(f.sys);
    // All former sharers were invalidated despite the overflowed list.
    EXPECT_FALSE(f.sys.corePair(0).hasLine(f.a));
    EXPECT_FALSE(f.sys.corePair(1).hasLine(f.a));
    EXPECT_FALSE(f.sys.corePair(2).hasLine(f.a));
    EXPECT_EQ(f.sys.corePair(3).lineState(f.a), L2State::Modified);
}

} // namespace
} // namespace hsc
