/** @file End-to-end smoke tests of the assembled system. */

#include "tests/protocol/test_util.hh"

namespace hsc
{
namespace
{

TEST(Smoke, SingleCpuStoreLoad)
{
    HsaSystem sys(baselineConfig());
    Addr a = sys.alloc(64);
    std::uint64_t got = 0;
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(a, 0xDEAD);
        got = co_await cpu.load(a);
    });
    runAndCheck(sys);
    EXPECT_EQ(got, 0xDEADu);
    EXPECT_EQ(sys.readWord<std::uint64_t>(a), 0u)
        << "line should still be dirty in the L2, not in memory";
    EXPECT_TRUE(sys.corePair(0).hasLine(a));
    EXPECT_EQ(sys.corePair(0).lineState(a), L2State::Modified);
}

TEST(Smoke, CrossCorePairTransfer)
{
    // Producer on CorePair 0, consumer on CorePair 1: the consumer's
    // RdBlk must pull dirty data via a downgrade probe.
    HsaSystem sys(baselineConfig());
    Addr data = sys.alloc(64);
    Addr flag = sys.alloc(64);
    std::uint64_t got = 0;

    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(data, 1234);
        co_await cpu.store(flag, 1);
    });
    // Thread ids round-robin over cores; thread 2 lands on CorePair 1.
    sys.addCpuThread([&](CpuCtx &) -> SimTask { co_return; });
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        while (co_await cpu.load(flag) == 0)
            co_await cpu.compute(50);
        got = co_await cpu.load(data);
    });

    runAndCheck(sys);
    EXPECT_EQ(got, 1234u);
    // Producer downgraded to Owned, consumer holds Shared.
    EXPECT_EQ(sys.corePair(0).lineState(data), L2State::Owned);
    EXPECT_EQ(sys.corePair(1).lineState(data), L2State::Shared);
}

TEST(Smoke, ExclusiveGrantWhenSole)
{
    HsaSystem sys(baselineConfig());
    Addr a = sys.alloc(64);
    sys.writeWord<std::uint64_t>(a, 77);
    std::uint64_t got = 0;
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        got = co_await cpu.load(a);
    });
    runAndCheck(sys);
    EXPECT_EQ(got, 77u);
    EXPECT_EQ(sys.corePair(0).lineState(a), L2State::Exclusive);
}

TEST(Smoke, CpuAtomicsAreAtomicAcrossCores)
{
    HsaSystem sys(baselineConfig());
    Addr ctr = sys.alloc(64);
    constexpr unsigned kThreads = 8, kIters = 25;
    for (unsigned t = 0; t < kThreads; ++t) {
        sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
            for (unsigned i = 0; i < kIters; ++i)
                co_await cpu.atomic(ctr, AtomicOp::Add, 1);
        });
    }
    runAndCheck(sys);
    // Read the final value through a fresh observer of the system.
    std::uint64_t final_val = 0;
    HsaSystem *s = &sys;
    (void)s;
    // The winning L2 holds the line dirty; peek it via the checker's
    // system-visible view after probing: use a CPU load.
    // (All threads completed, so any L2 copy is the current value.)
    for (unsigned i = 0; i < sys.numCorePairs(); ++i) {
        if (sys.corePair(i).hasLine(ctr))
            final_val = sys.corePair(i).peekWord(ctr, 8);
    }
    EXPECT_EQ(final_val, std::uint64_t(kThreads) * kIters);
}

TEST(Smoke, GpuKernelVectorRoundTrip)
{
    HsaSystem sys(baselineConfig());
    constexpr unsigned kWgs = 8, kLanes = 16;
    Addr in = sys.alloc(kWgs * kLanes * 4);
    Addr out = sys.alloc(kWgs * kLanes * 4);
    for (unsigned i = 0; i < kWgs * kLanes; ++i)
        sys.writeWord<std::uint32_t>(in + i * 4, i * 3);

    GpuKernel k;
    k.name = "scale";
    k.numWorkgroups = kWgs;
    k.body = [in, out](WaveCtx &wf) -> SimTask {
        Addr base = in + Addr(wf.workgroupId()) * wf.laneCount() * 4;
        Addr obase = out + Addr(wf.workgroupId()) * wf.laneCount() * 4;
        auto vals = co_await wf.vload(base, 4, 4);
        for (auto &v : vals)
            v = v * 2 + 1;
        co_await wf.vstore(obase, 4, 4, vals);
    };

    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.launchKernel(k);
    });
    runAndCheck(sys);
    for (unsigned i = 0; i < kWgs * kLanes; ++i) {
        EXPECT_EQ(sys.readWord<std::uint32_t>(out + i * 4), i * 6 + 1)
            << "element " << i;
    }
}

TEST(Smoke, GpuKernelWriteBackMode)
{
    SystemConfig cfg = baselineConfig();
    cfg.gpuWriteBack = true;
    HsaSystem sys(cfg);
    constexpr unsigned kWgs = 4, kLanes = 16;
    Addr out = sys.alloc(kWgs * kLanes * 4);

    GpuKernel k;
    k.name = "fill";
    k.numWorkgroups = kWgs;
    k.body = [out](WaveCtx &wf) -> SimTask {
        Addr base = out + Addr(wf.workgroupId()) * wf.laneCount() * 4;
        std::vector<std::uint64_t> vals(wf.laneCount());
        for (unsigned i = 0; i < wf.laneCount(); ++i)
            vals[i] = wf.workgroupId() * 100 + i;
        co_await wf.vstore(base, 4, 4, vals);
    };
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.launchKernel(k);
    });
    runAndCheck(sys);
    // Kernel-end release must have drained the write-back caches.
    for (unsigned wg = 0; wg < kWgs; ++wg) {
        for (unsigned i = 0; i < kLanes; ++i) {
            EXPECT_EQ(sys.readWord<std::uint32_t>(out +
                                                  (wg * kLanes + i) * 4),
                      wg * 100 + i);
        }
    }
}

TEST(Smoke, CpuGpuFlagHandshake)
{
    // CPU produces, GPU spins on an SLC flag, consumes, produces back.
    for (bool wb : {false, true}) {
        SystemConfig cfg = baselineConfig();
        cfg.gpuWriteBack = wb;
        HsaSystem sys(cfg);
        Addr data = sys.alloc(64);
        Addr flag = sys.alloc(64);
        Addr result = sys.alloc(64);

        GpuKernel k;
        k.name = "consumer";
        k.numWorkgroups = 1;
        k.body = [data, flag, result](WaveCtx &wf) -> SimTask {
            while (co_await wf.atomic(flag, AtomicOp::Load, 0, 0, 4,
                                      Scope::System) == 0) {
                co_await wf.compute(20);
            }
            auto v = co_await wf.load(data, 8, Scope::System);
            co_await wf.atomic(result, AtomicOp::Exch, v + 5, 0, 8,
                               Scope::System);
        };

        sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
            cpu.launchKernelAsync(k);
            co_await cpu.compute(500);
            co_await cpu.store(data, 42);
            co_await cpu.store(flag, 1, 4);
            co_await cpu.waitKernels();
        });
        runAndCheck(sys);
        EXPECT_EQ(sys.readWord<std::uint64_t>(result), 47u)
            << "gpuWriteBack=" << wb;
    }
}

TEST(Smoke, DmaCopy)
{
    HsaSystem sys(baselineConfig());
    constexpr unsigned kBlocks = 16;
    Addr src = sys.alloc(kBlocks * 64);
    Addr dst = sys.alloc(kBlocks * 64);
    for (unsigned i = 0; i < kBlocks * 8; ++i)
        sys.writeWord<std::uint64_t>(src + i * 8, i + 1);

    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        // Dirty a couple of source lines in the CPU cache first so the
        // DMA read has to probe them out.
        co_await cpu.store(src, 9999);
        co_await sys.dma().copyAsync(dst, src, kBlocks * 64);
    });
    runAndCheck(sys);
    EXPECT_EQ(sys.readWord<std::uint64_t>(dst), 9999u);
    for (unsigned i = 8; i < kBlocks * 8; ++i)
        EXPECT_EQ(sys.readWord<std::uint64_t>(dst + i * 8), i + 1);
}

TEST(Smoke, AllConfigsRunTheSameProgram)
{
    for (const SystemConfig &cfg : allDirConfigs()) {
        HsaSystem sys(cfg);
        Addr a = sys.alloc(256);
        std::uint64_t sum = 0;
        sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
            for (unsigned i = 0; i < 32; ++i)
                co_await cpu.store(a + (i % 4) * 64 + (i / 4) * 8, i);
            for (unsigned i = 0; i < 32; ++i)
                sum += co_await cpu.load(a + (i % 4) * 64 + (i / 4) * 8);
        });
        ASSERT_TRUE(sys.run()) << cfg.label;
        EXPECT_EQ(sum, 496u) << cfg.label;
        sum = 0;
    }
}

} // namespace
} // namespace hsc
