/**
 * @file
 * Message-level test harness for the directory: fake clients with
 * scripted cache states stand in for the CorePairs/TCC/DMA so each
 * directory transaction (Fig. 2 / Table I) can be exercised and
 * observed in isolation.
 */

#ifndef HSC_TESTS_PROTOCOL_DIR_HARNESS_HH
#define HSC_TESTS_PROTOCOL_DIR_HARNESS_HH

#include <optional>
#include <vector>

#include "mem/main_memory.hh"
#include "protocol/dir/directory.hh"

namespace hsc
{

/** One fake coherence client with a scripted probe answer per line. */
class FakeClient
{
  public:
    /** How this client answers a probe for a given line. */
    struct LineScript
    {
        Addr addr;
        bool hit = false;
        bool hasData = false;
        bool dirty = false;
        std::uint64_t value = 0; ///< stored at offset 0
        bool cancelledVic = false;
    };

    FakeClient(MachineId id, MessageBuffer &to_dir) : id(id), toDir(to_dir)
    {}

    void
    bind(MessageBuffer &from_dir)
    {
        from_dir.setConsumer([this](Msg &&m) { receive(std::move(m)); });
    }

    void script(LineScript s) { scripts.push_back(s); }

    /** Auto-ack SysResps with Unblock (like a real L2). */
    bool autoUnblock = true;

    /** Every message this client received, in order. */
    std::vector<Msg> received;

    /** Count of received messages of @p t. */
    unsigned
    count(MsgType t) const
    {
        unsigned n = 0;
        for (const Msg &m : received)
            n += (m.type == t);
        return n;
    }

    /** Last received message of @p t, if any. */
    std::optional<Msg>
    last(MsgType t) const
    {
        for (auto it = received.rbegin(); it != received.rend(); ++it) {
            if (it->type == t)
                return *it;
        }
        return std::nullopt;
    }

    /** Send an arbitrary request to the directory. */
    void
    send(Msg m)
    {
        m.sender = id;
        toDir.enqueue(std::move(m));
    }

    MachineId machineId() const { return id; }

  private:
    void
    receive(Msg &&m)
    {
        received.push_back(m);
        if (m.type == MsgType::PrbInv || m.type == MsgType::PrbDowngrade) {
            Msg resp;
            resp.type = MsgType::PrbResp;
            resp.addr = m.addr;
            resp.txnId = m.txnId;
            resp.sender = id;
            for (const LineScript &s : scripts) {
                if (s.addr == m.addr) {
                    resp.hit = s.hit;
                    resp.hasData = s.hasData;
                    resp.dirty = s.dirty;
                    resp.cancelledVic = s.cancelledVic;
                    resp.data.set<std::uint64_t>(0, s.value);
                    break;
                }
            }
            toDir.enqueue(std::move(resp));
            return;
        }
        if (m.type == MsgType::SysResp && autoUnblock) {
            Msg unblock;
            unblock.type = MsgType::Unblock;
            unblock.addr = m.addr;
            unblock.sender = id;
            toDir.enqueue(std::move(unblock));
        }
    }

    MachineId id;
    MessageBuffer &toDir;
    std::vector<LineScript> scripts;
};

/** A directory + fake clients test bench. */
class DirBench
{
  public:
    explicit DirBench(DirConfig cfg = {}, Topology topo = {2, 1})
        : mem("mem", eq, 1000, 100)
    {
        DirParams params;
        params.topo = topo;
        params.cfg = cfg;
        params.llc.geom = {16, 2}; // small: evictions reachable
        params.dirLatency = 10;
        params.llcLatency = 10;
        dir = std::make_unique<DirectoryController>(
            "dir", eq, ClockDomain(100), params, mem);
        for (unsigned i = 0; i < topo.numClients(); ++i) {
            toDir.push_back(
                std::make_unique<MessageBuffer>("to" + std::to_string(i),
                                                eq, 50));
            fromDir.push_back(std::make_unique<MessageBuffer>(
                "from" + std::to_string(i), eq, 50));
            dir->bindFromClient(*toDir[i]);
            dir->bindToClient(MachineId(i), *fromDir[i]);
            clients.push_back(
                std::make_unique<FakeClient>(MachineId(i), *toDir[i]));
            clients.back()->bind(*fromDir[i]);
        }
        dir->regStats(stats);
    }

    /** Run the event queue dry. */
    void settle() { eq.run(); }

    FakeClient &client(unsigned i) { return *clients[i]; }

    EventQueue eq;
    StatRegistry stats;
    MainMemory mem;
    std::unique_ptr<DirectoryController> dir;
    std::vector<std::unique_ptr<MessageBuffer>> toDir;
    std::vector<std::unique_ptr<MessageBuffer>> fromDir;
    std::vector<std::unique_ptr<FakeClient>> clients;
};

} // namespace hsc

#endif // HSC_TESTS_PROTOCOL_DIR_HARNESS_HH
