/**
 * @file
 * Message-level unit tests of the *tracking* directory (§IV) against
 * scripted fake clients, complementing the system-level Table I
 * scenario tests: exact probe targeting, LLC-read elision, dir-as-
 * cache evictions, limited pointers, and the WT tracking rules.
 * Topology: 2 CorePairs (0, 1), TCC (2), DMA (3).
 */

#include <gtest/gtest.h>

#include "tests/protocol/dir_harness.hh"

namespace hsc
{
namespace
{

constexpr Addr A = 0x4000;

Msg
req(MsgType t, Addr a = A)
{
    Msg m;
    m.type = t;
    m.addr = a;
    return m;
}

DirConfig
sharers()
{
    DirConfig cfg;
    cfg.tracking = DirTracking::Sharers;
    return cfg;
}

DirConfig
owner()
{
    DirConfig cfg;
    cfg.tracking = DirTracking::Owner;
    return cfg;
}

TEST(DirTrackedUnit, IStateReadsNeverProbe)
{
    DirBench b(sharers());
    b.client(0).send(req(MsgType::RdBlk));
    b.client(1).send(req(MsgType::RdBlkM, A + 64));
    b.settle();
    EXPECT_EQ(b.dir->probesSent(), 0u);
    EXPECT_GT(b.stats.counter("dir.probesElided"), 0u);
    EXPECT_EQ(b.dir->trackedOwner(A), 0);
    EXPECT_EQ(b.dir->trackedOwner(A + 64), 1);
}

TEST(DirTrackedUnit, SStateReadHitsLlcWithoutMemory)
{
    DirBench b(sharers());
    // Seed the LLC via a clean victim, then track two readers.
    Msg vic = req(MsgType::VicClean);
    vic.hasData = true;
    vic.data.set<std::uint64_t>(0, 31);
    b.client(0).send(vic);
    b.settle();
    // The vic was untracked -> dropped; use memory path to establish S.
    b.mem.functionalWriteWord<std::uint64_t>(A, 31);
    b.client(0).send(req(MsgType::RdBlkS));
    b.settle();
    std::uint64_t mem_reads = b.mem.reads();
    // Second RdBlkS: S state -> LLC read; LLC missed though (victim
    // cache never filled) -> memory.  Both reads granted Shared.
    b.client(1).send(req(MsgType::RdBlkS));
    b.settle();
    EXPECT_EQ(b.dir->probesSent(), 0u);
    auto r = b.client(1).last(MsgType::SysResp);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->grant, Grant::Shared);
    EXPECT_EQ(r->data.get<std::uint64_t>(0), 31u);
    EXPECT_EQ(b.mem.reads(), mem_reads + 1);
    EXPECT_TRUE(b.dir->isSharer(A, 0));
    EXPECT_TRUE(b.dir->isSharer(A, 1));
}

TEST(DirTrackedUnit, OStateReadProbesExactlyTheOwner)
{
    DirBench b(sharers());
    b.client(0).send(req(MsgType::RdBlkM)); // owner 0
    b.settle();
    b.client(0).script({A, true, true, true, 555});
    std::uint64_t mem_reads = b.mem.reads();
    b.client(1).send(req(MsgType::RdBlk));
    b.settle();
    EXPECT_EQ(b.client(0).count(MsgType::PrbDowngrade), 1u);
    EXPECT_EQ(b.client(2).received.size(), 0u) << "TCC untouched";
    EXPECT_EQ(b.mem.reads(), mem_reads) << "LLC/memory read elided";
    auto r = b.client(1).last(MsgType::SysResp);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->grant, Grant::Shared);
    EXPECT_EQ(r->data.get<std::uint64_t>(0), 555u);
    // Dirty downgrade: still O, owner unchanged, reader tracked.
    EXPECT_EQ(b.dir->trackedState(A), DirState::O);
    EXPECT_EQ(b.dir->trackedOwner(A), 0);
    EXPECT_TRUE(b.dir->isSharer(A, 1));
}

TEST(DirTrackedUnit, OwnerTrackingBroadcastsWhereSharersMulticasts)
{
    for (bool use_sharers : {false, true}) {
        DirBench b(use_sharers ? sharers() : owner());
        b.mem.functionalWriteWord<std::uint64_t>(A, 1);
        b.client(0).send(req(MsgType::RdBlkS));
        b.settle();
        // Writer 1 invalidates: sharer-tracking probes only client 0;
        // owner-tracking must broadcast (client 0 + TCC; requester
        // excluded).
        std::uint64_t before = b.dir->probesSent();
        b.client(1).send(req(MsgType::RdBlkM));
        b.settle();
        std::uint64_t sent = b.dir->probesSent() - before;
        if (use_sharers)
            EXPECT_EQ(sent, 1u);
        else
            EXPECT_EQ(sent, 2u); // L2 0 + TCC
    }
}

TEST(DirTrackedUnit, UpgradeFromTrackedSharerCarriesNoData)
{
    DirBench b(sharers());
    b.mem.functionalWriteWord<std::uint64_t>(A, 5);
    b.client(0).send(req(MsgType::RdBlkS));
    b.client(1).send(req(MsgType::RdBlkS));
    b.settle();
    std::uint64_t mem_reads = b.mem.reads();
    b.client(0).send(req(MsgType::RdBlkM)); // upgrade
    b.settle();
    auto r = b.client(0).last(MsgType::SysResp);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->grant, Grant::Modified);
    EXPECT_FALSE(r->hasData) << "tracked sharer keeps its own copy";
    EXPECT_EQ(b.mem.reads(), mem_reads) << "no backing read either";
    EXPECT_EQ(b.client(1).count(MsgType::PrbInv), 1u);
    EXPECT_EQ(b.dir->trackedOwner(A), 0);
}

TEST(DirTrackedUnit, WriteThroughTracksRetainingTcc)
{
    DirBench b(sharers());
    Msg wt = req(MsgType::WriteThrough);
    wt.hasData = true;
    wt.mask = makeMask(0, 4);
    wt.data.set<std::uint32_t>(0, 0xAB);
    wt.hit = true; // write-through-mode TCC retains its copy
    b.client(2).send(wt);
    b.settle();
    ASSERT_TRUE(b.dir->tracks(A));
    EXPECT_EQ(b.dir->trackedState(A), DirState::S);
    EXPECT_TRUE(b.dir->isSharer(A, 2));

    // A CPU write must now invalidate exactly the TCC.
    b.client(0).send(req(MsgType::RdBlkM));
    b.settle();
    EXPECT_EQ(b.client(2).count(MsgType::PrbInv), 1u);
    EXPECT_EQ(b.client(1).count(MsgType::PrbInv), 0u);
}

TEST(DirTrackedUnit, WriteBackModeEvictionDoesNotTrack)
{
    DirBench b(sharers());
    Msg wt = req(MsgType::WriteThrough);
    wt.hasData = true;
    wt.hit = false; // WB-mode eviction: the TCC dropped the line
    b.client(2).send(wt);
    b.settle();
    EXPECT_FALSE(b.dir->tracks(A));
}

TEST(DirTrackedUnit, DirEvictionBackInvalidatesTrackedSet)
{
    DirConfig cfg = sharers();
    cfg.dirEntries = 4;
    cfg.dirAssoc = 4; // one set
    DirBench b(cfg);
    for (unsigned i = 0; i < 4; ++i)
        b.client(0).send(req(MsgType::RdBlkM, A + i * 64));
    b.settle();
    EXPECT_EQ(b.dir->trackedEntries(), 4u);
    // Script the victim's owner to return dirty data on back-inval.
    for (unsigned i = 0; i < 5; ++i)
        b.client(0).script({A + i * 64, true, true, true, 900 + i});
    b.client(1).send(req(MsgType::RdBlk, A + 4 * 64));
    b.settle();
    EXPECT_EQ(b.stats.counter("dir.dirEvictions"), 1u);
    EXPECT_GE(b.client(0).count(MsgType::PrbInv), 1u);
    EXPECT_EQ(b.dir->trackedEntries(), 4u);
    // The back-invalidated dirty data landed in the LLC.
    unsigned in_llc = 0;
    for (unsigned i = 0; i < 4; ++i)
        in_llc += (b.dir->llc().peek(A + i * 64) != nullptr);
    EXPECT_EQ(in_llc, 1u);
}

TEST(DirTrackedUnit, LimitedPointerOverflowBroadcasts)
{
    DirConfig cfg = sharers();
    cfg.maxSharerPointers = 1;
    DirBench b(cfg);
    b.mem.functionalWriteWord<std::uint64_t>(A, 1);
    b.client(0).send(req(MsgType::RdBlkS));
    b.client(1).send(req(MsgType::RdBlkS));
    b.settle();
    // Two sharers but one pointer: the second overflowed.
    std::uint64_t before = b.dir->probesSent();
    Msg wr = req(MsgType::DmaWrite);
    wr.hasData = true;
    wr.mask = FullMask;
    b.client(3).send(wr);
    b.settle();
    // Broadcast: both L2s + TCC.
    EXPECT_EQ(b.dir->probesSent() - before, 3u);
}

TEST(DirTrackedUnit, AtomicInOStateUsesOwnerData)
{
    DirBench b(owner());
    b.client(0).send(req(MsgType::RdBlkM));
    b.settle();
    b.client(0).script({A, true, true, true, 40});
    std::uint64_t mem_reads = b.mem.reads();
    Msg at = req(MsgType::Atomic);
    at.atomicOp = AtomicOp::Add;
    at.atomicOperand = 2;
    at.atomicOffset = 0;
    at.atomicSize = 8;
    b.client(2).send(at);
    b.settle();
    auto r = b.client(2).last(MsgType::AtomicResp);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->atomicResult, 40u);
    EXPECT_EQ(b.mem.reads(), mem_reads) << "owner data, no LLC/mem read";
    EXPECT_FALSE(b.dir->tracks(A)) << "atomic frees the entry";
    EXPECT_EQ(b.mem.functionalReadWord<std::uint64_t>(A), 42u)
        << "merged dirty data + atomic result persisted";
}

TEST(DirTrackedUnit, VicDirtyFromOwnerDemotesToSharedWithSharers)
{
    DirBench b(sharers());
    b.client(0).send(req(MsgType::RdBlkM));
    b.settle();
    b.client(0).script({A, true, true, true, 77});
    b.client(1).send(req(MsgType::RdBlk)); // dirty-shared reader
    b.settle();
    ASSERT_EQ(b.dir->trackedState(A), DirState::O);
    Msg vic = req(MsgType::VicDirty);
    vic.hasData = true;
    vic.dirty = true;
    vic.data.set<std::uint64_t>(0, 77);
    b.client(0).send(vic);
    b.settle();
    // Owner left, a sharer remains: S, reconciled into the LLC.
    ASSERT_TRUE(b.dir->tracks(A));
    EXPECT_EQ(b.dir->trackedState(A), DirState::S);
    EXPECT_TRUE(b.dir->isSharer(A, 1));
    ASSERT_NE(b.dir->llc().peek(A), nullptr);
    EXPECT_EQ(b.dir->llc().peek(A)->get<std::uint64_t>(0), 77u);
}

TEST(DirTrackedUnit, LastSharerVicCleanFreesEntry)
{
    DirBench b(sharers());
    b.mem.functionalWriteWord<std::uint64_t>(A, 9);
    b.client(0).send(req(MsgType::RdBlkS));
    b.settle();
    ASSERT_TRUE(b.dir->tracks(A));
    Msg vic = req(MsgType::VicClean);
    vic.hasData = true;
    b.client(0).send(vic);
    b.settle();
    EXPECT_FALSE(b.dir->tracks(A));
}

TEST(DirTrackedUnit, DmaDoesNotGetTracked)
{
    DirBench b(sharers());
    Msg rd = req(MsgType::DmaRead);
    b.client(3).send(rd);
    b.settle();
    EXPECT_FALSE(b.dir->tracks(A));
    EXPECT_EQ(b.dir->probesSent(), 0u) << "I state: no probes for DMA";
}

} // namespace
} // namespace hsc
