/**
 * @file
 * Unit tests of the LLC victim cache: allocation policy, write-through
 * vs write-back, sticky dirty bit, eviction write-backs, masked
 * merges, and invalidation.
 */

#include <gtest/gtest.h>

#include "protocol/dir/llc.hh"

namespace hsc
{
namespace
{

struct LlcBench
{
    explicit LlcBench(bool wb)
        : mem("mem", eq, 10, 1),
          llc("llc", LlcParams{{4, 2}, wb}, mem)
    {
        llc.regStats(stats);
    }

    EventQueue eq;
    StatRegistry stats;
    MainMemory mem;
    LlcCache llc;
};

DataBlock
blockWith(std::uint64_t v)
{
    DataBlock b;
    b.set<std::uint64_t>(0, v);
    return b;
}

TEST(Llc, MissThenVictimWriteThenHit)
{
    LlcBench b(false);
    EXPECT_FALSE(b.llc.read(0x100).has_value());
    b.llc.victimWrite(0x100, blockWith(42), false, true);
    auto r = b.llc.read(0x100);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->get<std::uint64_t>(0), 42u);
    EXPECT_EQ(b.stats.counter("llc.readHits"), 1u);
    EXPECT_EQ(b.stats.counter("llc.reads"), 2u);
}

TEST(Llc, WriteThroughAlsoWritesMemory)
{
    LlcBench b(false);
    b.llc.victimWrite(0x100, blockWith(7), false, true);
    EXPECT_EQ(b.mem.functionalReadWord<std::uint64_t>(0x100), 7u);
    EXPECT_EQ(b.mem.writes(), 1u);
}

TEST(Llc, WriteThroughCanSkipMemoryForCleanVictims)
{
    LlcBench b(false);
    b.llc.victimWrite(0x100, blockWith(7), false, false); // §III-B
    EXPECT_EQ(b.mem.writes(), 0u);
    EXPECT_TRUE(b.llc.read(0x100).has_value());
}

TEST(Llc, WriteBackDefersMemory)
{
    LlcBench b(true);
    b.llc.victimWrite(0x100, blockWith(9), true, false);
    EXPECT_EQ(b.mem.writes(), 0u);
    EXPECT_TRUE(b.llc.lineDirty(0x100));
}

TEST(Llc, DirtyBitIsSticky)
{
    LlcBench b(true);
    b.llc.victimWrite(0x100, blockWith(1), true, false);
    b.llc.victimWrite(0x100, blockWith(2), false, false);
    EXPECT_TRUE(b.llc.lineDirty(0x100));
    auto r = b.llc.read(0x100);
    EXPECT_EQ(r->get<std::uint64_t>(0), 2u);
}

TEST(Llc, EvictionWritesBackDirtyLines)
{
    LlcBench b(true); // 4 sets x 2 ways; set stride = 4*64 = 256
    b.llc.victimWrite(0x000, blockWith(11), true, false);
    b.llc.victimWrite(0x100, blockWith(22), true, false);
    EXPECT_EQ(b.mem.writes(), 0u);
    b.llc.victimWrite(0x200, blockWith(33), true, false); // evicts one
    EXPECT_EQ(b.mem.writes(), 1u);
    EXPECT_EQ(b.stats.counter("llc.evictions"), 1u);
    EXPECT_EQ(b.stats.counter("llc.dirtyEvictions"), 1u);
}

TEST(Llc, CleanEvictionsSilent)
{
    LlcBench b(true);
    for (Addr a : {Addr(0x000), Addr(0x100), Addr(0x200)})
        b.llc.victimWrite(a, blockWith(1), false, false);
    EXPECT_EQ(b.mem.writes(), 0u);
    EXPECT_EQ(b.stats.counter("llc.evictions"), 1u);
    EXPECT_EQ(b.stats.counter("llc.dirtyEvictions"), 0u);
}

TEST(Llc, MergeIfPresentMissReturnsFalse)
{
    LlcBench b(false);
    EXPECT_FALSE(b.llc.mergeIfPresent(0x100, blockWith(1), FullMask));
}

TEST(Llc, MergeIfPresentWriteThroughPropagates)
{
    LlcBench b(false);
    b.llc.victimWrite(0x100, blockWith(0xAAAA), false, true);
    DataBlock upd;
    upd.set<std::uint32_t>(8, 0xBB);
    EXPECT_TRUE(b.llc.mergeIfPresent(0x100, upd, makeMask(8, 4)));
    // Line merged, memory updated (WT), other bytes intact.
    EXPECT_EQ(b.llc.read(0x100)->get<std::uint64_t>(0), 0xAAAAu);
    EXPECT_EQ(b.llc.read(0x100)->get<std::uint32_t>(8), 0xBBu);
    EXPECT_EQ(b.mem.functionalReadWord<std::uint32_t>(0x108), 0xBBu);
}

TEST(Llc, MergeIfPresentWriteBackDirties)
{
    LlcBench b(true);
    b.llc.victimWrite(0x100, blockWith(1), false, false);
    EXPECT_FALSE(b.llc.lineDirty(0x100));
    DataBlock upd;
    EXPECT_TRUE(b.llc.mergeIfPresent(0x100, upd, makeMask(0, 8)));
    EXPECT_TRUE(b.llc.lineDirty(0x100));
    EXPECT_EQ(b.mem.writes(), 0u);
}

TEST(Llc, InvalidateFlushesDirtyData)
{
    LlcBench b(true);
    b.llc.victimWrite(0x100, blockWith(5), true, false);
    b.llc.invalidate(0x100);
    EXPECT_FALSE(b.llc.read(0x100).has_value());
    EXPECT_EQ(b.mem.functionalReadWord<std::uint64_t>(0x100), 5u);
}

TEST(Llc, InvalidateCleanIsSilent)
{
    LlcBench b(false);
    b.llc.victimWrite(0x100, blockWith(5), false, true);
    unsigned writes = unsigned(b.mem.writes());
    b.llc.invalidate(0x100);
    EXPECT_EQ(b.mem.writes(), writes);
    EXPECT_FALSE(b.llc.read(0x100).has_value());
}

TEST(Llc, PeekDoesNotDisturbState)
{
    LlcBench b(false);
    EXPECT_EQ(b.llc.peek(0x100), nullptr);
    b.llc.victimWrite(0x100, blockWith(3), false, true);
    ASSERT_NE(b.llc.peek(0x100), nullptr);
    EXPECT_EQ(b.llc.peek(0x100)->get<std::uint64_t>(0), 3u);
}

} // namespace
} // namespace hsc
