/**
 * @file
 * Tier-2 fault-injection stress tests (jitter sweep).
 *
 * The same RandomTester schedule runs across several fault schedules
 * (no faults, mild jitter, heavy jitter + spikes).  Fault injection is
 * semantics-preserving — each link stays FIFO — so a correct protocol
 * must reach the *identical* final memory image every time; any
 * divergence is a latent timing-dependent coherence bug.
 */

#include <gtest/gtest.h>

#include "core/random_tester.hh"

namespace hsc
{
namespace
{

std::vector<FaultConfig>
sweepSchedules()
{
    std::vector<FaultConfig> schedules;
    schedules.emplace_back(); // schedule 0: no faults (reference)

    FaultConfig mild;
    mild.enabled = true;
    mild.seed = 11;
    mild.maxJitter = 6;
    schedules.push_back(mild);

    FaultConfig heavy;
    heavy.enabled = true;
    heavy.seed = 22;
    heavy.maxJitter = 25;
    heavy.spikePercent = 5;
    heavy.spikeCycles = 300;
    schedules.push_back(heavy);

    FaultConfig spiky;
    spiky.enabled = true;
    spiky.seed = 33;
    spiky.maxJitter = 3;
    spiky.spikePercent = 20;
    spiky.spikeCycles = 1000;
    schedules.push_back(spiky);

    return schedules;
}

RandomTesterConfig
testerConfig()
{
    RandomTesterConfig tcfg;
    tcfg.seed = 777;
    tcfg.numLocations = 12;
    tcfg.roundsPerLocation = 4;
    tcfg.numCpuThreads = 4;
    tcfg.numGpuWorkgroups = 2;
    return tcfg;
}

void
runSweep(SystemConfig base)
{
    shrinkForTorture(base);
    JitterSweepResult res =
        runJitterSweep(base, testerConfig(), sweepSchedules());
    for (const std::string &f : res.failures)
        ADD_FAILURE() << f;
    ASSERT_TRUE(res.ok);
    ASSERT_EQ(res.imageHashes.size(), 4u);
    for (std::size_t i = 1; i < res.imageHashes.size(); ++i)
        EXPECT_EQ(res.imageHashes[i], res.imageHashes[0]);
}

TEST(FaultStress, BaselineSurvivesJitterSweep)
{
    runSweep(baselineConfig());
}

TEST(FaultStress, OwnerTrackingSurvivesJitterSweep)
{
    runSweep(ownerTrackingConfig());
}

TEST(FaultStress, SharerTrackingSurvivesJitterSweep)
{
    runSweep(sharerTrackingConfig());
}

TEST(FaultStress, BankedDirectorySurvivesJitterSweep)
{
    SystemConfig cfg = sharerTrackingConfig();
    cfg.numDirBanks = 2;
    runSweep(cfg);
}

TEST(FaultStress, SweepItselfIsDeterministic)
{
    SystemConfig base = baselineConfig();
    shrinkForTorture(base);
    JitterSweepResult a =
        runJitterSweep(base, testerConfig(), sweepSchedules());
    JitterSweepResult b =
        runJitterSweep(base, testerConfig(), sweepSchedules());
    ASSERT_TRUE(a.ok);
    ASSERT_TRUE(b.ok);
    EXPECT_EQ(a.imageHashes, b.imageHashes);
}

} // namespace
} // namespace hsc
