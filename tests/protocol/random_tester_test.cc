/**
 * @file
 * Randomized protocol property tests (gem5 Ruby-random-tester style).
 *
 * Every directory configuration × {normal, torture} geometry ×
 * {write-through, write-back} GPU caches must preserve coherence
 * under randomized multi-agent traffic.  Torture geometry shrinks
 * every structure so L2 victimisation, LLC replacement and directory
 * back-invalidation all fire constantly.
 */

#include "core/random_tester.hh"
#include "tests/protocol/test_util.hh"

namespace hsc
{
namespace
{

struct Param
{
    SystemConfig cfg;
    bool torture;
    bool gpuWriteBack;
    std::uint64_t seed;

    std::string
    name() const
    {
        std::string n = cfg.label;
        for (auto &c : n)
            if (!isalnum(static_cast<unsigned char>(c)))
                c = '_';
        n += torture ? "_torture" : "_normal";
        n += gpuWriteBack ? "_wb" : "_wt";
        n += "_s" + std::to_string(seed);
        return n;
    }
};

class RandomTesterFixture : public ::testing::TestWithParam<Param>
{
};

TEST_P(RandomTesterFixture, CoherentUnderRandomTraffic)
{
    Param p = GetParam();
    SystemConfig cfg = p.cfg;
    cfg.gpuWriteBack = p.gpuWriteBack;
    if (p.torture)
        shrinkForTorture(cfg);
    cfg.seed = p.seed;

    HsaSystem sys(cfg);
    RandomTesterConfig tcfg;
    tcfg.seed = p.seed;
    tcfg.numLocations = p.torture ? 32 : 16;
    tcfg.roundsPerLocation = 5;
    tcfg.allowDeviceScope = !p.gpuWriteBack;
    RandomTester tester(sys, tcfg);
    bool ok = tester.run();
    for (const auto &f : tester.failures())
        ADD_FAILURE() << f;
    ASSERT_TRUE(ok);

    CheckResult chk = checkCoherenceInvariants(sys);
    for (const auto &v : chk.violations)
        ADD_FAILURE() << "invariant: " << v;
    EXPECT_TRUE(chk.ok);
}

std::vector<Param>
makeParams()
{
    std::vector<Param> params;
    for (const SystemConfig &cfg : allDirConfigs()) {
        for (bool torture : {false, true}) {
            for (bool wb : {false, true}) {
                params.push_back(Param{cfg, torture, wb, 7});
            }
        }
    }
    // Extra seeds on the most intricate configurations.
    params.push_back(Param{sharerTrackingConfig(), true, true, 99});
    params.push_back(Param{sharerTrackingConfig(), true, false, 1234});
    params.push_back(Param{sharerTrackingConfig(), true, true, 4242});
    params.push_back(Param{ownerTrackingConfig(), true, true, 99});
    params.push_back(Param{ownerTrackingConfig(), true, false, 271828});
    params.push_back(Param{limitedPointerConfig(1), true, false, 5});
    params.push_back(Param{limitedPointerConfig(1), true, true, 314159});
    params.push_back(Param{baselineConfig(), true, true, 31});
    params.push_back(Param{baselineConfig(), true, false, 161803});
    params.push_back(Param{earlyRespConfig(), true, false, 662607});
    params.push_back(Param{llcWriteBackUseL3Config(), true, true, 1414});
    return params;
}

INSTANTIATE_TEST_SUITE_P(AllConfigs, RandomTesterFixture,
                         ::testing::ValuesIn(makeParams()),
                         [](const auto &info) { return info.param.name(); });

} // namespace
} // namespace hsc
