/**
 * @file
 * Tier-2: reliable-transport recovery soaks.  With drop/duplicate/
 * corrupt fault injection on every link, the transport must hand each
 * controller an exactly-once in-order message stream — so a checked
 * RandomTester soak passes with zero sanitizer violations, zero
 * ingress-dedup hits and no hangs, and a dead link escalates to a
 * structured DegradedReport instead of tripping the watchdog.
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/random_tester.hh"
#include "core/trace_replay.hh"

namespace hsc
{
namespace
{

RandomTesterConfig
testerConfig()
{
    RandomTesterConfig tcfg;
    tcfg.seed = 777;
    tcfg.numLocations = 12;
    tcfg.roundsPerLocation = 4;
    tcfg.numCpuThreads = 4;
    tcfg.numGpuWorkgroups = 2;
    return tcfg;
}

/** The ISSUE acceptance mix: 1% drop, 1% duplicate, 0.1% corrupt. */
FaultConfig
lossySchedule(std::uint64_t seed)
{
    FaultConfig fc;
    fc.enabled = true;
    fc.seed = seed;
    fc.dropPer10k = 100;
    fc.dupPer10k = 100;
    fc.corruptPer10k = 10;
    return fc;
}

void
runCheckedLossySoak(SystemConfig cfg, std::uint64_t fault_seed)
{
    shrinkForTorture(cfg);
    ASSERT_TRUE(cfg.check);  // sanitizer on (the default)
    cfg.transport.enabled = true;
    cfg.fault = lossySchedule(fault_seed);

    HsaSystem sys(cfg);
    RandomTester tester(sys, testerConfig());
    bool ok = tester.run();
    for (const std::string &f : tester.failures())
        ADD_FAILURE() << f;
    ASSERT_TRUE(ok) << sys.failReason();

    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_FALSE(sys.checker()->violated());
    EXPECT_GT(sys.checker()->transitionsChecked(), 1000u);

    // The wire really was lossy and the transport really recovered.
    TransportSummary ts = sys.transportSummary();
    EXPECT_TRUE(ts.enabled);
    EXPECT_GT(ts.retransmits, 0u);
    EXPECT_GT(ts.dupDrops + ts.corruptDrops, 0u);
    EXPECT_EQ(ts.degradedLinks, 0u);
    // Belt-and-braces controller guards never saw a duplicate leak
    // through the transport.
    EXPECT_EQ(sys.stats().sumMatching(cfg.name, ".ingress.dupDrops"), 0u);
}

TEST(RecoveryStress, BaselineSurvivesLossDupCorrupt)
{
    runCheckedLossySoak(baselineConfig(), 11);
}

TEST(RecoveryStress, EarlyRespSurvivesLossDupCorrupt)
{
    runCheckedLossySoak(earlyRespConfig(), 22);
}

TEST(RecoveryStress, BankedGpuWritebackSurvivesLossDupCorrupt)
{
    SystemConfig cfg = ownerTrackingConfig();
    cfg.numDirBanks = 2;
    cfg.gpuWriteBack = true;
    runCheckedLossySoak(cfg, 33);
}

TEST(RecoveryStress, RecoveredRunsAreDeterministic)
{
    // Retransmission and dedup are part of the deterministic schedule:
    // the same seeds reproduce the same final image and cycle count.
    auto once = [] {
        SystemConfig cfg = baselineConfig();
        shrinkForTorture(cfg);
        cfg.transport.enabled = true;
        cfg.fault = lossySchedule(44);
        HsaSystem sys(cfg);
        RandomTester tester(sys, testerConfig());
        EXPECT_TRUE(tester.run()) << sys.failReason();
        return std::pair(tester.imageHash(), sys.cpuCycles());
    };
    EXPECT_EQ(once(), once());
}

TEST(RecoveryStress, CleanTransportSweepMatchesLegacyImage)
{
    // Fault-free, the transport must not perturb the simulation:
    // the sweep's final memory images match the legacy delivery path.
    SystemConfig legacy = baselineConfig();
    shrinkForTorture(legacy);
    SystemConfig reliable = legacy;
    reliable.transport.enabled = true;

    std::vector<FaultConfig> schedules;
    schedules.emplace_back();  // no faults

    JitterSweepResult with_tp =
        runJitterSweep(reliable, testerConfig(), schedules);
    for (const std::string &f : with_tp.failures)
        ADD_FAILURE() << f;
    ASSERT_TRUE(with_tp.ok);
    JitterSweepResult without_tp =
        runJitterSweep(legacy, testerConfig(), schedules);
    ASSERT_TRUE(without_tp.ok);
    EXPECT_EQ(with_tp.imageHashes, without_tp.imageHashes);
}

TEST(RecoveryStress, DeadLinkEscalatesToDegradedReport)
{
    SystemConfig cfg = baselineConfig();
    shrinkForTorture(cfg);
    cfg.transport.enabled = true;
    cfg.transport.retryBudget = 6;  // degrade quickly
    cfg.fault.enabled = true;
    cfg.fault.deadLinks = {"toDir.b0c0"};

    HsaSystem sys(cfg);
    RandomTester tester(sys, testerConfig());
    bool ok = tester.run();

    // A clean failing run: structured diagnosis, no hang, no watchdog.
    EXPECT_FALSE(ok);
    EXPECT_TRUE(sys.degradedReport().degraded());
    EXPECT_FALSE(sys.hangReport().hung());
    std::string reason = sys.failReason();
    EXPECT_NE(reason.find("degraded"), std::string::npos) << reason;
    EXPECT_NE(reason.find("toDir.b0c0"), std::string::npos) << reason;
    ASSERT_EQ(sys.degradedReport().links.size(), 1u);
    EXPECT_EQ(sys.degradedReport().links[0].retries, 6u);
}

TEST(RecoveryStress, DegradedRunReplaysBitIdentically)
{
    // Satellite: a captured degraded-run trace must reproduce through
    // the JSON round trip, exactly like checker violations do.
    SystemConfig cfg = baselineConfig();
    shrinkForTorture(cfg);
    cfg.transport.enabled = true;
    cfg.transport.retryBudget = 6;
    cfg.fault.enabled = true;
    cfg.fault.deadLinks = {"toDir.b0c0"};

    RandomTesterConfig tcfg = testerConfig();
    TesterSchedule sched = buildTesterSchedule(tcfg);
    HsaSystem sys(cfg);
    RandomTester tester(sys, tcfg, sched);
    ASSERT_FALSE(tester.run());
    std::string reason = sys.failReason();

    FailureTrace t = captureFailureTrace("baseline", true, cfg, tcfg,
                                         sched, &sys, reason);
    FailureTrace rt = failureTraceFromJson(failureTraceToJson(t));
    EXPECT_EQ(rt.transport.enabled, true);
    EXPECT_EQ(rt.transport.retryBudget, 6u);
    EXPECT_EQ(rt.fault.deadLinks, cfg.fault.deadLinks);

    ReplayResult res = replayTrace(rt);
    EXPECT_TRUE(res.reproduced);
    EXPECT_EQ(res.failReason, reason);
}

TEST(RecoveryStress, RecoveredLossyRunReplaysToSameImage)
{
    // A *recovered* (passing) lossy run replays bit-identically too:
    // rebuild the config from a round-tripped trace and re-run.
    SystemConfig cfg = baselineConfig();
    shrinkForTorture(cfg);
    cfg.transport.enabled = true;
    cfg.fault = lossySchedule(55);

    RandomTesterConfig tcfg = testerConfig();
    TesterSchedule sched = buildTesterSchedule(tcfg);
    HsaSystem sys(cfg);
    RandomTester tester(sys, tcfg, sched);
    ASSERT_TRUE(tester.run()) << sys.failReason();

    FailureTrace t = captureFailureTrace("baseline", true, cfg, tcfg,
                                         sched, &sys, "");
    SystemConfig rebuilt = traceSystemConfig(
        failureTraceFromJson(failureTraceToJson(t)));
    HsaSystem sys2(rebuilt);
    RandomTester tester2(sys2, tcfg, sched);
    ASSERT_TRUE(tester2.run()) << sys2.failReason();
    EXPECT_EQ(tester2.imageHash(), tester.imageHash());
    EXPECT_EQ(sys2.cpuCycles(), sys.cpuCycles());
    EXPECT_EQ(sys2.transportSummary().retransmits,
              sys.transportSummary().retransmits);
}

} // namespace
} // namespace hsc
