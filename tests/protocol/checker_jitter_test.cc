/**
 * @file
 * Tier-2: the runtime sanitizer must produce zero false positives
 * while fault injection perturbs every link's timing.  Jitter changes
 * interleavings, not semantics — so a checked, jittered RandomTester
 * run has to pass with the checker demonstrably engaged.
 */

#include <gtest/gtest.h>

#include "core/random_tester.hh"

namespace hsc
{
namespace
{

RandomTesterConfig
testerConfig()
{
    RandomTesterConfig tcfg;
    tcfg.seed = 4242;
    tcfg.numLocations = 12;
    tcfg.roundsPerLocation = 4;
    tcfg.numCpuThreads = 4;
    tcfg.numGpuWorkgroups = 2;
    return tcfg;
}

void
runCheckedJitter(SystemConfig cfg, std::uint64_t fault_seed)
{
    shrinkForTorture(cfg);
    ASSERT_TRUE(cfg.check);  // sanitizer on (the default)
    cfg.fault.enabled = true;
    cfg.fault.seed = fault_seed;
    cfg.fault.maxJitter = 20;
    cfg.fault.spikePercent = 10;
    cfg.fault.spikeCycles = 500;

    HsaSystem sys(cfg);
    RandomTester tester(sys, testerConfig());
    bool ok = tester.run();
    for (const std::string &f : tester.failures())
        ADD_FAILURE() << f;
    ASSERT_TRUE(ok) << sys.failReason();

    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_FALSE(sys.checker()->violated());
    EXPECT_GT(sys.checker()->transitionsChecked(), 1000u);
    EXPECT_GT(sys.checker()->blocksShadowed(), 0u);
}

TEST(CheckerJitter, BaselineNoFalsePositivesUnderJitter)
{
    runCheckedJitter(baselineConfig(), 101);
}

TEST(CheckerJitter, EarlyRespNoFalsePositivesUnderJitter)
{
    runCheckedJitter(earlyRespConfig(), 202);
}

TEST(CheckerJitter, SharerTrackingNoFalsePositivesUnderJitter)
{
    runCheckedJitter(sharerTrackingConfig(), 303);
}

TEST(CheckerJitter, BankedGpuWritebackNoFalsePositivesUnderJitter)
{
    SystemConfig cfg = ownerTrackingConfig();
    cfg.numDirBanks = 2;
    cfg.gpuWriteBack = true;
    runCheckedJitter(cfg, 404);
}

TEST(CheckerJitter, CheckedSweepImageMatchesUncheckedSweep)
{
    // The satellite requirement head-on: --jitter and --check combined
    // must not perturb or fail the sweep.  The checker is a passive
    // observer, so final images with and without it are identical.
    SystemConfig checked = baselineConfig();
    shrinkForTorture(checked);
    SystemConfig unchecked = checked;
    unchecked.check = false;

    std::vector<FaultConfig> schedules;
    schedules.emplace_back();
    FaultConfig jitter;
    jitter.enabled = true;
    jitter.seed = 55;
    jitter.maxJitter = 15;
    schedules.push_back(jitter);

    JitterSweepResult with_check =
        runJitterSweep(checked, testerConfig(), schedules);
    for (const std::string &f : with_check.failures)
        ADD_FAILURE() << f;
    ASSERT_TRUE(with_check.ok);

    JitterSweepResult without_check =
        runJitterSweep(unchecked, testerConfig(), schedules);
    ASSERT_TRUE(without_check.ok);
    EXPECT_EQ(with_check.imageHashes, without_check.imageHashes);
}

} // namespace
} // namespace hsc
