/**
 * @file
 * Unit tests of the VIPER GPU controllers (TCP, TCC, SQC) against a
 * scripted fake directory: fills, write-through vs write-back
 * behaviour, scoped atomics, SLC bypass with self-invalidation,
 * probe invalidation without data forwarding, and store-release
 * draining.
 */

#include <gtest/gtest.h>

#include "mem/main_memory.hh"
#include "protocol/gpu/sqc.hh"
#include "protocol/gpu/tcp.hh"

namespace hsc
{
namespace
{

/** Minimal directory standing behind one TCC. */
class FakeDir
{
  public:
    FakeDir(EventQueue &eq, MessageBuffer &to_tcc)
        : mem("mem", eq, 500, 50), eq(eq), toTcc(to_tcc)
    {
    }

    void
    bind(MessageBuffer &from_tcc)
    {
        from_tcc.setConsumer([this](Msg &&m) { receive(std::move(m)); });
    }

    std::vector<Msg> received;

    unsigned
    count(MsgType t) const
    {
        unsigned n = 0;
        for (const Msg &m : received)
            n += (m.type == t);
        return n;
    }

    /** Send a probe toward the TCC. */
    void
    probe(Addr a, MsgType t = MsgType::PrbInv)
    {
        Msg p;
        p.type = t;
        p.addr = a;
        p.txnId = 12345;
        toTcc.enqueue(std::move(p));
    }

    std::vector<Msg> probeResps;

    MainMemory mem;

  private:
    void
    receive(Msg &&m)
    {
        received.push_back(m);
        switch (m.type) {
          case MsgType::TccRdBlk: {
            Msg r;
            r.type = MsgType::SysResp;
            r.addr = m.addr;
            r.grant = Grant::Shared;
            r.hasData = true;
            r.data = mem.functionalRead(m.addr);
            toTcc.enqueue(std::move(r));
            break;
          }
          case MsgType::WriteThrough:
          case MsgType::Flush: {
            mem.functionalWrite(m.addr, m.data, m.mask);
            Msg r;
            r.type = MsgType::WBAck;
            r.addr = m.addr;
            toTcc.enqueue(std::move(r));
            break;
          }
          case MsgType::Atomic: {
            DataBlock blk = mem.functionalRead(m.addr);
            std::uint64_t old_val = m.atomicSize == 4
                ? blk.get<std::uint32_t>(m.atomicOffset)
                : blk.get<std::uint64_t>(m.atomicOffset);
            std::uint64_t new_val = applyAtomic(
                m.atomicOp, old_val, m.atomicOperand, m.atomicOperand2);
            if (m.atomicSize == 4)
                blk.set<std::uint32_t>(m.atomicOffset,
                                       std::uint32_t(new_val));
            else
                blk.set<std::uint64_t>(m.atomicOffset, new_val);
            mem.functionalWrite(m.addr, blk);
            Msg r;
            r.type = MsgType::AtomicResp;
            r.addr = m.addr;
            r.txnId = m.txnId;
            r.atomicResult = old_val;
            toTcc.enqueue(std::move(r));
            break;
          }
          case MsgType::PrbResp:
            probeResps.push_back(m);
            break;
          default:
            FAIL() << "unexpected message "
                   << std::string(msgTypeName(m.type));
        }
    }

    EventQueue &eq;
    MessageBuffer &toTcc;
};

/** Assembled TCP + TCC + SQC over the fake directory. */
struct GpuBench
{
    explicit GpuBench(bool write_back = false)
        : toDir("toDir", eq, 20), fromDir("fromDir", eq, 20),
          dir(eq, fromDir)
    {
        TccParams tp;
        tp.geom = {8, 2};
        tp.writeBack = write_back;
        tcc = std::make_unique<TccController>("tcc", eq, ClockDomain(100),
                                              1, tp, toDir);
        tcc->bindFromDir(fromDir);
        dir.bind(toDir);
        TcpParams tpp;
        tpp.geom = {4, 2};
        tpp.writeBack = write_back;
        tcp = std::make_unique<TcpController>("tcp", eq, ClockDomain(100),
                                              tpp, *tcc);
        SqcParams sp;
        sp.geom = {4, 2};
        sqc = std::make_unique<SqcController>("sqc", eq, ClockDomain(100),
                                              sp, *tcc);
    }

    void settle() { eq.run(); }

    EventQueue eq;
    MessageBuffer toDir;
    MessageBuffer fromDir;
    FakeDir dir;
    std::unique_ptr<TccController> tcc;
    std::unique_ptr<TcpController> tcp;
    std::unique_ptr<SqcController> sqc;
};

constexpr Addr A = 0x1000;

TEST(Tcc, ReadMissFillsAndCaches)
{
    GpuBench b;
    b.dir.mem.functionalWriteWord<std::uint64_t>(A, 99);
    std::uint64_t got = 0;
    b.tcc->readBlock(A, [&](const DataBlock &d) {
        got = d.get<std::uint64_t>(0);
    });
    b.settle();
    EXPECT_EQ(got, 99u);
    EXPECT_TRUE(b.tcc->hasLine(A));
    // Second read hits locally: no new directory request.
    unsigned reqs = b.dir.count(MsgType::TccRdBlk);
    b.tcc->readBlock(A, [&](const DataBlock &) {});
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::TccRdBlk), reqs);
}

TEST(Tcc, ConcurrentFillsMergeInMshr)
{
    GpuBench b;
    int done = 0;
    for (int i = 0; i < 3; ++i)
        b.tcc->readBlock(A, [&](const DataBlock &) { ++done; });
    b.settle();
    EXPECT_EQ(done, 3);
    EXPECT_EQ(b.dir.count(MsgType::TccRdBlk), 1u);
}

TEST(Tcc, WriteThroughModeForwardsEveryWrite)
{
    GpuBench b(false);
    DataBlock src;
    src.set<std::uint32_t>(4, 0xAB);
    b.tcc->write(A, src, makeMask(4, 4), [] {});
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::WriteThrough), 1u);
    EXPECT_EQ(b.dir.mem.functionalReadWord<std::uint32_t>(A + 4), 0xABu);
    // No write-allocate in WT mode.
    EXPECT_FALSE(b.tcc->hasLine(A));
}

TEST(Tcc, WriteBackModeDefersUntilRelease)
{
    GpuBench b(true);
    DataBlock src;
    src.set<std::uint32_t>(0, 7);
    b.tcc->write(A, src, makeMask(0, 4), [] {});
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::WriteThrough), 0u);
    EXPECT_TRUE(b.tcc->lineDirty(A));

    bool released = false;
    b.tcc->release([&] { released = true; });
    b.settle();
    EXPECT_TRUE(released);
    // Release drains as Flush requests and the line goes clean.
    EXPECT_EQ(b.dir.count(MsgType::Flush), 1u);
    EXPECT_FALSE(b.tcc->lineDirty(A));
    EXPECT_EQ(b.dir.mem.functionalReadWord<std::uint32_t>(A), 7u);
}

TEST(Tcc, SystemScopeWriteBypassesWriteBackMode)
{
    GpuBench b(true);
    DataBlock src;
    src.set<std::uint32_t>(0, 21);
    b.tcc->write(A, src, makeMask(0, 4), [] {}, Scope::System);
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::WriteThrough), 1u);
    EXPECT_EQ(b.dir.mem.functionalReadWord<std::uint32_t>(A), 21u);
}

TEST(Tcc, WriteBackEvictionWritesBack)
{
    GpuBench b(true);
    // 2-way TCC sets: three dirty lines in one set force an eviction.
    DataBlock src;
    src.set<std::uint32_t>(0, 1);
    for (unsigned i = 0; i < 3; ++i)
        b.tcc->write(A + i * 64 * 8, src, makeMask(0, 4), [] {});
    b.settle();
    EXPECT_EQ(b.dir.count(MsgType::WriteThrough), 1u);
}

TEST(Tcc, DeviceAtomicExecutesLocally)
{
    GpuBench b(false);
    b.dir.mem.functionalWriteWord<std::uint32_t>(A, 10);
    std::uint64_t old_val = 0;
    b.tcc->atomic(A, AtomicOp::Add, 5, 0, 4, Scope::Device,
                  [&](std::uint64_t v) { old_val = v; });
    b.settle();
    EXPECT_EQ(old_val, 10u);
    EXPECT_EQ(b.dir.count(MsgType::Atomic), 0u) << "GLC stays in the TCC";
    // WT mode writes the result through.
    EXPECT_EQ(b.dir.mem.functionalReadWord<std::uint32_t>(A), 15u);
}

TEST(Tcc, SystemAtomicBypassesAndSelfInvalidates)
{
    GpuBench b(true);
    // Dirty the line at device scope first.
    DataBlock src;
    src.set<std::uint32_t>(4, 0xDD);
    b.tcc->write(A, src, makeMask(4, 4), [] {});
    b.settle();
    ASSERT_TRUE(b.tcc->lineDirty(A));

    std::uint64_t old_val = 1;
    b.tcc->atomic(A, AtomicOp::Add, 2, 0, 4, Scope::System,
                  [&](std::uint64_t v) { old_val = v; });
    b.settle();
    EXPECT_EQ(old_val, 0u);
    EXPECT_EQ(b.dir.count(MsgType::Atomic), 1u);
    // The dirty bytes were flushed before the atomic (ordering), and
    // the TCC no longer holds the line (non-inclusive SLC bypass).
    EXPECT_EQ(b.dir.count(MsgType::WriteThrough), 1u);
    EXPECT_FALSE(b.tcc->hasLine(A));
    EXPECT_EQ(b.dir.mem.functionalReadWord<std::uint32_t>(A + 4), 0xDDu);
    EXPECT_EQ(b.dir.mem.functionalReadWord<std::uint32_t>(A), 2u);
}

TEST(Tcc, ProbeInvalidatesWithoutForwardingData)
{
    GpuBench b(true);
    DataBlock src;
    src.set<std::uint32_t>(0, 3);
    b.tcc->write(A, src, makeMask(0, 4), [] {});
    b.settle();
    ASSERT_TRUE(b.tcc->hasLine(A));

    b.dir.probe(A, MsgType::PrbInv);
    b.settle();
    ASSERT_EQ(b.dir.probeResps.size(), 1u);
    const Msg &resp = b.dir.probeResps[0];
    EXPECT_TRUE(resp.hit);
    EXPECT_FALSE(resp.hasData) << "the TCC never forwards data";
    EXPECT_EQ(resp.txnId, 12345u);
    EXPECT_FALSE(b.tcc->hasLine(A)) << "the TCC invalidates itself";
}

TEST(Tcc, ProbeMissAcksMiss)
{
    GpuBench b;
    b.dir.probe(A);
    b.settle();
    ASSERT_EQ(b.dir.probeResps.size(), 1u);
    EXPECT_FALSE(b.dir.probeResps[0].hit);
}

TEST(Tcp, LoadMissFillsThroughTcc)
{
    GpuBench b;
    b.dir.mem.functionalWriteWord<std::uint32_t>(A + 8, 77);
    std::uint64_t got = 0;
    b.tcp->load(A + 8, 4, Scope::Wave, [&](std::uint64_t v) { got = v; });
    b.settle();
    EXPECT_EQ(got, 77u);
    EXPECT_TRUE(b.tcp->hasLine(A));
    EXPECT_TRUE(b.tcc->hasLine(A)) << "fill populates both levels";
}

TEST(Tcp, SystemLoadBypassesTcpAndTcc)
{
    GpuBench b;
    b.dir.mem.functionalWriteWord<std::uint32_t>(A, 5);
    std::uint64_t got = 0;
    b.tcp->load(A, 4, Scope::System, [&](std::uint64_t v) { got = v; });
    b.settle();
    EXPECT_EQ(got, 5u);
    EXPECT_EQ(b.dir.count(MsgType::Atomic), 1u) << "SLC load at the dir";
    EXPECT_FALSE(b.tcp->hasLine(A));
}

TEST(Tcp, WriteBackStoreStaysLocalUntilRelease)
{
    GpuBench b(true);
    b.tcp->store(A, 4, 0x77, Scope::Wave, [] {});
    b.settle();
    EXPECT_TRUE(b.tcp->hasLine(A));
    EXPECT_FALSE(b.tcc->hasLine(A)) << "store stays in the TCP";

    bool released = false;
    b.tcp->release([&] { released = true; });
    b.settle();
    EXPECT_TRUE(released);
    EXPECT_EQ(b.dir.mem.functionalReadWord<std::uint32_t>(A), 0x77u);
}

TEST(Tcp, AcquireInvalidatesEverything)
{
    GpuBench b;
    b.tcp->load(A, 4, Scope::Wave, [](std::uint64_t) {});
    b.tcp->load(A + 64, 4, Scope::Wave, [](std::uint64_t) {});
    b.settle();
    EXPECT_EQ(b.tcp->occupancy(), 2u);
    b.tcp->acquire([] {});
    b.settle();
    EXPECT_EQ(b.tcp->occupancy(), 0u);
}

TEST(Tcp, CoalescedBlockOps)
{
    GpuBench b;
    DataBlock src;
    for (unsigned i = 0; i < 16; ++i)
        src.set<std::uint32_t>(i * 4, i * 10);
    b.tcp->storeBlock(A, src, FullMask, [] {});
    b.settle();
    DataBlock got;
    b.tcp->loadBlock(A, [&](const DataBlock &d) { got = d; });
    b.settle();
    for (unsigned i = 0; i < 16; ++i)
        EXPECT_EQ(got.get<std::uint32_t>(i * 4), i * 10);
}

TEST(Sqc, FetchCachesInstructionLines)
{
    GpuBench b;
    int fetched = 0;
    b.sqc->fetch(A, [&] { ++fetched; });
    b.settle();
    EXPECT_EQ(fetched, 1);
    EXPECT_TRUE(b.sqc->hasLine(A));
    unsigned reqs = b.dir.count(MsgType::TccRdBlk);
    b.sqc->fetch(A + 4, [&] { ++fetched; }); // same line
    b.settle();
    EXPECT_EQ(fetched, 2);
    EXPECT_EQ(b.dir.count(MsgType::TccRdBlk), reqs);
}

TEST(Sqc, InvalidateAllEmptiesCache)
{
    GpuBench b;
    b.sqc->fetch(A, [] {});
    b.sqc->fetch(A + 64, [] {});
    b.settle();
    EXPECT_EQ(b.sqc->occupancy(), 2u);
    b.sqc->invalidateAll();
    EXPECT_EQ(b.sqc->occupancy(), 0u);
}

TEST(Tcc, ReleaseWaitsForOutstandingWriteAcks)
{
    GpuBench b(false);
    DataBlock src;
    src.set<std::uint32_t>(0, 1);
    bool released = false;
    b.tcc->write(A, src, makeMask(0, 4), [] {});
    b.tcc->release([&] { released = true; });
    // Before the queue drains, the WBAck has not arrived.
    EXPECT_FALSE(released);
    b.settle();
    EXPECT_TRUE(released);
}

} // namespace
} // namespace hsc
