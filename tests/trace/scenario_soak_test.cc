/**
 * @file
 * Tier-2 scenario-fleet soaks: one hundred seed-derived synthetic
 * scenarios replay through the trace frontend on two directory
 * configurations with the runtime coherence sanitizer ON and must
 * finish with zero violations; a second fleet replays over a lossy
 * wire (drop/duplicate/corrupt) behind the reliable transport, which
 * must recover every loss without the checker noticing anything.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "core/hsa_system.hh"
#include "sim/coherence_checker.hh"
#include "trace/scenario.hh"
#include "workloads/workload.hh"

namespace hsc
{
namespace
{

constexpr std::uint64_t FleetSeeds = 100;
constexpr std::uint64_t LossySeeds = 16;

/** Run one scenario with the sanitizer on; fails the test on any
 *  hang, checker violation or incomplete replay. */
void
soakOne(const ScenarioConfig &sc, const SystemConfig &cfg,
        std::uint64_t *retransmits = nullptr)
{
    ASSERT_TRUE(cfg.check);
    HsaSystem sys(cfg);
    auto wl = makeScenarioWorkload(sc, WorkloadParams{});
    wl->setup(sys);
    bool ran = sys.run();
    ASSERT_TRUE(ran) << "seed " << sc.seed << " [" << cfg.label
                     << "]: " << sys.failReason();
    EXPECT_TRUE(wl->verify(sys))
        << "seed " << sc.seed << " [" << cfg.label
        << "]: replay incomplete";
    ASSERT_NE(sys.checker(), nullptr);
    EXPECT_FALSE(sys.checker()->violated())
        << "seed " << sc.seed << " [" << cfg.label << "]";
    if (retransmits)
        *retransmits += sys.transportSummary().retransmits;
}

TEST(ScenarioSoak, HundredSeededScenariosOnTwoConfigsZeroViolations)
{
    SystemConfig base = baselineConfig();
    base.label = "baseline";
    SystemConfig sharers = sharerTrackingConfig();
    sharers.label = "sharers";

    for (std::uint64_t seed = 1; seed <= FleetSeeds; ++seed) {
        ScenarioConfig sc = scenarioFromSeed(seed);
        soakOne(sc, base);
        soakOne(sc, sharers);
        if (seed % 20 == 0)
            std::printf("  fleet: %llu/%llu seeds clean\n",
                        (unsigned long long)seed,
                        (unsigned long long)FleetSeeds);
    }
}

TEST(ScenarioSoak, FleetSurvivesLossyTransport)
{
    SystemConfig cfg = baselineConfig();
    cfg.label = "lossy";
    cfg.transport.enabled = true;
    cfg.fault.enabled = true;
    cfg.fault.dropPer10k = 100;
    cfg.fault.dupPer10k = 100;
    cfg.fault.corruptPer10k = 10;

    std::uint64_t retransmits = 0;
    for (std::uint64_t seed = 1; seed <= LossySeeds; ++seed) {
        cfg.fault.seed = seed;
        ScenarioConfig sc = scenarioFromSeed(seed);
        soakOne(sc, cfg, &retransmits);
    }
    // The wire really was lossy: the transport had to retransmit at
    // least once somewhere across the fleet.
    EXPECT_GT(retransmits, 0u);
}

} // namespace
} // namespace hsc
