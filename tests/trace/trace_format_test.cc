/**
 * @file
 * hsct format and IO unit tests: every opcode must round-trip through
 * TraceWriter/TraceReader bit-exactly, the reader must reject every
 * truncation and every single-byte corruption of a valid trace with a
 * structured SimError (category "trace"), version skew must be named
 * explicitly, hand-crafted records must trip the delta-tick-overflow
 * and varint guards, and the writer must enforce its per-stream
 * ordering and prologue invariants.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "sim/hash.hh"
#include "sim/sim_error.hh"
#include "sim/snapshot.hh"
#include "trace/trace_format.hh"
#include "trace/trace_io.hh"

namespace hsc
{
namespace
{

constexpr std::uint64_t Cpu0 = 0;
constexpr std::uint64_t Cpu1 = 1;
const std::uint64_t Wave00 = waveAgentKey(0, 0);

/** A record per opcode, three interleaved agent streams, two
 *  MemInits.  Returns the stream records in file order. */
std::vector<TraceRecord>
sampleRecords()
{
    std::vector<TraceRecord> v;
    auto put = [&](TraceOp op, std::uint64_t agent, Tick tick) ->
        TraceRecord & {
        TraceRecord r;
        r.op = op;
        r.agent = agent;
        r.tick = tick;
        v.push_back(std::move(r));
        return v.back();
    };

    {
        auto &r = put(TraceOp::CpuLoad, Cpu0, 10);
        r.addr = 0x100000;
        r.size = 8;
    }
    {
        auto &r = put(TraceOp::CpuAmo, Cpu1, 11);
        r.addr = 0x100040;
        r.size = 8;
        r.amo = AtomicOp::Cas;
        r.value = 1;
        r.value2 = 2;
    }
    {
        auto &r = put(TraceOp::CpuStore, Cpu0, 12);
        r.addr = 0x100008;
        r.size = 4;
        r.value = 7;
    }
    {
        auto &r = put(TraceOp::CpuCompute, Cpu0, 20);
        r.value = 50;
    }
    {
        auto &r = put(TraceOp::KernelLaunch, Cpu0, 30);
        r.value = 0;  // ordinal
        r.value2 = 2; // workgroups
        r.flag = true;
    }
    {
        auto &r = put(TraceOp::GpuVload, Wave00, 31);
        r.addr = 0x100100;
        r.value = 8; // stride
        r.size = 4;
    }
    {
        auto &r = put(TraceOp::GpuVstore, Wave00, 33);
        r.addr = 0x100200;
        r.value = 8;
        r.size = 8;
        r.lanes = {1, 2, 0xFFFFFFFFFFFFull};
    }
    {
        auto &r = put(TraceOp::GpuLoad, Wave00, 34);
        r.addr = 0x100300;
        r.size = 8;
        r.scope = Scope::Device;
    }
    {
        auto &r = put(TraceOp::GpuStore, Wave00, 35);
        r.addr = 0x100308;
        r.value = 9;
        r.size = 8;
        r.scope = Scope::System;
    }
    {
        auto &r = put(TraceOp::GpuAmo, Wave00, 36);
        r.addr = 0x100310;
        r.size = 8;
        r.scope = Scope::Device;
        r.amo = AtomicOp::Add;
        r.value = 3;
    }
    {
        auto &r = put(TraceOp::GpuCompute, Wave00, 37);
        r.value = 12;
    }
    put(TraceOp::GpuAcquire, Wave00, 38);
    put(TraceOp::GpuRelease, Wave00, 39);
    put(TraceOp::AgentEnd, Wave00, 40);
    put(TraceOp::KernelWait, Cpu0, 45);
    {
        auto &r = put(TraceOp::DmaRead, Cpu1, 50);
        r.addr = 0x100400;
    }
    {
        auto &r = put(TraceOp::DmaWrite, Cpu1, 51);
        r.addr = 0x100440;
        r.mask = 0x00FF;
        for (unsigned i = 0; i < BlockSizeBytes; ++i)
            r.data[i] = std::uint8_t(i * 3);
    }
    {
        auto &r = put(TraceOp::DmaCopy, Cpu1, 52);
        r.addr = 0x100480;
        r.addr2 = 0x100500;
        r.value2 = 64;
    }
    put(TraceOp::AgentEnd, Cpu1, 53);
    put(TraceOp::AgentEnd, Cpu0, 60);
    return v;
}

std::string
sampleTrace()
{
    std::ostringstream os(std::ios::binary);
    TraceWriter w(os);
    w.memInit(0x100000, 8, 0xDEADBEEFCAFEF00Dull);
    w.memInit(0x100008, 4, 42);
    for (const TraceRecord &r : sampleRecords())
        w.append(r);
    w.finalize(2, 0x100000, 0x101000, true, 1234, 0xAB12CD34EF56ull);
    return os.str();
}

void
expectEqualRecords(const TraceRecord &a, const TraceRecord &b,
                   std::size_t i)
{
    EXPECT_EQ(a.op, b.op) << "record " << i;
    EXPECT_EQ(a.agent, b.agent) << "record " << i;
    EXPECT_EQ(a.tick, b.tick) << "record " << i;
    EXPECT_EQ(a.addr, b.addr) << "record " << i;
    EXPECT_EQ(a.addr2, b.addr2) << "record " << i;
    EXPECT_EQ(a.value, b.value) << "record " << i;
    EXPECT_EQ(a.value2, b.value2) << "record " << i;
    EXPECT_EQ(a.size, b.size) << "record " << i;
    EXPECT_EQ(a.amo, b.amo) << "record " << i;
    EXPECT_EQ(a.scope, b.scope) << "record " << i;
    EXPECT_EQ(a.flag, b.flag) << "record " << i;
    EXPECT_EQ(a.lanes, b.lanes) << "record " << i;
    EXPECT_EQ(a.mask, b.mask) << "record " << i;
    if (a.op == TraceOp::DmaWrite) {
        EXPECT_EQ(a.data, b.data) << "record " << i;
    }
}

/** The reader (construction or full validation) must reject @p bytes
 *  with a SimError in the "trace" category. */
void
expectRejected(const std::string &bytes, const std::string &label)
{
    std::istringstream is(bytes, std::ios::binary);
    try {
        TraceReader rd(is);
        rd.validateAll();
        FAIL() << label << ": accepted";
    } catch (const SimError &e) {
        EXPECT_EQ(e.context(), "trace") << label;
    }
}

TEST(TraceFormat, EveryOpcodeRoundTrips)
{
    std::string bytes = sampleTrace();
    std::istringstream is(bytes, std::ios::binary);
    TraceReader rd(is);

    const TraceHeader &h = rd.header();
    EXPECT_EQ(h.version, TraceVersion);
    EXPECT_EQ(h.numCpuThreads, 2u);
    EXPECT_EQ(h.heapBase, 0x100000u);
    EXPECT_EQ(h.heapEnd, 0x101000u);
    ASSERT_TRUE(h.hasReference());
    EXPECT_EQ(h.refCycles, 1234u);
    EXPECT_EQ(h.refImageHash, 0xAB12CD34EF56ull);
    // 2 MemInit + 3 AgentDef + the stream records
    EXPECT_EQ(h.recordCount, 2 + 3 + sampleRecords().size());

    ASSERT_EQ(rd.memInits().size(), 2u);
    EXPECT_EQ(rd.memInits()[0].addr, 0x100000u);
    EXPECT_EQ(rd.memInits()[0].size, 8u);
    EXPECT_EQ(rd.memInits()[0].value, 0xDEADBEEFCAFEF00Dull);
    EXPECT_EQ(rd.memInits()[1].value, 42u);

    std::vector<TraceRecord> expect = sampleRecords();
    std::vector<TraceRecord> got;
    rd.validateAll([&](const TraceRecord &r) {
        if (r.op != TraceOp::MemInit)
            got.push_back(r);
    });
    ASSERT_EQ(got.size(), expect.size());
    for (std::size_t i = 0; i < expect.size(); ++i)
        expectEqualRecords(expect[i], got[i], i);
}

TEST(TraceFormat, PerAgentDemuxPreservesStreamOrder)
{
    std::string bytes = sampleTrace();
    std::istringstream is(bytes, std::ios::binary);
    TraceReader rd(is);

    auto drain = [&](std::uint64_t agent) {
        std::vector<TraceRecord> out;
        TraceRecord r;
        while (rd.next(agent, r))
            out.push_back(r);
        return out;
    };
    std::vector<TraceRecord> cpu0 = drain(Cpu0);
    std::vector<TraceRecord> wave = drain(Wave00);
    std::vector<TraceRecord> cpu1 = drain(Cpu1);

    // next() never surfaces the AgentEnd itself.
    std::vector<TraceRecord> expect0, expectW, expect1;
    for (const TraceRecord &r : sampleRecords()) {
        if (r.op == TraceOp::AgentEnd)
            continue;
        if (r.agent == Cpu0)
            expect0.push_back(r);
        else if (r.agent == Wave00)
            expectW.push_back(r);
        else
            expect1.push_back(r);
    }
    ASSERT_EQ(cpu0.size(), expect0.size());
    ASSERT_EQ(wave.size(), expectW.size());
    ASSERT_EQ(cpu1.size(), expect1.size());
    for (std::size_t i = 0; i < expect0.size(); ++i)
        expectEqualRecords(expect0[i], cpu0[i], i);
    for (std::size_t i = 0; i < expectW.size(); ++i)
        expectEqualRecords(expectW[i], wave[i], i);
    for (std::size_t i = 0; i < expect1.size(); ++i)
        expectEqualRecords(expect1[i], cpu1[i], i);

    EXPECT_TRUE(rd.fullyConsumed());
    // A drained stream stays drained.
    TraceRecord r;
    EXPECT_FALSE(rd.next(Cpu0, r));
}

TEST(TraceFormat, EmptyTraceIsValid)
{
    std::ostringstream os(std::ios::binary);
    TraceWriter w(os);
    w.finalize(0, 0, 0, false, 0, 0);
    std::string bytes = os.str();
    EXPECT_EQ(bytes.size(), TraceHeaderBytes);

    std::istringstream is(bytes, std::ios::binary);
    TraceReader rd(is);
    EXPECT_EQ(rd.header().recordCount, 0u);
    EXPECT_FALSE(rd.header().hasReference());
    EXPECT_NO_THROW(rd.validateAll());
    EXPECT_TRUE(rd.fullyConsumed());
}

TEST(TraceFormat, TruncationAtEveryByteRejected)
{
    std::string bytes = sampleTrace();
    ASSERT_GT(bytes.size(), TraceHeaderBytes);
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        expectRejected(bytes.substr(0, cut),
                       "truncation at " + std::to_string(cut));
    }
}

TEST(TraceFormat, SingleByteCorruptionRejected)
{
    std::string bytes = sampleTrace();
    for (std::size_t i = 0; i < bytes.size(); ++i) {
        std::string bad = bytes;
        bad[i] = char(std::uint8_t(bad[i]) ^ 0xFF);
        expectRejected(bad, "corruption at " + std::to_string(i));
    }
}

TEST(TraceFormat, TrailingGarbageRejected)
{
    expectRejected(sampleTrace() + "xyz", "trailing garbage");
}

TEST(TraceFormat, TornCaptureWithoutFinalizeRejected)
{
    // A capture that dies before finalize leaves the all-zero
    // placeholder header; no reader state can accept it.
    std::ostringstream os(std::ios::binary);
    TraceWriter w(os);
    w.memInit(0x100000, 8, 1);
    TraceRecord r;
    r.op = TraceOp::CpuLoad;
    r.agent = 0;
    r.tick = 1;
    r.addr = 0x100000;
    r.size = 8;
    w.append(r);
    expectRejected(os.str(), "torn capture");
}

TEST(TraceFormat, VersionSkewNamedExplicitly)
{
    TraceHeader h;
    h.version = TraceVersion + 1;
    std::string bytes = encodeTraceHeader(h);
    std::istringstream is(bytes, std::ios::binary);
    try {
        TraceReader rd(is);
        FAIL() << "future version accepted";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("version skew"),
                  std::string::npos)
            << e.what();
    }
}

/** Assemble header + hand-crafted record bytes with a correct record
 *  hash, so only the guard under test fires. */
std::string
craftTrace(const std::string &records, std::uint64_t record_count)
{
    TraceHeader h;
    h.recordCount = record_count;
    h.recordHash = fnvBytes(records.data(), records.size());
    return encodeTraceHeader(h) + records;
}

TEST(TraceFormat, DeltaTickOverflowRejected)
{
    std::string recs;
    recs.push_back(char(TraceOp::AgentDef));
    appendVarint(recs, 5);
    // First record jumps the stream clock to the end of time...
    recs.push_back(char(TraceOp::CpuCompute));
    appendVarint(recs, 0);                      // stream index
    appendVarint(recs, ~std::uint64_t(0));      // delta
    appendVarint(recs, 1);                      // cycles
    // ...so any further advance overflows the 64-bit timeline.
    recs.push_back(char(TraceOp::CpuCompute));
    appendVarint(recs, 0);
    appendVarint(recs, 1);
    appendVarint(recs, 1);

    std::string bytes = craftTrace(recs, 3);
    std::istringstream is(bytes, std::ios::binary);
    TraceReader rd(is);
    try {
        rd.validateAll();
        FAIL() << "delta overflow accepted";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("delta tick overflows"),
                  std::string::npos)
            << e.what();
    }
}

TEST(TraceFormat, OverlongAndOverflowingVarintsRejected)
{
    {
        // Eleven continuation bytes: longer than any 64-bit varint.
        std::string recs;
        recs.push_back(char(TraceOp::AgentDef));
        appendVarint(recs, 5);
        recs.push_back(char(TraceOp::CpuCompute));
        appendVarint(recs, 0);
        recs.append(10, char(0x80)); // delta never terminates
        expectRejected(craftTrace(recs, 2), "overlong varint");
    }
    {
        // Ten bytes whose top groups spill past bit 63.
        std::string recs;
        recs.push_back(char(TraceOp::AgentDef));
        appendVarint(recs, 5);
        recs.push_back(char(TraceOp::CpuCompute));
        appendVarint(recs, 0);
        recs.append(9, char(0x80));
        recs.push_back(char(0x02)); // value bit at position >= 64
        expectRejected(craftTrace(recs, 2), "overflowing varint");
    }
}

TEST(TraceFormat, StructuralGuardsReject)
{
    {
        // Unknown opcode.
        std::string recs;
        recs.push_back(char(0xEE));
        expectRejected(craftTrace(recs, 1), "unknown opcode");
    }
    {
        // Stream record referencing a never-defined stream.
        std::string recs;
        recs.push_back(char(TraceOp::CpuCompute));
        appendVarint(recs, 3); // no AgentDef established index 3
        appendVarint(recs, 0);
        appendVarint(recs, 1);
        expectRejected(craftTrace(recs, 1), "undefined stream");
    }
    {
        // Duplicate AgentDef for the same agent key.
        std::string recs;
        recs.push_back(char(TraceOp::AgentDef));
        appendVarint(recs, 5);
        recs.push_back(char(TraceOp::AgentDef));
        appendVarint(recs, 5);
        expectRejected(craftTrace(recs, 2), "duplicate AgentDef");
    }
    {
        // A record arriving after its stream's AgentEnd.
        std::string recs;
        recs.push_back(char(TraceOp::AgentDef));
        appendVarint(recs, 5);
        recs.push_back(char(TraceOp::AgentEnd));
        appendVarint(recs, 0);
        appendVarint(recs, 1);
        recs.push_back(char(TraceOp::CpuCompute));
        appendVarint(recs, 0);
        appendVarint(recs, 1);
        appendVarint(recs, 1);
        expectRejected(craftTrace(recs, 3), "record after AgentEnd");
    }
}

TEST(TraceFormat, WriterEnforcesPerStreamTickOrder)
{
    std::ostringstream os(std::ios::binary);
    TraceWriter w(os);
    TraceRecord r;
    r.op = TraceOp::CpuCompute;
    r.agent = 1;
    r.tick = 100;
    r.value = 1;
    w.append(r);
    r.tick = 50;
    EXPECT_THROW(w.append(r), SimError);
    // Another stream is an independent clock: earlier ticks are fine.
    r.agent = 2;
    EXPECT_NO_THROW(w.append(r));
}

TEST(TraceFormat, WriterRejectsMemInitAfterStreamRecord)
{
    std::ostringstream os(std::ios::binary);
    TraceWriter w(os);
    w.memInit(0x100000, 8, 1);
    TraceRecord r;
    r.op = TraceOp::CpuCompute;
    r.agent = 0;
    r.tick = 1;
    r.value = 1;
    w.append(r);
    EXPECT_THROW(w.memInit(0x100008, 8, 2), SimError);
}

TEST(TraceFormat, UnterminatedStreamSurfacesOnNext)
{
    std::ostringstream os(std::ios::binary);
    TraceWriter w(os);
    TraceRecord r;
    r.op = TraceOp::CpuLoad;
    r.agent = 0;
    r.tick = 1;
    r.addr = 0x100000;
    r.size = 8;
    w.append(r); // no agentEnd
    w.finalize(1, 0x100000, 0x100040, false, 0, 0);

    std::istringstream is(os.str(), std::ios::binary);
    TraceReader rd(is);
    TraceRecord out;
    EXPECT_TRUE(rd.next(0, out));
    EXPECT_THROW(rd.next(0, out), SimError);
    EXPECT_FALSE(rd.fullyConsumed());
}

TEST(TraceFormat, UnknownAgentSurfacesOnNext)
{
    std::string bytes = sampleTrace();
    std::istringstream is(bytes, std::ios::binary);
    TraceReader rd(is);
    TraceRecord out;
    EXPECT_THROW(rd.next(999, out), SimError);
}

TEST(TraceFormat, ReadAheadWindowIsBounded)
{
    std::ostringstream os(std::ios::binary);
    TraceWriter w(os);
    TraceRecord r;
    r.op = TraceOp::CpuCompute;
    r.agent = 0;
    r.value = 1;
    for (Tick t = 1; t <= 10; ++t) {
        r.tick = t;
        w.append(r);
    }
    w.agentEnd(0, 11);
    r.agent = 1;
    r.tick = 12;
    w.append(r);
    w.agentEnd(1, 13);
    w.finalize(2, 0, 0, false, 0, 0);

    // Reaching agent 1 means queueing all of agent 0 first — more
    // than a 4-record window tolerates.
    std::istringstream is(os.str(), std::ios::binary);
    TraceReader rd(is, /*max_pending=*/4);
    TraceRecord out;
    try {
        rd.next(1, out);
        FAIL() << "window bound not enforced";
    } catch (const SimError &e) {
        EXPECT_NE(std::string(e.what()).find("read-ahead window"),
                  std::string::npos)
            << e.what();
    }
}

} // namespace
} // namespace hsc
