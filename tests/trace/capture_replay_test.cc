/**
 * @file
 * Capture→replay identity matrix: every CHAI workload captured
 * through the in-memory TraceRecorder must replay through
 * TraceWorkload bit-identically — same cycle count, same final heap
 * image — on the same configuration.  Also pins down that attaching a
 * recorder never perturbs timing, that the identity holds across
 * directory configurations, and that attributed DMA traffic survives
 * a full capture-of-replay round trip.
 */

#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>

#include "core/hsa_system.hh"
#include "trace/scenario.hh"
#include "trace/trace_capture.hh"
#include "trace/trace_workload.hh"
#include "workloads/workload.hh"

namespace hsc
{
namespace
{

struct Capture
{
    std::string bytes;
    Cycles cycles = 0;
    std::uint64_t image = 0;
};

/** Run @p id with an in-memory recorder attached; the successful run
 *  seals the trace with its reference outcome. */
Capture
captureRun(const std::string &id, const SystemConfig &cfg,
           const WorkloadParams &p = {})
{
    HsaSystem sys(cfg);
    TraceRecorder rec;
    sys.attachTraceRecorder(&rec);
    auto wl = makeWorkload(id, p);
    wl->setup(sys);
    EXPECT_TRUE(sys.run()) << id << ": " << sys.failReason();
    EXPECT_TRUE(wl->verify(sys)) << id;
    Capture c;
    c.bytes = rec.buffer();
    c.cycles = sys.cpuCycles();
    c.image = sys.imageHash(sys.heapBase(), sys.heapEnd());
    return c;
}

struct Replay
{
    bool identical = false;
    Cycles cycles = 0;
    std::uint64_t image = 0;
};

Replay
replayRun(const std::string &bytes, const SystemConfig &cfg)
{
    auto in = std::make_shared<std::istringstream>(
        bytes, std::ios::binary | std::ios::in);
    HsaSystem sys(cfg);
    TraceWorkload wl(WorkloadParams{}, in);
    wl.setup(sys);
    EXPECT_TRUE(sys.run()) << "replay: " << sys.failReason();
    Replay r;
    r.identical = wl.verify(sys);
    r.cycles = sys.cpuCycles();
    r.image = sys.imageHash(sys.heapBase(), sys.heapEnd());
    return r;
}

void
roundTrip(const std::string &id, const SystemConfig &cfg)
{
    Capture cap = captureRun(id, cfg);
    ASSERT_FALSE(cap.bytes.empty()) << id;
    Replay rep = replayRun(cap.bytes, cfg);
    EXPECT_TRUE(rep.identical) << id;
    EXPECT_EQ(rep.cycles, cap.cycles) << id;
    EXPECT_EQ(rep.image, cap.image) << id;
}

TEST(CaptureReplay, AllChaiWorkloadsBitIdenticalOnBaseline)
{
    for (const std::string &id : workloadIds())
        roundTrip(id, baselineConfig());
}

TEST(CaptureReplay, IdentityHoldsOnSharerTracking)
{
    roundTrip("tq", sharerTrackingConfig());
}

TEST(CaptureReplay, HeteroSyncRoundTrips)
{
    roundTrip("hs_mutex", baselineConfig());
}

TEST(CaptureReplay, RecorderDoesNotPerturbTiming)
{
    SystemConfig cfg = baselineConfig();
    Cycles plain = 0;
    {
        HsaSystem sys(cfg);
        auto wl = makeWorkload("tq", WorkloadParams{});
        wl->setup(sys);
        ASSERT_TRUE(sys.run()) << sys.failReason();
        ASSERT_TRUE(wl->verify(sys));
        plain = sys.cpuCycles();
    }
    Capture cap = captureRun("tq", cfg);
    EXPECT_EQ(cap.cycles, plain)
        << "attaching a recorder changed the schedule";
}

TEST(CaptureReplay, DmaScenarioSurvivesCaptureOfReplay)
{
    // A scenario with forced DMA + producer/consumer traffic,
    // replayed under capture: the re-captured trace must itself
    // replay bit-identically (DmaRead/DmaWrite/DmaCopy round trip).
    ScenarioConfig sc = scenarioFromSeed(5);
    sc.dmaPct = 25;
    sc.producerConsumer = true;
    std::ostringstream gen(std::ios::binary);
    generateScenarioTrace(sc, gen);

    SystemConfig cfg = baselineConfig();
    Capture cap;
    {
        HsaSystem sys(cfg);
        TraceRecorder rec;
        sys.attachTraceRecorder(&rec);
        auto in = std::make_shared<std::istringstream>(
            gen.str(), std::ios::binary | std::ios::in);
        TraceWorkload wl(WorkloadParams{}, in);
        wl.setup(sys);
        ASSERT_TRUE(sys.run()) << sys.failReason();
        // Generated traces carry no reference; verify() checks full
        // consumption only.
        EXPECT_TRUE(wl.verify(sys));
        cap.bytes = rec.buffer();
        cap.cycles = sys.cpuCycles();
        cap.image = sys.imageHash(sys.heapBase(), sys.heapEnd());
    }
    Replay rep = replayRun(cap.bytes, cfg);
    EXPECT_TRUE(rep.identical);
    EXPECT_EQ(rep.cycles, cap.cycles);
    EXPECT_EQ(rep.image, cap.image);
}

} // namespace
} // namespace hsc
