/**
 * @file
 * Scenario-generator and ChampSim-importer units: same config must
 * yield the same trace bytes, seed-derived configs must stay inside
 * their documented ranges, the zipfian knob must actually skew the
 * address stream, every scenario must replay cleanly (and
 * deterministically) through TraceWorkload, and the text importer
 * must produce replayable traces while rejecting malformed input with
 * the offending line number.
 */

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "core/hsa_system.hh"
#include "mem/data_block.hh"
#include "sim/sim_error.hh"
#include "trace/champsim.hh"
#include "trace/scenario.hh"
#include "trace/trace_io.hh"
#include "trace/trace_workload.hh"
#include "workloads/workload.hh"

namespace hsc
{
namespace
{

std::string
generate(const ScenarioConfig &cfg)
{
    std::ostringstream os(std::ios::binary);
    generateScenarioTrace(cfg, os);
    return os.str();
}

TEST(Scenario, SameConfigSameBytes)
{
    ScenarioConfig cfg = scenarioFromSeed(7);
    EXPECT_EQ(generate(cfg), generate(cfg));

    ScenarioConfig other = scenarioFromSeed(8);
    EXPECT_NE(generate(cfg), generate(other));
}

TEST(Scenario, SeedDerivedConfigsStayInRange)
{
    for (std::uint64_t seed = 1; seed <= 50; ++seed) {
        ScenarioConfig c = scenarioFromSeed(seed);
        EXPECT_EQ(c.seed, seed);
        EXPECT_GE(c.cpuThreads, 1u);
        EXPECT_LE(c.cpuThreads, 6u);
        EXPECT_LE(c.gpuKernels, 3u);
        EXPECT_GE(c.workgroupsPerKernel, 2u);
        EXPECT_LE(c.workgroupsPerKernel, 8u);
        EXPECT_GE(c.opsPerCpuThread, 32u);
        EXPECT_LE(c.opsPerCpuThread, 160u);
        EXPECT_GE(c.workingSetBytes, 4096u);
        EXPECT_LE(c.workingSetBytes, 64u * 1024);
        EXPECT_EQ(c.workingSetBytes % BlockSizeBytes, 0u);
        EXPECT_LE(c.readPct, 100u);
        EXPECT_LE(c.atomicPct, 100u);
        EXPECT_LE(c.vectorPct, 100u);
        EXPECT_LE(c.sharedPct, 100u);
        EXPECT_LE(c.dmaPct, 100u);
        EXPECT_GE(c.phases, 1u);
        EXPECT_GE(c.burstLen, 1u);
        EXPECT_FALSE(describeScenario(c).empty());
    }
}

TEST(Scenario, ZipfAlphaSkewsTheAddressStream)
{
    ScenarioConfig cfg;
    cfg.cpuThreads = 4;
    cfg.gpuKernels = 0;
    cfg.opsPerCpuThread = 400;
    cfg.workingSetBytes = 16384;
    cfg.sharedPct = 100; // one slice, so histograms are comparable
    cfg.dmaPct = 0;
    cfg.phases = 1;

    auto hottestShare = [&](double alpha) {
        cfg.zipfAlpha = alpha;
        std::string bytes = generate(cfg);
        std::istringstream is(bytes, std::ios::binary);
        TraceReader rd(is);
        std::map<Addr, unsigned> hist;
        std::uint64_t total = 0;
        rd.validateAll([&](const TraceRecord &r) {
            if (r.op == TraceOp::CpuLoad || r.op == TraceOp::CpuStore ||
                r.op == TraceOp::CpuAmo) {
                ++hist[blockAlign(r.addr)];
                ++total;
            }
        });
        EXPECT_GT(total, 500u);
        unsigned best = 0;
        for (const auto &[addr, n] : hist)
            best = std::max(best, n);
        return double(best) / double(total);
    };

    double uniform = hottestShare(0.0);
    double skewed = hottestShare(1.2);
    // 256 blocks: uniform puts ~0.4% on the hottest block; alpha=1.2
    // concentrates an order of magnitude more.
    EXPECT_GT(skewed, 2.0 * uniform);
}

Cycles
runScenario(const ScenarioConfig &sc, const SystemConfig &cfg)
{
    HsaSystem sys(cfg);
    auto wl = makeScenarioWorkload(sc, WorkloadParams{});
    wl->setup(sys);
    EXPECT_TRUE(sys.run()) << sys.failReason();
    EXPECT_TRUE(wl->verify(sys));
    return sys.cpuCycles();
}

TEST(Scenario, ReplayIsDeterministic)
{
    ScenarioConfig sc = scenarioFromSeed(9);
    SystemConfig cfg = baselineConfig();
    Cycles a = runScenario(sc, cfg);
    Cycles b = runScenario(sc, cfg);
    EXPECT_EQ(a, b);
    EXPECT_GT(a, 0u);
}

TEST(Scenario, ProducerConsumerRunsClean)
{
    ScenarioConfig sc = scenarioFromSeed(4);
    sc.producerConsumer = true;
    sc.cpuThreads = 4;
    runScenario(sc, baselineConfig());
}

// ------------------------------------------------------------------
// ChampSim text importer
// ------------------------------------------------------------------

std::string
convert(const std::string &text, const ChampSimOptions &opts = {})
{
    std::istringstream in(text);
    std::ostringstream out(std::ios::binary);
    convertChampSim(in, out, opts);
    return out.str();
}

TEST(ChampSimImport, ConvertsAndReplays)
{
    std::string bytes = convert("# header comment\n"
                                "0 R 7f001000\n"
                                "0 W 7f001040 4\n"
                                "1 R 12345678 2\n"
                                "1 W 12345678\n"
                                "7 r 44780 1\n"
                                "7 w 447c0 8\n");
    std::istringstream is(bytes, std::ios::binary);
    TraceReader rd(is);
    // Sparse tids {0, 1, 7} remap to three dense replay threads.
    EXPECT_EQ(rd.header().numCpuThreads, 3u);
    std::uint64_t loads = 0, stores = 0;
    rd.validateAll([&](const TraceRecord &r) {
        loads += r.op == TraceOp::CpuLoad;
        stores += r.op == TraceOp::CpuStore;
        if (r.op == TraceOp::CpuLoad || r.op == TraceOp::CpuStore) {
            EXPECT_GE(r.addr, rd.header().heapBase);
            EXPECT_LT(r.addr, rd.header().heapEnd);
            EXPECT_EQ(r.addr % r.size, 0u);
        }
    });
    EXPECT_EQ(loads, 3u);
    EXPECT_EQ(stores, 3u);

    auto in = std::make_shared<std::istringstream>(
        bytes, std::ios::binary | std::ios::in);
    HsaSystem sys(baselineConfig());
    TraceWorkload wl(WorkloadParams{}, in);
    wl.setup(sys);
    ASSERT_TRUE(sys.run()) << sys.failReason();
    EXPECT_TRUE(wl.verify(sys));
}

TEST(ChampSimImport, MalformedInputNamesTheLine)
{
    auto expectBadLine = [](const std::string &text,
                            const std::string &line_tag) {
        try {
            convert(text);
            FAIL() << "accepted: " << text;
        } catch (const SimError &e) {
            EXPECT_EQ(e.context(), "trace");
            EXPECT_NE(std::string(e.what()).find(line_tag),
                      std::string::npos)
                << e.what();
        }
    };
    expectBadLine("0 X 1000\n", "line 1");
    expectBadLine("0 R 1000\n1 R zzzz\n", "line 2");
    expectBadLine("0 R\n", "line 1");
    expectBadLine("0 R 1000 3\n", "line 1"); // size not 1/2/4/8
}

TEST(ChampSimImport, EmptyInputRejected)
{
    EXPECT_THROW(convert("# nothing but comments\n\n"), SimError);
}

TEST(ChampSimImport, BadWorkingSetRejected)
{
    ChampSimOptions opts;
    opts.workingSetBytes = 100; // not a multiple of the block size
    EXPECT_THROW(convert("0 R 1000\n", opts), SimError);
}

TEST(ChampSimImport, AddressesFoldIntoTheWorkingSet)
{
    ChampSimOptions opts;
    opts.workingSetBytes = 4096;
    std::string bytes =
        convert("0 R ffffffff12345678\n0 W 0\n", opts);
    std::istringstream is(bytes, std::ios::binary);
    TraceReader rd(is);
    EXPECT_EQ(rd.header().heapEnd - rd.header().heapBase, 4096u);
    rd.validateAll([&](const TraceRecord &r) {
        if (r.op == TraceOp::CpuLoad || r.op == TraceOp::CpuStore) {
            EXPECT_GE(r.addr, rd.header().heapBase);
            EXPECT_LT(r.addr, rd.header().heapEnd);
        }
    });
}

} // namespace
} // namespace hsc
