/**
 * @file
 * System-level observability tests: tracing is a passive observer
 * (bit-identical simulated time), spans cover every controller kind,
 * breakdowns are exact on real traffic, and the Chrome trace export
 * of a real run is well-formed.
 */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/hsa_system.hh"
#include "obs/chrome_trace.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"
#include "workloads/workload.hh"

namespace hsc
{
namespace
{

/** Run @p id to completion on @p sys; returns simulated cycles. */
Cycles
obsRun(const std::string &id, HsaSystem &sys)
{
    auto wl = makeWorkload(id, WorkloadParams{});
    wl->setup(sys);
    EXPECT_TRUE(sys.run()) << sys.failReason();
    EXPECT_TRUE(wl->verify(sys));
    return sys.cpuCycles();
}

Cycles
obsRun(const std::string &id, const SystemConfig &cfg)
{
    HsaSystem sys(cfg);
    return obsRun(id, sys);
}

TEST(ObsSystem, TracingDoesNotPerturbSimulatedTime)
{
    SystemConfig off = baselineConfig();
    Cycles base = obsRun("tq", off);

    SystemConfig traced = baselineConfig();
    traced.obs.enabled = true;
    EXPECT_EQ(obsRun("tq", traced), base);

    SystemConfig sampled = baselineConfig();
    sampled.obs.enabled = true;
    sampled.obs.samplingInterval = 100;
    EXPECT_EQ(obsRun("tq", sampled), base)
        << "interval sampling must not move simulated time";
}

TEST(ObsSystem, SpanCoverageAcrossControllerKinds)
{
    SystemConfig cfg = baselineConfig();
    cfg.obs.enabled = true;
    HsaSystem sys(cfg);
    obsRun("hs_mutex", sys);

    const ObsTracer *tracer = sys.tracer();
    ASSERT_NE(tracer, nullptr);
    ASSERT_GT(tracer->spans().size(), 0u);

    std::set<ObsCtrlKind> kinds;
    std::set<ObsClass> classes;
    for (const FinishedSpan &s : tracer->spans()) {
        classes.insert(s.cls);
        Tick total = 0;
        for (Tick c : s.comp)
            total += c;
        ASSERT_EQ(total, s.end - s.start)
            << "breakdown must sum exactly for txn " << s.id;
        for (const SpanEvent &ev : s.events)
            kinds.insert(tracer->ctrlKind(ev.ctrl));
    }
    // hs_mutex drives CU loads/atomics (TCP), write-throughs and
    // fills (TCC), instruction fetches (SQC), the directory, and
    // probes into the CPU core pairs.
    EXPECT_GE(kinds.size(), 5u);
    EXPECT_TRUE(kinds.count(ObsCtrlKind::Tcp));
    EXPECT_TRUE(kinds.count(ObsCtrlKind::Tcc));
    EXPECT_TRUE(kinds.count(ObsCtrlKind::Sqc));
    EXPECT_TRUE(kinds.count(ObsCtrlKind::Dir));
    EXPECT_TRUE(kinds.count(ObsCtrlKind::CorePair));
    EXPECT_TRUE(classes.count(ObsClass::GpuAtomic));
    EXPECT_TRUE(classes.count(ObsClass::GpuIfetch));
    EXPECT_EQ(tracer->liveTxns(), 0u)
        << "every transaction must complete by quiesce";
}

TEST(ObsSystem, CpuAndDmaSpansTraced)
{
    SystemConfig cfg = baselineConfig();
    cfg.obs.enabled = true;
    HsaSystem sys(cfg);
    Addr src = sys.alloc(4 * 64);
    Addr dst = sys.alloc(4 * 64);
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.store(src, 0xAB);
        co_await sys.dma().copyAsync(dst, src, 4 * 64);
        (void)co_await cpu.load(dst);
    });
    ASSERT_TRUE(sys.run()) << sys.failReason();

    const ObsTracer *tracer = sys.tracer();
    ASSERT_NE(tracer, nullptr);
    std::set<ObsClass> classes;
    std::set<ObsCtrlKind> kinds;
    for (const FinishedSpan &s : tracer->spans()) {
        classes.insert(s.cls);
        kinds.insert(tracer->ctrlKind(s.origin));
    }
    EXPECT_TRUE(classes.count(ObsClass::CpuWrite));
    EXPECT_TRUE(classes.count(ObsClass::CpuRead));
    EXPECT_TRUE(classes.count(ObsClass::DmaRead));
    EXPECT_TRUE(classes.count(ObsClass::DmaWrite));
    EXPECT_TRUE(kinds.count(ObsCtrlKind::Dma));
    EXPECT_TRUE(kinds.count(ObsCtrlKind::CorePair));
}

TEST(ObsSystem, ChromeTraceOfRealRunIsWellFormed)
{
    SystemConfig cfg = baselineConfig();
    cfg.obs.enabled = true;
    cfg.obs.samplingInterval = 100;
    HsaSystem sys(cfg);
    obsRun("hs_mutex", sys);

    ASSERT_NE(sys.tracer(), nullptr);
    JsonValue doc = buildChromeTrace(*sys.tracer(), sys.sampler());
    JsonValue parsed = parseJson(doc.dump());
    ASSERT_TRUE(parsed.isObject());
    const JsonValue &events = parsed.at("traceEvents");
    ASSERT_TRUE(events.isArray());

    std::size_t begins = 0, ends = 0, counters = 0;
    std::set<std::string> kinds;
    for (const JsonValue &ev : events.items()) {
        const std::string &ph = ev.at("ph").asString();
        if (ph == "b")
            ++begins;
        if (ph == "e")
            ++ends;
        if (ph == "C")
            ++counters;
        if (const JsonValue *args = ev.find("args")) {
            if (const JsonValue *kind = args->find("kind"))
                kinds.insert(kind->asString());
        }
    }
    EXPECT_EQ(begins, ends);
    EXPECT_GT(begins, 0u);
    EXPECT_GT(counters, 0u) << "sampler rows become counter tracks";
    EXPECT_GE(kinds.size(), 5u)
        << "spans must cover >= 5 distinct controller kinds";
}

TEST(ObsSystem, SamplerRecordsTimeSeries)
{
    SystemConfig cfg = baselineConfig();
    cfg.obs.enabled = true;
    cfg.obs.samplingInterval = 50;
    HsaSystem sys(cfg);
    obsRun("tq", sys);

    const ObsSampler *sampler = sys.sampler();
    ASSERT_NE(sampler, nullptr);
    ASSERT_GT(sampler->rows().size(), 1u);
    for (std::size_t i = 1; i < sampler->rows().size(); ++i) {
        EXPECT_GT(sampler->rows()[i].tick, sampler->rows()[i - 1].tick);
    }

    std::ostringstream os;
    sampler->writeCsv(os);
    std::istringstream is(os.str());
    std::string line;
    std::size_t lines = 0;
    while (std::getline(is, line))
        ++lines;
    EXPECT_EQ(lines, sampler->rows().size() + 1)
        << "CSV is one header plus one line per sample";
}

} // namespace
} // namespace hsc
