/** @file Unit tests for the observability subsystem (src/obs). */

#include <gtest/gtest.h>

#include <sstream>

#include "obs/chrome_trace.hh"
#include "obs/ring.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"
#include "sim/json.hh"

namespace hsc
{
namespace
{

TEST(SpanRing, OverflowDropsAreCounted)
{
    SpanRing ring(4);
    SpanEvent ev;
    ev.id = 1;
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(ring.push(ev));
    EXPECT_TRUE(ring.full());
    EXPECT_FALSE(ring.push(ev));
    EXPECT_FALSE(ring.push(ev));
    EXPECT_EQ(ring.dropped(), 2u);
    EXPECT_EQ(ring.size(), 4u);

    std::size_t drained = 0;
    ring.drain([&](const SpanEvent &) { ++drained; });
    EXPECT_EQ(drained, 4u);
    EXPECT_TRUE(ring.empty());
    EXPECT_TRUE(ring.push(ev));
    EXPECT_EQ(ring.dropped(), 2u) << "drop counter is cumulative";
}

TEST(SpanRing, FifoOrderAcrossWraparound)
{
    SpanRing ring(3);
    SpanEvent ev;
    for (std::uint64_t i = 1; i <= 3; ++i) {
        ev.id = i;
        ring.push(ev);
    }
    std::vector<std::uint64_t> first;
    ring.drain([&](const SpanEvent &e) { first.push_back(e.id); });
    for (std::uint64_t i = 4; i <= 6; ++i) {
        ev.id = i;
        ring.push(ev);
    }
    std::vector<std::uint64_t> second;
    ring.drain([&](const SpanEvent &e) { second.push_back(e.id); });
    EXPECT_EQ(first, (std::vector<std::uint64_t>{1, 2, 3}));
    EXPECT_EQ(second, (std::vector<std::uint64_t>{4, 5, 6}));
}

ObsConfig
smallConfig()
{
    ObsConfig cfg;
    cfg.enabled = true;
    cfg.ringEntries = 8;
    cfg.keepSpans = true;
    return cfg;
}

TEST(ObsTracer, BreakdownSumsExactlyToEndToEnd)
{
    ObsTracer tracer(smallConfig());
    std::uint16_t cpu = tracer.internCtrl("cp0", ObsCtrlKind::CorePair);
    std::uint16_t dir = tracer.internCtrl("dir", ObsCtrlKind::Dir);

    // CPU read: queued 10, serviced 5, probes 20, backing 30,
    // delivery 15 -> end-to-end 80.
    std::uint64_t id = tracer.newTxn(ObsClass::CpuRead, cpu, 0x40, 100);
    ASSERT_NE(id, 0u);
    tracer.emit(id, ObsPhase::DirDispatch, dir, 0x40, 110);
    tracer.emit(id, ObsPhase::ProbesOut, dir, 0x40, 115, 1);
    tracer.emit(id, ObsPhase::ProbeAck, dir, 0x40, 135);
    tracer.emit(id, ObsPhase::BackingRead, dir, 0x40, 135);
    tracer.emit(id, ObsPhase::BackingData, dir, 0x40, 165);
    tracer.emit(id, ObsPhase::Respond, dir, 0x40, 165);
    tracer.complete(id, cpu, 0x40, 180);
    tracer.collect();

    ASSERT_EQ(tracer.spans().size(), 1u);
    const FinishedSpan &s = tracer.spans()[0];
    EXPECT_EQ(s.start, 100u);
    EXPECT_EQ(s.end, 180u);
    EXPECT_EQ(s.comp[std::size_t(ObsComponent::Queue)], 10u);
    EXPECT_EQ(s.comp[std::size_t(ObsComponent::DirService)], 5u);
    EXPECT_EQ(s.comp[std::size_t(ObsComponent::ProbeRtt)], 20u);
    EXPECT_EQ(s.comp[std::size_t(ObsComponent::Backing)], 30u);
    EXPECT_EQ(s.comp[std::size_t(ObsComponent::Delivery)], 15u);

    Tick total = 0;
    for (Tick c : s.comp)
        total += c;
    EXPECT_EQ(total, s.end - s.start);
    EXPECT_EQ(tracer.completed(), 1u);
    EXPECT_EQ(tracer.liveTxns(), 0u);
}

TEST(ObsTracer, RingOverflowSelfDrainsWithoutLosingEvents)
{
    // 8-entry staging ring, far more events than that: emit() must
    // drain on a full ring instead of losing events.
    ObsTracer tracer(smallConfig());
    std::uint16_t cpu = tracer.internCtrl("cp0", ObsCtrlKind::CorePair);
    const int kTxns = 100;
    for (int i = 0; i < kTxns; ++i) {
        std::uint64_t id =
            tracer.newTxn(ObsClass::CpuWrite, cpu, Addr(i) * 64,
                          Tick(i) * 10);
        ASSERT_NE(id, 0u);
        tracer.emit(id, ObsPhase::DirDispatch, cpu, Addr(i) * 64,
                    Tick(i) * 10 + 3);
        tracer.complete(id, cpu, Addr(i) * 64, Tick(i) * 10 + 7);
    }
    tracer.collect();
    EXPECT_GT(tracer.ringDropped(), 0u) << "ring must have overflowed";
    EXPECT_EQ(tracer.completed(), std::uint64_t(kTxns))
        << "overflow may force a drain but must not lose transactions";
    EXPECT_EQ(tracer.spans().size(), std::size_t(kTxns));
    for (const FinishedSpan &s : tracer.spans()) {
        Tick total = 0;
        for (Tick c : s.comp)
            total += c;
        EXPECT_EQ(total, s.end - s.start);
    }
}

TEST(ObsTracer, OpenTxnCeilingReturnsZeroAndCounts)
{
    ObsConfig cfg = smallConfig();
    cfg.maxOpenTxns = 2;
    ObsTracer tracer(cfg);
    std::uint16_t cpu = tracer.internCtrl("cp0", ObsCtrlKind::CorePair);
    std::uint64_t a = tracer.newTxn(ObsClass::CpuRead, cpu, 0x0, 0);
    std::uint64_t b = tracer.newTxn(ObsClass::CpuRead, cpu, 0x40, 0);
    EXPECT_NE(a, 0u);
    EXPECT_NE(b, 0u);
    EXPECT_EQ(tracer.newTxn(ObsClass::CpuRead, cpu, 0x80, 0), 0u);
    EXPECT_EQ(tracer.txnsDropped(), 1u);
    // Emitting on id 0 must be harmless.
    tracer.emit(0, ObsPhase::DirDispatch, cpu, 0x80, 5);
    tracer.complete(a, cpu, 0x0, 10);
    tracer.collect();
    EXPECT_NE(tracer.newTxn(ObsClass::CpuRead, cpu, 0x80, 20), 0u)
        << "completion frees an open-transaction slot";
}

TEST(ObsTracer, KeptSpanCapDropsSpansNotAggregates)
{
    ObsConfig cfg = smallConfig();
    cfg.maxKeptSpans = 4;
    ObsTracer tracer(cfg);
    std::uint16_t cpu = tracer.internCtrl("cp0", ObsCtrlKind::CorePair);
    for (int i = 0; i < 10; ++i) {
        std::uint64_t id =
            tracer.newTxn(ObsClass::CpuRead, cpu, Addr(i) * 64, i * 10);
        tracer.complete(id, cpu, Addr(i) * 64, i * 10 + 5);
    }
    tracer.collect();
    EXPECT_EQ(tracer.spans().size(), 4u);
    EXPECT_EQ(tracer.spansDropped(), 6u);
    EXPECT_EQ(tracer.completed(), 10u)
        << "histograms keep aggregating past the kept-span cap";
    EXPECT_EQ(tracer.latency(ObsClass::CpuRead).samples(), 10u);
}

TEST(ObsTracer, InternCtrlIsIdempotentPerName)
{
    ObsTracer tracer(smallConfig());
    std::uint16_t a = tracer.internCtrl("dir", ObsCtrlKind::Dir);
    std::uint16_t b = tracer.internCtrl("dir", ObsCtrlKind::Dir);
    std::uint16_t c = tracer.internCtrl("tcc", ObsCtrlKind::Tcc);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    EXPECT_EQ(tracer.ctrlName(a), "dir");
    EXPECT_EQ(tracer.ctrlKind(c), ObsCtrlKind::Tcc);
}

TEST(ObsSampler, DeltaRowsAndCsv)
{
    StatRegistry reg;
    Counter reads;
    reg.addCounter("dir.reads", &reads);
    ObsSampler sampler(reg, 100, 10);
    std::uint64_t depth = 3;
    sampler.addGauge("q.depth", [&] { return depth; });

    reads += 5;
    sampler.sample(100);
    reads += 2;
    depth = 7;
    sampler.sample(200);

    ASSERT_EQ(sampler.rows().size(), 2u);
    EXPECT_EQ(sampler.rows()[0].gauges[0], 3u);
    EXPECT_EQ(sampler.rows()[1].gauges[0], 7u);
    EXPECT_EQ(sampler.rows()[0].deltas[0], 5u);
    EXPECT_EQ(sampler.rows()[1].deltas[0], 2u)
        << "counter columns are per-interval increments, not totals";

    std::ostringstream os;
    sampler.writeCsv(os);
    std::istringstream is(os.str());
    std::string header, row1, row2;
    ASSERT_TRUE(std::getline(is, header));
    ASSERT_TRUE(std::getline(is, row1));
    ASSERT_TRUE(std::getline(is, row2));
    EXPECT_NE(header.find("q.depth"), std::string::npos);
    EXPECT_NE(header.find("dir.reads"), std::string::npos);
    EXPECT_NE(row1.find("5"), std::string::npos);
    EXPECT_NE(row2.find("7"), std::string::npos);
}

TEST(ChromeTrace, SchemaOfSyntheticTrace)
{
    ObsTracer tracer(smallConfig());
    std::uint16_t cpu = tracer.internCtrl("cp0", ObsCtrlKind::CorePair);
    std::uint16_t dir = tracer.internCtrl("dir", ObsCtrlKind::Dir);
    std::uint64_t id = tracer.newTxn(ObsClass::CpuRead, cpu, 0x40, 100);
    tracer.emit(id, ObsPhase::DirDispatch, dir, 0x40, 110);
    tracer.emit(id, ObsPhase::Respond, dir, 0x40, 150);
    tracer.complete(id, cpu, 0x40, 160);
    tracer.collect();

    JsonValue doc = buildChromeTrace(tracer, nullptr);
    // Round-trip through the serializer: the export must stay
    // parseable JSON.
    JsonValue parsed = parseJson(doc.dump(2));
    ASSERT_TRUE(parsed.isObject());
    const JsonValue &events = parsed.at("traceEvents");
    ASSERT_TRUE(events.isArray());
    ASSERT_GT(events.size(), 0u);

    std::size_t begins = 0, ends = 0, meta = 0;
    for (const JsonValue &ev : events.items()) {
        ASSERT_TRUE(ev.isObject());
        const std::string &ph = ev.at("ph").asString();
        EXPECT_TRUE(ph == "M" || ph == "b" || ph == "e" || ph == "i" ||
                    ph == "C")
            << "unexpected phase " << ph;
        EXPECT_NE(ev.find("pid"), nullptr);
        EXPECT_NE(ev.find("name"), nullptr);
        if (ph == "M")
            ++meta;
        if (ph == "b")
            ++begins;
        if (ph == "e")
            ++ends;
        if (ph != "M") {
            EXPECT_GE(ev.at("ts").asDouble(), 0.0);
        }
    }
    EXPECT_EQ(begins, ends) << "async begin/end events must pair up";
    EXPECT_GE(meta, 3u) << "process_name + one thread_name per ctrl";
    EXPECT_EQ(parsed.at("otherData").at("txnsCompleted").asUInt(), 1u);
}

} // namespace
} // namespace hsc
