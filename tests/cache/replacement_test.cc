/** @file Unit tests for replacement policies. */

#include <gtest/gtest.h>

#include "cache/replacement.hh"

namespace hsc
{
namespace
{

TEST(Lru, EvictsLeastRecentlyUsed)
{
    LruPolicy p(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        p.fill(0, w);
    p.touch(0, 0);
    p.touch(0, 2);
    // Way 1 is oldest now.
    EXPECT_EQ(p.victim(0), 1u);
    p.touch(0, 1);
    EXPECT_EQ(p.victim(0), 3u);
}

TEST(Lru, SetsAreIndependent)
{
    LruPolicy p(2, 2);
    p.fill(0, 0);
    p.fill(0, 1);
    p.fill(1, 1);
    p.fill(1, 0);
    p.touch(0, 0);
    EXPECT_EQ(p.victim(0), 1u);
    EXPECT_EQ(p.victim(1), 1u);
}

TEST(TreePlru, SingleHotWayIsProtected)
{
    TreePlruPolicy p(1, 8);
    for (unsigned w = 0; w < 8; ++w)
        p.fill(0, w);
    for (int i = 0; i < 16; ++i) {
        p.touch(0, 3);
        EXPECT_NE(p.victim(0), 3u);
    }
}

TEST(TreePlru, CyclesThroughAllWaysUnderFills)
{
    TreePlruPolicy p(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        p.fill(0, w);
    // Repeatedly evict + refill the victim: every way must be chosen
    // eventually (no starvation).
    std::vector<int> evicted(4, 0);
    for (int i = 0; i < 32; ++i) {
        unsigned v = p.victim(0);
        ++evicted[v];
        p.fill(0, v);
    }
    for (int w = 0; w < 4; ++w)
        EXPECT_GT(evicted[w], 0) << "way " << w << " never evicted";
}

TEST(TreePlru, RequiresPowerOfTwoAssoc)
{
    EXPECT_THROW(TreePlruPolicy(1, 6), std::logic_error);
}

TEST(VictimAmong, PicksLeastRecentCandidate)
{
    TreePlruPolicy p(1, 4);
    for (unsigned w = 0; w < 4; ++w)
        p.fill(0, w);
    p.touch(0, 1);
    p.touch(0, 2);
    // Candidates {1, 2}: way 1 was touched before way 2.
    const unsigned cand12[] = {1, 2};
    const unsigned cand2[] = {2};
    EXPECT_EQ(p.victimAmong(0, cand12), 1u);
    EXPECT_EQ(p.victimAmong(0, cand2), 2u);
}

TEST(Factory, MakesBothKinds)
{
    auto lru = makeReplacementPolicy("LRU", 4, 4);
    auto plru = makeReplacementPolicy("TreePLRU", 4, 4);
    EXPECT_NE(dynamic_cast<LruPolicy *>(lru.get()), nullptr);
    EXPECT_NE(dynamic_cast<TreePlruPolicy *>(plru.get()), nullptr);
    EXPECT_THROW(makeReplacementPolicy("bogus", 4, 4), std::runtime_error);
}

} // namespace
} // namespace hsc
