/** @file Unit tests for the generic tag store. */

#include <gtest/gtest.h>

#include "cache/cache_array.hh"

namespace hsc
{
namespace
{

struct TestEntry
{
    int state = 0;
    bool dirty = false;
};

using Arr = CacheArray<TestEntry>;

TEST(CacheGeometry, FromBytes)
{
    auto g = CacheGeometry::fromBytes(16ull << 20, 16); // 16 MB LLC
    EXPECT_EQ(g.numSets, 16384u);
    EXPECT_EQ(g.assoc, 16u);
}

TEST(CacheArray, MissThenAllocateThenHit)
{
    Arr arr("c", {4, 2});
    EXPECT_EQ(arr.lookup(0x1000), nullptr);
    TestEntry &e = arr.allocate(0x1000);
    e.state = 7;
    TestEntry *hit = arr.lookup(0x1000);
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->state, 7);
    EXPECT_EQ(arr.occupancy(), 1u);
}

TEST(CacheArray, SubBlockAddressesAlias)
{
    Arr arr("c", {4, 2});
    arr.allocate(0x1000);
    EXPECT_NE(arr.lookup(0x1004), nullptr);
    EXPECT_NE(arr.lookup(0x103F), nullptr);
    EXPECT_EQ(arr.lookup(0x1040), nullptr);
}

TEST(CacheArray, DoubleAllocatePanics)
{
    Arr arr("c", {4, 2});
    arr.allocate(0x1000);
    EXPECT_THROW(arr.allocate(0x1000), std::logic_error);
}

TEST(CacheArray, SetConflictsAndFreeWays)
{
    Arr arr("c", {4, 2}); // set = bits [7:6]
    // These all map to set 0 (addr >> 6 multiples of 4).
    EXPECT_TRUE(arr.hasFreeWay(0x0000));
    arr.allocate(0x0000);
    arr.allocate(0x0400);
    EXPECT_FALSE(arr.hasFreeWay(0x0800));
    EXPECT_TRUE(arr.hasFreeWay(0x0840)); // different set
    EXPECT_THROW(arr.allocate(0x0800), std::logic_error);
}

TEST(CacheArray, VictimSelectionRespectsRecency)
{
    Arr arr("c", {4, 2});
    arr.allocate(0x0000);
    arr.allocate(0x0400);
    arr.lookup(0x0000); // touch
    auto v = arr.findVictim(0x0800);
    EXPECT_EQ(v.addr, 0x0400u);
    arr.invalidate(v.addr);
    EXPECT_TRUE(arr.hasFreeWay(0x0800));
}

TEST(CacheArray, VictimAmongEligible)
{
    Arr arr("c", {4, 4});
    for (Addr a = 0; a < 4; ++a) {
        TestEntry &e = arr.allocate(a << 8); // all set 0
        e.dirty = (a % 2 == 1);
    }
    auto v = arr.findVictimAmong(
        0x4000, [](Addr, const TestEntry &e) { return !e.dirty; });
    ASSERT_NE(v.entry, nullptr);
    EXPECT_FALSE(v.entry->dirty);
}

TEST(CacheArray, VictimAmongFallsBackWhenNoneEligible)
{
    Arr arr("c", {4, 2});
    arr.allocate(0x0000).dirty = true;
    arr.allocate(0x0400).dirty = true;
    auto v = arr.findVictimAmong(
        0x0800, [](Addr, const TestEntry &e) { return !e.dirty; });
    EXPECT_TRUE(v.entry->dirty); // fell back to plain policy
}

TEST(CacheArray, InvalidateIsIdempotent)
{
    Arr arr("c", {4, 2});
    arr.allocate(0x1000);
    arr.invalidate(0x1000);
    EXPECT_EQ(arr.lookup(0x1000), nullptr);
    arr.invalidate(0x1000); // no-op
    EXPECT_EQ(arr.occupancy(), 0u);
}

TEST(CacheArray, ForEachVisitsValidLines)
{
    Arr arr("c", {8, 2});
    arr.allocate(0x0000);
    arr.allocate(0x1040);
    arr.allocate(0x2080);
    arr.invalidate(0x1040);
    std::vector<Addr> seen;
    arr.forEach([&](Addr a, const TestEntry &) { seen.push_back(a); });
    EXPECT_EQ(seen.size(), 2u);
}

TEST(CacheArray, NonPowerOfTwoSetsPanics)
{
    EXPECT_THROW(Arr("c", {3, 2}), std::logic_error);
}

} // namespace
} // namespace hsc
