/**
 * @file
 * Property-style parameterized sweeps over the cache substrate:
 * LRU against a reference model on random traces, Tree-PLRU
 * structural properties, and CacheArray consistency under random
 * allocate/invalidate/lookup sequences.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <list>
#include <set>

#include "cache/cache_array.hh"
#include "sim/rng.hh"

namespace hsc
{
namespace
{

struct SweepParam
{
    unsigned sets;
    unsigned ways;
    std::uint64_t seed;

    std::string
    name() const
    {
        return "s" + std::to_string(sets) + "w" + std::to_string(ways) +
               "_r" + std::to_string(seed);
    }
};

class PolicySweep : public ::testing::TestWithParam<SweepParam>
{
};

TEST_P(PolicySweep, LruMatchesReferenceModel)
{
    auto [sets, ways, seed] = GetParam();
    LruPolicy policy(sets, ways);
    // Reference: per-set list, most recent at front.
    std::vector<std::list<unsigned>> ref(sets);
    for (unsigned s = 0; s < sets; ++s)
        for (unsigned w = 0; w < ways; ++w) {
            policy.fill(s, w);
            ref[s].push_front(w);
        }

    Rng rng(seed);
    for (int step = 0; step < 2000; ++step) {
        unsigned s = unsigned(rng.below(sets));
        if (rng.chance(70)) {
            unsigned w = unsigned(rng.below(ways));
            policy.touch(s, w);
            ref[s].remove(w);
            ref[s].push_front(w);
        } else {
            EXPECT_EQ(policy.victim(s), ref[s].back())
                << "step " << step;
        }
    }
}

TEST_P(PolicySweep, TreePlruNeverEvictsMostRecent)
{
    auto [sets, ways, seed] = GetParam();
    if (ways & (ways - 1))
        GTEST_SKIP() << "PLRU needs power-of-two ways";
    TreePlruPolicy policy(sets, ways);
    for (unsigned s = 0; s < sets; ++s)
        for (unsigned w = 0; w < ways; ++w)
            policy.fill(s, w);
    Rng rng(seed);
    for (int step = 0; step < 2000; ++step) {
        unsigned s = unsigned(rng.below(sets));
        unsigned w = unsigned(rng.below(ways));
        policy.touch(s, w);
        if (ways > 1) {
            EXPECT_NE(policy.victim(s), w) << "step " << step;
        }
    }
}

TEST_P(PolicySweep, CacheArrayAgreesWithReferenceSet)
{
    auto [sets, ways, seed] = GetParam();
    if (ways & (ways - 1))
        GTEST_SKIP();
    struct E
    {
        int tag = 0;
    };
    CacheArray<E> arr("prop", {sets, ways});
    std::set<Addr> ref;
    Rng rng(seed);
    const Addr span = Addr(sets) * ways * 4 * 64;

    for (int step = 0; step < 4000; ++step) {
        Addr a = blockAlign(rng.below(span));
        switch (rng.below(3)) {
          case 0: // allocate (evict if needed)
            if (!arr.lookup(a, false)) {
                if (!arr.hasFreeWay(a)) {
                    auto v = arr.findVictim(a);
                    ref.erase(v.addr);
                    arr.invalidate(v.addr);
                }
                arr.allocate(a);
                ref.insert(a);
            }
            break;
          case 1: // invalidate
            arr.invalidate(a);
            ref.erase(a);
            break;
          case 2: // lookup must agree with the reference set
            EXPECT_EQ(arr.lookup(a) != nullptr, ref.count(a) == 1)
                << "step " << step;
            break;
        }
        if (step % 512 == 0) {
            EXPECT_EQ(arr.occupancy(), ref.size());
        }
    }
    EXPECT_EQ(arr.occupancy(), ref.size());
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, PolicySweep,
    ::testing::Values(SweepParam{1, 2, 1}, SweepParam{4, 4, 2},
                      SweepParam{16, 8, 3}, SweepParam{2, 16, 4},
                      SweepParam{8, 3, 5}, SweepParam{64, 2, 6}),
    [](const auto &info) { return info.param.name(); });

} // namespace
} // namespace hsc
