/**
 * @file
 * Quickstart: build a system, run a tiny CPU+GPU collaboration, and
 * read the statistics the paper's evaluation is built on.
 *
 *   $ ./examples/quickstart
 *
 * The host writes an array, launches a GPU kernel that doubles it,
 * then sums the result on the CPU — all through the coherent unified
 * memory, with no explicit data transfers (the HUMA premise).
 */

#include <cstdio>

#include "core/hsa_system.hh"
#include "core/run_report.hh"

using namespace hsc;

int
main()
{
    // 1. Pick a configuration.  baselineConfig() is the unmodified
    //    gem5 HSC model; sharerTrackingConfig() is the paper's full
    //    enhancement stack.  Every knob is a plain struct field.
    SystemConfig cfg = sharerTrackingConfig();
    HsaSystem sys(cfg);

    // 2. Allocate unified memory and initialise it functionally.
    constexpr unsigned kElems = 64;
    Addr data = sys.alloc(kElems * 4);
    for (unsigned i = 0; i < kElems; ++i)
        sys.writeWord<std::uint32_t>(data + i * 4, i);

    // 3. Define a GPU kernel as a wavefront coroutine.
    GpuKernel doubler;
    doubler.name = "doubler";
    doubler.numWorkgroups = kElems / 16;
    doubler.body = [data](WaveCtx &wf) -> SimTask {
        Addr base = data + Addr(wf.workgroupId()) * wf.laneCount() * 4;
        auto vals = co_await wf.vload(base, 4, 4);
        for (auto &v : vals)
            v *= 2;
        co_await wf.vstore(base, 4, 4, vals);
    };

    // 4. A CPU thread launches the kernel and consumes the result.
    std::uint64_t sum = 0;
    sys.addCpuThread([&](CpuCtx &cpu) -> SimTask {
        co_await cpu.launchKernel(doubler);
        for (unsigned i = 0; i < kElems; ++i)
            sum += co_await cpu.load(data + i * 4, 4);
    });

    // 5. Run and inspect.
    if (!sys.run()) {
        std::fprintf(stderr, "simulation did not complete\n");
        return 1;
    }

    std::uint64_t expect = 2ull * (kElems * (kElems - 1) / 2);
    std::printf("sum = %llu (expected %llu) -> %s\n",
                (unsigned long long)sum, (unsigned long long)expect,
                sum == expect ? "OK" : "WRONG");

    RunMetrics m = collectMetrics(sys, "quickstart", sum == expect);
    std::printf("cycles=%llu probes=%llu memReads=%llu memWrites=%llu "
                "llcHits=%llu/%llu\n",
                (unsigned long long)m.cycles,
                (unsigned long long)m.probes,
                (unsigned long long)m.memReads,
                (unsigned long long)m.memWrites,
                (unsigned long long)m.llcHits,
                (unsigned long long)m.llcReads);
    return sum == expect ? 0 : 1;
}
