/**
 * @file
 * hsc_replay — deterministically re-execute a captured failure trace.
 *
 * Takes the JSON written by hsc_run --trace-out (or by the test
 * harnesses via writeFailureTrace), rebuilds the exact SystemConfig,
 * replays the recorded op schedule, and reports whether the failure
 * reproduces.  Exit codes: 0 = reproduced, 1 = did not reproduce,
 * 2 = bad invocation / unreadable trace.
 *
 *   $ ./examples/hsc_run --tester --seed 99 --shrink --trace-out f.json
 *   $ ./examples/hsc_replay f.json
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/trace_replay.hh"
#include "sim/sim_error.hh"

using namespace hsc;

namespace
{

void
usage()
{
    std::puts("usage: hsc_replay [options] <trace.json>\n"
              "  --events               print the captured checker event "
              "tail\n"
              "  --schedule             print the op schedule before "
              "replaying\n"
              "  --trace-chrome <path>  re-run with tracing on and write "
              "the\n"
              "                         replayed spans as a Chrome trace");
}

int
run(int argc, char **argv)
{
    std::string path;
    std::string trace_chrome;
    bool show_events = false;
    bool show_schedule = false;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--events") {
            show_events = true;
        } else if (arg == "--schedule") {
            show_schedule = true;
        } else if (arg == "--trace-chrome") {
            if (++i >= argc) {
                std::fprintf(stderr, "--trace-chrome needs a path\n");
                return 2;
            }
            trace_chrome = argv[i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        } else if (path.empty()) {
            path = arg;
        } else {
            usage();
            return 2;
        }
    }
    if (path.empty()) {
        usage();
        return 2;
    }

    FailureTrace trace = readFailureTrace(path);
    std::printf("trace: preset %s, %zu ops, tester seed %llu%s%s\n",
                trace.preset.c_str(), trace.schedule.size(),
                (unsigned long long)trace.tester.seed,
                trace.check ? ", checker on" : ", checker off",
                trace.fault.enabled ? ", faults on" : "");
    if (trace.storage.enabled) {
        std::printf("storage faults: %u/10k flips (%u/10k double), "
                    "one-shot at tick %llu, ECC %s, scrub every %llu "
                    "cycles, seed %llu\n",
                    trace.storage.flipPer10kAccesses,
                    trace.storage.doublePer10k,
                    (unsigned long long)trace.storage.flipAtTick,
                    trace.storage.ecc ? "on" : "off",
                    (unsigned long long)trace.storage.scrubIntervalCycles,
                    (unsigned long long)trace.storage.seed);
    }
    if (trace.bug.kind != SeededBug::Kind::None) {
        std::printf("seeded bug: %s at 0x%llx\n",
                    std::string(seededBugKindName(trace.bug.kind)).c_str(),
                    (unsigned long long)trace.bug.addr);
    }
    std::printf("recorded failure: %s\n", trace.failReason.c_str());

    if (show_schedule) {
        for (const TesterOp &op : trace.schedule.ops) {
            std::printf("  loc %-3u %-4s[%u] %s", op.loc,
                        testerAgentName(op.agent), op.agentIndex,
                        op.isWrite ? "write" : "read ");
            if (op.isWrite)
                std::printf(" 0x%llx", (unsigned long long)op.value);
            if (op.deviceScope)
                std::printf(" (device scope)");
            std::printf("\n");
        }
    }
    if (show_events) {
        std::printf("captured checker tail (%zu events):\n",
                    trace.events.size());
        for (const CheckerEvent &ev : trace.events)
            std::printf("  %s\n", ev.toString().c_str());
    }

    ReplayResult res = replayTrace(trace, trace_chrome);
    if (!trace_chrome.empty())
        std::printf("chrome trace written to %s (open in "
                    "ui.perfetto.dev)\n", trace_chrome.c_str());
    if (res.reproduced) {
        std::printf("replay: REPRODUCED: %s\n", res.failReason.c_str());
        for (const std::string &f : res.failures)
            std::printf("  %s\n", f.c_str());
        return 0;
    }
    std::printf("replay: did not reproduce (run passed");
    if (res.transitionsChecked)
        std::printf("; %llu transitions checked",
                    (unsigned long long)res.transitionsChecked);
    std::printf(")\n");
    return 1;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const SimError &e) {
        std::fprintf(stderr, "hsc_replay: error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "hsc_replay: error: %s\n", e.what());
        return 2;
    }
}
