/**
 * @file
 * hsc_trace — trace toolbox for the hsct binary format.
 *
 *   synth    generate a seeded synthetic scenario trace
 *   convert  import a ChampSim-style text trace
 *   info     decode, validate and summarise a trace
 *
 *   $ ./examples/hsc_trace synth --seed 42 --out s42.hsct
 *   $ ./examples/hsc_run --trace-in s42.hsct
 *   $ ./examples/hsc_trace convert accesses.txt out.hsct
 *   $ ./examples/hsc_trace info s42.hsct
 *
 * Capture is hsc_run's job (--trace-out-mem); replay is the 'trace'
 * workload (--trace-in).
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>

#include "sim/sim_error.hh"
#include "trace/champsim.hh"
#include "trace/scenario.hh"
#include "trace/trace_io.hh"

using namespace hsc;

namespace
{

void
usage()
{
    std::puts(
        "usage: hsc_trace <command> [options]\n"
        "  synth --out <path> [--seed <n>] [--describe-only]\n"
        "      generate the scenario derived from the seed (default 1);\n"
        "      --describe-only prints the scenario line and exits\n"
        "  convert <in.txt> <out.hsct> [--working-set <bytes>]\n"
        "          [--op-gap <ticks>] [--size <bytes>]\n"
        "      import a ChampSim-style text trace\n"
        "      (lines: <tid> R|W <hexaddr> [size], '#' comments)\n"
        "  info <path.hsct>\n"
        "      validate the whole trace and print a summary");
}

std::uint64_t
numArg(const char *flag, const std::string &v)
{
    try {
        return std::stoull(v);
    } catch (const std::exception &) {
        fatal("%s expects a number, got '%s'", flag, v.c_str());
    }
}

int
cmdSynth(int argc, char **argv)
{
    std::uint64_t seed = 1;
    std::string out;
    bool describe_only = false;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--seed")
            seed = numArg("--seed", next());
        else if (arg == "--out")
            out = next();
        else if (arg == "--describe-only")
            describe_only = true;
        else
            fatal("synth: unknown option %s", arg.c_str());
    }
    ScenarioConfig cfg = scenarioFromSeed(seed);
    std::printf("scenario: %s\n", describeScenario(cfg).c_str());
    if (describe_only)
        return 0;
    if (out.empty())
        fatal("synth needs --out <path>");
    std::ofstream os(out, std::ios::binary);
    if (!os)
        fatal("cannot write %s", out.c_str());
    generateScenarioTrace(cfg, os);
    TraceReader check(out);
    check.validateAll();
    std::printf("wrote %s (%llu records)\n", out.c_str(),
                (unsigned long long)check.header().recordCount);
    return 0;
}

int
cmdConvert(int argc, char **argv)
{
    std::string in, out;
    ChampSimOptions opts;
    for (int i = 0; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        if (arg == "--working-set")
            opts.workingSetBytes = numArg("--working-set", next());
        else if (arg == "--op-gap")
            opts.opGap = unsigned(numArg("--op-gap", next()));
        else if (arg == "--size")
            opts.defaultSize = unsigned(numArg("--size", next()));
        else if (in.empty())
            in = arg;
        else if (out.empty())
            out = arg;
        else
            fatal("convert: unexpected argument %s", arg.c_str());
    }
    if (in.empty() || out.empty())
        fatal("convert needs <in.txt> <out.hsct>");
    std::ifstream is(in);
    if (!is)
        fatal("cannot read %s", in.c_str());
    std::ofstream os(out, std::ios::binary);
    if (!os)
        fatal("cannot write %s", out.c_str());
    std::uint64_t n = convertChampSim(is, os, opts);
    std::printf("converted %llu accesses -> %s\n",
                (unsigned long long)n, out.c_str());
    return 0;
}

int
cmdInfo(int argc, char **argv)
{
    if (argc != 1)
        fatal("info needs exactly one trace path");
    TraceReader rd(argv[0]);
    const TraceHeader &h = rd.header();
    std::printf("version %u, %u CPU threads, heap [0x%llx, 0x%llx)\n",
                h.version, h.numCpuThreads,
                (unsigned long long)h.heapBase,
                (unsigned long long)h.heapEnd);
    if (h.hasReference()) {
        std::printf("reference: %llu cycles, image %016llx\n",
                    (unsigned long long)h.refCycles,
                    (unsigned long long)h.refImageHash);
    } else {
        std::puts("reference: none (capture did not complete cleanly)");
    }
    std::map<std::string, std::uint64_t> perOp;
    std::uint64_t agents = 0;
    rd.validateAll([&](const TraceRecord &r) {
        ++perOp[traceOpName(r.op)];
        if (r.op == TraceOp::AgentEnd)
            ++agents;
    });
    std::printf("%llu records, %llu mem inits, %llu agent streams\n",
                (unsigned long long)h.recordCount,
                (unsigned long long)rd.memInits().size(),
                (unsigned long long)agents);
    for (const auto &[name, count] : perOp)
        std::printf("  %-12s %llu\n", name.c_str(),
                    (unsigned long long)count);
    std::puts("integrity: OK");
    return 0;
}

int
run(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    std::string cmd = argv[1];
    if (cmd == "synth")
        return cmdSynth(argc - 2, argv + 2);
    if (cmd == "convert")
        return cmdConvert(argc - 2, argv + 2);
    if (cmd == "info")
        return cmdInfo(argc - 2, argv + 2);
    if (cmd == "--help" || cmd == "-h") {
        usage();
        return 0;
    }
    std::fprintf(stderr, "unknown command %s\n", cmd.c_str());
    usage();
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    try {
        return run(argc, argv);
    } catch (const SimError &e) {
        std::fprintf(stderr, "hsc_trace: error: %s\n", e.what());
        return 1;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "hsc_trace: error: %s\n", e.what());
        return 1;
    }
}
