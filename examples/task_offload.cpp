/**
 * @file
 * Work-queue offload (the tq-style pattern): CPU threads publish
 * tasks into a coherent in-memory queue; persistent GPU wavefronts
 * claim them with system-scope atomics and write results back — the
 * fine-grained CPU/GPU collaboration HSA unified memory enables.
 *
 *   $ ./examples/task_offload
 */

#include <cstdio>

#include "core/hsa_system.hh"
#include "workloads/workload.hh"

using namespace hsc;

int
main()
{
    SystemConfig cfg = sharerTrackingConfig();
    HsaSystem sys(cfg);

    constexpr unsigned kTasks = 48;
    Addr desc = sys.alloc(kTasks * 4);     // task operand
    Addr results = sys.alloc(kTasks * 4);  // task result
    Addr tail = sys.alloc(64);             // producer cursor
    Addr head = sys.alloc(64);             // consumer cursor
    Addr done = sys.alloc(64);             // completed-task count

    GpuKernel consumer;
    consumer.name = "consumer";
    consumer.numWorkgroups = 4;
    consumer.body = [=](WaveCtx &wf) -> SimTask {
        for (;;) {
            std::uint64_t d = co_await wf.atomic(done, AtomicOp::Load, 0,
                                                 0, 4, Scope::System);
            if (d >= kTasks)
                break;
            std::uint64_t t = co_await wf.atomic(tail, AtomicOp::Load, 0,
                                                 0, 4, Scope::System);
            std::uint64_t h = co_await wf.atomic(head, AtomicOp::Load, 0,
                                                 0, 4, Scope::System);
            if (h >= t) {
                co_await wf.compute(40);
                continue;
            }
            std::uint64_t claimed = co_await wf.atomic(
                head, AtomicOp::Cas, h, h + 1, 4, Scope::System);
            if (claimed != h)
                continue;
            std::uint64_t operand = co_await wf.load(
                desc + Addr(h) * 4, 4, Scope::System);
            co_await wf.compute(25); // "work"
            co_await wf.store(results + Addr(h) * 4,
                              operand * operand + 7, 4, Scope::System);
            co_await wf.atomic(done, AtomicOp::Add, 1, 0, 4,
                               Scope::System);
        }
    };

    constexpr unsigned kProducers = 3;
    for (unsigned p = 0; p < kProducers; ++p) {
        sys.addCpuThread([=](CpuCtx &cpu) -> SimTask {
            if (p == 0)
                cpu.launchKernelAsync(consumer);
            for (unsigned t = p; t < kTasks; t += kProducers) {
                co_await cpu.store(desc + t * 4, t + 1, 4);
                co_await cpu.compute(15); // produce the next task
                // Publish in order.
                for (;;) {
                    std::uint64_t cur = co_await cpu.load(tail, 4);
                    if (cur == t)
                        break;
                    co_await cpu.compute(20);
                }
                co_await cpu.store(tail, t + 1, 4);
            }
            if (p == 0) {
                // Wait for the consumers to drain the queue.
                while (co_await cpu.load(done, 4) < kTasks)
                    co_await cpu.compute(100);
                co_await cpu.waitKernels();
            }
        });
    }

    if (!sys.run()) {
        std::fprintf(stderr, "simulation did not complete\n");
        return 1;
    }

    unsigned wrong = 0;
    for (unsigned t = 0; t < kTasks; ++t) {
        std::uint64_t got = coherentPeek(sys, results + t * 4, 4);
        std::uint64_t want = std::uint64_t(t + 1) * (t + 1) + 7;
        wrong += (got != (want & 0xFFFFFFFFu));
    }
    std::printf("tasks=%u wrong=%u cycles=%llu gpuKernels=%llu\n",
                kTasks, wrong, (unsigned long long)sys.cpuCycles(),
                (unsigned long long)sys.dispatcher().kernelsLaunched());
    return wrong == 0 ? 0 : 1;
}
