/**
 * @file
 * DMA streaming through the coherent directory (Fig. 3 of the paper):
 * the DMA engine pulls a buffer that is partially dirty in CPU
 * caches, streams it to a staging region, and the GPU then processes
 * the staged copy — every step coherent, with no manual flushing.
 *
 *   $ ./examples/dma_streaming
 */

#include <cstdio>

#include "core/hsa_system.hh"
#include "workloads/workload.hh"

using namespace hsc;

int
main()
{
    SystemConfig cfg = llcWriteBackUseL3Config();
    HsaSystem sys(cfg);

    constexpr unsigned kBlocks = 32;
    constexpr unsigned kWords = kBlocks * 16; // u32 words
    Addr src = sys.alloc(kBlocks * 64);
    Addr staged = sys.alloc(kBlocks * 64);
    Addr sums = sys.alloc(64);

    for (unsigned i = 0; i < kWords; ++i)
        sys.writeWord<std::uint32_t>(src + i * 4, i);

    GpuKernel reducer;
    reducer.name = "reduce";
    reducer.numWorkgroups = 4;
    reducer.body = [=](WaveCtx &wf) -> SimTask {
        std::uint64_t local = 0;
        for (unsigned base = wf.workgroupId() * wf.laneCount();
             base < kWords; base += 4 * wf.laneCount()) {
            auto vals = co_await wf.vload(staged + Addr(base) * 4, 4, 4);
            for (auto v : vals)
                local += v;
        }
        co_await wf.atomic(sums, AtomicOp::Add, local, 0, 8,
                           Scope::System);
    };

    sys.addCpuThread([=, &sys](CpuCtx &cpu) -> SimTask {
        // Dirty a few source lines in the CPU cache: the DMA reads
        // must probe them out of the L2 (Fig. 3's DMARd path).
        for (unsigned b = 0; b < kBlocks; b += 4)
            co_await cpu.store(src + b * 64, 0xC0FFEE00u + b, 4);
        co_await sys.dma().copyAsync(staged, src, kBlocks * 64);
        co_await cpu.launchKernel(reducer);
    });

    if (!sys.run()) {
        std::fprintf(stderr, "simulation did not complete\n");
        return 1;
    }

    std::uint64_t want = 0;
    for (unsigned i = 0; i < kWords; ++i) {
        bool patched = (i % (4 * 16) == 0);
        want += patched ? (0xC0FFEE00u + i / 16) : i;
    }
    std::uint64_t got = coherentPeek(sys, sums, 8);
    std::printf("reduced=%llu expected=%llu -> %s  (dmaReads=%llu "
                "dmaWrites=%llu probes=%llu)\n",
                (unsigned long long)got, (unsigned long long)want,
                got == want ? "OK" : "WRONG",
                (unsigned long long)sys.stats().counter(
                    sys.config().name + ".dma.reads"),
                (unsigned long long)sys.stats().counter(
                    sys.config().name + ".dma.writes"),
                (unsigned long long)sys.directory().probesSent());
    return got == want ? 0 : 1;
}
