/**
 * @file
 * Producer-consumer pipeline (the cedd-style pattern from the paper's
 * intro): the GPU transforms frames and releases each one with a
 * system-scope flag; CPU threads consume frames as they land,
 * comparing how the coherence configuration changes the handoff cost.
 *
 *   $ ./examples/pipeline
 *
 * Prints cycles and directory traffic for the baseline and the
 * sharer-tracking directory side by side.
 */

#include <cstdio>

#include "core/hsa_system.hh"
#include "core/run_report.hh"

using namespace hsc;

namespace
{

constexpr unsigned kFrames = 8;
constexpr unsigned kFrameWords = 128;

RunMetrics
runPipeline(const SystemConfig &cfg)
{
    HsaSystem sys(cfg);
    Addr frames = sys.alloc(kFrames * kFrameWords * 4);
    Addr flags = sys.alloc(kFrames * 4);
    Addr checksums = sys.alloc(kFrames * 8);

    for (unsigned f = 0; f < kFrames; ++f)
        for (unsigned i = 0; i < kFrameWords; ++i)
            sys.writeWord<std::uint32_t>(
                frames + (f * kFrameWords + i) * 4, f * 1000 + i);

    GpuKernel producer;
    producer.name = "producer";
    producer.numWorkgroups = 4;
    producer.body = [=](WaveCtx &wf) -> SimTask {
        for (unsigned f = wf.workgroupId(); f < kFrames; f += 4) {
            Addr base = frames + Addr(f) * kFrameWords * 4;
            for (unsigned i = 0; i < kFrameWords; i += wf.laneCount()) {
                auto vals = co_await wf.vload(base + i * 4, 4, 4);
                for (auto &v : vals)
                    v = v * 3 + 1;
                co_await wf.vstore(base + i * 4, 4, 4, vals);
            }
            co_await wf.release(); // make the frame system-visible
            co_await wf.atomic(flags + f * 4, AtomicOp::Exch, 1, 0, 4,
                               Scope::System);
        }
    };

    constexpr unsigned kConsumers = 4;
    for (unsigned t = 0; t < kConsumers; ++t) {
        sys.addCpuThread([=, &sys](CpuCtx &cpu) -> SimTask {
            if (t == 0) {
                GpuKernel k = producer;
                cpu.launchKernelAsync(k);
            }
            for (unsigned f = t; f < kFrames; f += kConsumers) {
                while (co_await cpu.load(flags + f * 4, 4) == 0)
                    co_await cpu.compute(50);
                std::uint64_t sum = 0;
                Addr base = frames + Addr(f) * kFrameWords * 4;
                for (unsigned i = 0; i < kFrameWords; ++i)
                    sum += co_await cpu.load(base + i * 4, 4);
                co_await cpu.store(checksums + f * 8, sum, 8);
            }
            if (t == 0)
                co_await cpu.waitKernels();
        });
    }

    bool ok = sys.run();
    if (ok) {
        for (unsigned f = 0; f < kFrames && ok; ++f) {
            std::uint64_t want = 0;
            for (unsigned i = 0; i < kFrameWords; ++i)
                want += std::uint64_t(f * 1000 + i) * 3 + 1;
            std::uint64_t got = 0;
            for (unsigned p = 0; p < sys.numCorePairs(); ++p) {
                if (sys.corePair(p).hasLine(checksums + f * 8))
                    got = sys.corePair(p).peekWord(checksums + f * 8, 8);
            }
            if (!got)
                got = sys.readWord<std::uint64_t>(checksums + f * 8);
            ok = (got == (want & 0xFFFFFFFFFFFFFFFFull));
        }
    }
    return collectMetrics(sys, "pipeline", ok);
}

} // namespace

int
main()
{
    std::printf("GPU->CPU frame pipeline under two directories\n\n");
    std::printf("%-16s %10s %10s %10s %10s %6s\n", "config", "cycles",
                "probes", "memReads", "memWrites", "ok");
    for (const SystemConfig &cfg :
         {baselineConfig(), sharerTrackingConfig()}) {
        RunMetrics m = runPipeline(cfg);
        std::printf("%-16s %10llu %10llu %10llu %10llu %6s\n",
                    m.config.c_str(), (unsigned long long)m.cycles,
                    (unsigned long long)m.probes,
                    (unsigned long long)m.memReads,
                    (unsigned long long)m.memWrites,
                    m.ok ? "yes" : "NO");
        if (!m.ok)
            return 1;
    }
    std::printf("\nThe tracking directory elides the broadcast probes "
                "behind every flag poll and frame fetch.\n");
    return 0;
}
