/**
 * @file
 * hsc_run — command-line workload runner.
 *
 * The downstream user's entry point: pick a workload, a configuration
 * preset (or individual knobs), run, and get the metrics — optionally
 * a full gem5-style stats dump.
 *
 *   $ ./examples/hsc_run --workload tq --config sharers
 *   $ ./examples/hsc_run --workload cedd --config baseline \
 *         --gpu-writeback --banks 2 --scale 4 --stats
 *   $ ./examples/hsc_run --list
 */

#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "core/run_report.hh"
#include "sim/sim_error.hh"
#include "workloads/workload.hh"

using namespace hsc;

namespace
{

SystemConfig
configByName(const std::string &name)
{
    if (name == "baseline")
        return baselineConfig();
    if (name == "earlyResp")
        return earlyRespConfig();
    if (name == "noCleanVicMem")
        return noCleanVicToMemConfig();
    if (name == "noCleanVicLlc")
        return noCleanVicToLlcConfig();
    if (name == "llcWB")
        return llcWriteBackConfig();
    if (name == "llcWBuseL3")
        return llcWriteBackUseL3Config();
    if (name == "owner")
        return ownerTrackingConfig();
    if (name == "sharers")
        return sharerTrackingConfig();
    fatal("unknown config '%s' (try --help)", name.c_str());
}

void
usage()
{
    std::puts(
        "usage: hsc_run [options]\n"
        "  --workload <id>     workload to run (default: tq)\n"
        "  --config <name>     baseline | earlyResp | noCleanVicMem |\n"
        "                      noCleanVicLlc | llcWB | llcWBuseL3 |\n"
        "                      owner | sharers  (default: baseline)\n"
        "  --scale <n>         problem-size multiplier (default: 2)\n"
        "  --seed <n>          workload seed (default: 7)\n"
        "  --banks <n>         directory banks, power of two (default: 1)\n"
        "  --limited-ptrs <n>  limited-pointer sharer budget (0 = full map)\n"
        "  --gpu-writeback     WB_L1/WB_L2: GPU caches write back\n"
        "  --cpu-threads <n>   CPU worker threads (default: 4)\n"
        "  --workgroups <n>    GPU workgroups (default: 8)\n"
        "  --jitter <cycles>   fault injection: random extra link\n"
        "                      latency in [0, cycles] per message\n"
        "  --fault-seed <n>    fault-injection schedule seed (default: 1)\n"
        "  --stats             dump the full statistics registry\n"
        "  --list              list workloads and exit");
}

int run(int argc, char **argv);

} // namespace

int
main(int argc, char **argv)
{
    // User-reachable errors (bad options, impossible configurations,
    // protocol fatal()s) exit cleanly with a message, never abort().
    try {
        return run(argc, argv);
    } catch (const SimError &e) {
        std::fprintf(stderr, "hsc_run: error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        // e.g. std::stoul on a malformed numeric option
        std::fprintf(stderr, "hsc_run: error: %s\n", e.what());
        return 2;
    }
}

namespace
{

int
run(int argc, char **argv)
{
    std::string workload = "tq";
    std::string config = "baseline";
    WorkloadParams params;
    params.scale = 2;
    unsigned banks = 1;
    unsigned limited_ptrs = 0;
    bool gpu_wb = false;
    bool dump_stats = false;
    Cycles jitter = 0;
    std::uint64_t fault_seed = 1;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        auto nextNum = [&]() -> std::uint64_t {
            std::string v = next();
            try {
                return std::stoull(v);
            } catch (const std::exception &) {
                fatal("%s expects a number, got '%s'", arg.c_str(),
                      v.c_str());
            }
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--config") {
            config = next();
        } else if (arg == "--scale") {
            params.scale = unsigned(nextNum());
        } else if (arg == "--seed") {
            params.seed = nextNum();
        } else if (arg == "--banks") {
            banks = unsigned(nextNum());
        } else if (arg == "--limited-ptrs") {
            limited_ptrs = unsigned(nextNum());
        } else if (arg == "--gpu-writeback") {
            gpu_wb = true;
        } else if (arg == "--cpu-threads") {
            params.cpuThreads = unsigned(nextNum());
        } else if (arg == "--workgroups") {
            params.gpuWorkgroups = unsigned(nextNum());
        } else if (arg == "--jitter") {
            jitter = Cycles(nextNum());
        } else if (arg == "--fault-seed") {
            fault_seed = nextNum();
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--list") {
            std::puts("CHAI-like workloads:");
            for (const auto &id : workloadIds())
                std::printf("  %s\n", id.c_str());
            std::puts("HeteroSync-style workloads:");
            for (const auto &id : heteroSyncIds())
                std::printf("  %s\n", id.c_str());
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    SystemConfig cfg = configByName(config);
    cfg.numDirBanks = banks;
    cfg.gpuWriteBack = gpu_wb;
    if (limited_ptrs) {
        cfg.dir.tracking = DirTracking::Sharers;
        cfg.dir.maxSharerPointers = limited_ptrs;
    }
    if (jitter) {
        cfg.fault.enabled = true;
        cfg.fault.seed = fault_seed;
        cfg.fault.maxJitter = jitter;
    }

    HsaSystem sys(cfg);
    auto wl = makeWorkload(workload, params);
    wl->setup(sys);
    bool ran = sys.run();
    bool ok = ran && wl->verify(sys);

    RunMetrics m = collectMetrics(sys, workload, ok);
    printRunSummary(std::cout, m);
    if (!ran && sys.hangReport().hung())
        sys.hangReport().print(std::cerr);
    const Histogram *h =
        sys.stats().histogram(cfg.name + ".dir.txnLatency");
    if (!h)
        h = sys.stats().histogram(cfg.name + ".dir0.txnLatency");
    if (h) {
        std::printf("dir txn latency: mean %.1f cy, max %llu cy over "
                    "%llu transactions\n",
                    h->mean(), (unsigned long long)h->max(),
                    (unsigned long long)h->samples());
    }
    if (dump_stats)
        sys.stats().dump(std::cout);
    return ok ? 0 : 1;
}

} // namespace
