/**
 * @file
 * hsc_run — command-line workload runner.
 *
 * The downstream user's entry point: pick a workload, a configuration
 * preset (or individual knobs), run, and get the metrics — optionally
 * a full gem5-style stats dump.
 *
 *   $ ./examples/hsc_run --workload tq --config sharers
 *   $ ./examples/hsc_run --workload cedd --config baseline \
 *         --gpu-writeback --banks 2 --scale 4 --stats
 *   $ ./examples/hsc_run --list
 *
 * The runtime coherence sanitizer is on by default (--no-check turns
 * it off); --tester swaps the workload for the RandomTester, and a
 * failing run can be delta-minimized (--shrink) and dumped as a
 * replayable JSON trace (--trace-out) for hsc_replay.
 *
 *   $ ./examples/hsc_run --tester --seed 99 --shrink \
 *         --trace-out failure.json
 *   $ ./examples/hsc_replay failure.json
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "core/run_report.hh"
#include "core/schedule_shrink.hh"
#include "core/trace_replay.hh"
#include "obs/chrome_trace.hh"
#include "obs/sampler.hh"
#include "obs/tracer.hh"
#include "sim/sim_error.hh"
#include "trace/trace_capture.hh"
#include "workloads/registry.hh"
#include "workloads/workload.hh"

using namespace hsc;

namespace
{

// Config lookup lives in the library now (hsc::configByName /
// hsc::namedConfigs): one table shared by the CLI, the benches and
// --list-configs, with a SimError on unknown names.

/** CLI config names -> the canonical preset names traces store. */
std::string
presetName(const std::string &cli)
{
    if (cli == "noCleanVicMem")
        return "noCleanVicToMem";
    if (cli == "noCleanVicLlc")
        return "noCleanVicToLlc";
    if (cli == "llcWB")
        return "llcWriteBack";
    if (cli == "llcWBuseL3")
        return "llcWriteBackUseL3";
    if (cli == "owner")
        return "ownerTracking";
    if (cli == "sharers")
        return "sharerTracking";
    return cli;  // baseline / earlyResp match already
}

void
printStorageSummary(const HsaSystem &sys)
{
    StorageSummary ss = sys.storageSummary();
    if (!ss.enabled)
        return;
    std::printf("storage: %llu flips (%llu corrected, %llu poisoned, "
                "%llu scrub repairs), %llu poison consumed, "
                "meta %llu/%llu corrected/uncorrectable\n",
                (unsigned long long)ss.flips,
                (unsigned long long)ss.corrected,
                (unsigned long long)ss.poisoned,
                (unsigned long long)ss.scrubRepairs,
                (unsigned long long)ss.poisonConsumed,
                (unsigned long long)ss.metaCorrected,
                (unsigned long long)ss.metaUncorrectable);
}

/**
 * --tester mode: drive the RandomTester, and on failure optionally
 * delta-minimize the schedule and dump a replayable trace.
 */
int
runTester(const SystemConfig &cfg, const std::string &preset,
          const RandomTesterConfig &tcfg, bool shrink,
          bool shrink_anchored, const std::string &trace_out,
          bool dump_stats)
{
    TesterSchedule sched = buildTesterSchedule(tcfg);
    std::printf("tester: %zu ops over %u locations (seed %llu)\n",
                sched.size(), tcfg.numLocations,
                (unsigned long long)tcfg.seed);
    HsaSystem sys(cfg);
    RandomTester tester(sys, tcfg, sched);
    bool ok = tester.run();
    if (dump_stats)
        sys.stats().dump(std::cout);
    TransportSummary ts = sys.transportSummary();
    if (ts.enabled) {
        std::printf("transport: %llu retransmits, %llu ack frames, "
                    "%llu dup drops, %llu corrupt drops, %llu wire drops\n",
                    (unsigned long long)ts.retransmits,
                    (unsigned long long)ts.ackFrames,
                    (unsigned long long)ts.dupDrops,
                    (unsigned long long)ts.corruptDrops,
                    (unsigned long long)ts.wireDrops);
    }
    printStorageSummary(sys);
    if (ok) {
        std::printf("tester: PASS (image hash 0x%016llx, cycles %llu, "
                    "checkpoints %llu)\n",
                    (unsigned long long)tester.imageHash(),
                    (unsigned long long)sys.cpuCycles(),
                    (unsigned long long)(sys.snapshot()
                                             ? sys.checkpointsTaken()
                                             : 0));
        return 0;
    }

    std::string reason = sys.failReason();
    if (reason.empty() && !tester.failures().empty())
        reason = tester.failures().front();
    std::printf("tester: FAIL: %s\n", reason.c_str());
    for (const std::string &f : tester.failures())
        std::fprintf(stderr, "  %s\n", f.c_str());
    if (sys.checker() && sys.checker()->violated())
        sys.checker()->violations().front().print(std::cerr);
    if (sys.degradedReport().degraded())
        sys.degradedReport().print(std::cerr);
    if (sys.containmentReport().contained())
        sys.containmentReport().print(std::cerr);
    if (sys.hangReport().hung())
        sys.hangReport().print(std::cerr);

    TesterSchedule to_dump = sched;
    if (shrink || shrink_anchored) {
        // Anchored shrinking must not destroy the user's own
        // checkpoint cadence or files: shrink candidate systems get a
        // clean checkpoint config of their own.
        SystemConfig shrink_cfg = cfg;
        shrink_cfg.ckpt = CheckpointConfig{};
        ShrinkResult res =
            shrink_anchored
                ? shrinkScheduleAnchored(shrink_cfg, tcfg, sched,
                                         "hsc_shrink_anchor.snapshot")
                : shrinkSchedule(shrink_cfg, tcfg, sched);
        if (res.originalFailed && !res.minimal.empty()) {
            std::printf("shrink: %zu -> %zu ops after %zu runs\n",
                        res.originalOps, res.minimal.size(),
                        res.testsRun);
            if (res.anchorOps) {
                std::printf("shrink: anchored at op %zu "
                            "(hsc_shrink_anchor.snapshot)\n",
                            res.anchorOps);
            }
            std::printf("minimal failing schedule (seed %llu):\n",
                        (unsigned long long)tcfg.seed);
            for (const TesterOp &op : res.minimal.ops) {
                std::printf("  loc %-3u %-4s[%u] %s", op.loc,
                            testerAgentName(op.agent), op.agentIndex,
                            op.isWrite ? "write" : "read ");
                if (op.isWrite)
                    std::printf(" 0x%llx", (unsigned long long)op.value);
                if (op.deviceScope)
                    std::printf(" (device scope)");
                std::printf("\n");
            }
            to_dump = res.minimal;
            reason = res.failReason;
        } else {
            std::fprintf(stderr,
                         "shrink: failure did not reproduce on rerun\n");
        }
    }
    if (!trace_out.empty()) {
        FailureTrace t = captureFailureTrace(preset, false, cfg, tcfg,
                                             to_dump, &sys, reason);
        writeFailureTrace(t, trace_out);
        std::printf("failure trace written to %s (replay with "
                    "hsc_replay)\n", trace_out.c_str());
    }
    return 1;
}

void
usage()
{
    std::puts(
        "usage: hsc_run [options]\n"
        "  --workload <id>     workload to run (default: tq)\n"
        "  --config <name>     baseline | earlyResp | noCleanVicMem |\n"
        "                      noCleanVicLlc | llcWB | llcWBuseL3 |\n"
        "                      owner | sharers | big64 | big128\n"
        "                      (default: baseline; see --list-configs)\n"
        "  --pdes              parallel shard-per-thread kernel\n"
        "                      (DESIGN.md §14); the coherence checker\n"
        "                      shards with it (per directory bank)\n"
        "  --pdes-threads <n>  host worker threads for --pdes (implies\n"
        "                      it; 0 = HSC_PDES_THREADS env, else all\n"
        "                      hardware threads)\n"
        "  --scale <n>         problem-size multiplier (default: 2)\n"
        "  --seed <n>          workload seed (default: 7)\n"
        "  --banks <n>         directory banks, power of two (default: 1)\n"
        "  --limited-ptrs <n>  limited-pointer sharer budget (0 = full map)\n"
        "  --gpu-writeback     WB_L1/WB_L2: GPU caches write back\n"
        "  --cpu-threads <n>   CPU worker threads (default: 4)\n"
        "  --workgroups <n>    GPU workgroups (default: 8)\n"
        "  --jitter <cycles>   fault injection: random extra link\n"
        "                      latency in [0, cycles] per message\n"
        "  --fault-seed <n>    fault-injection schedule seed (default: 1)\n"
        "  --transport         reliable link transport: sequence numbers,\n"
        "                      acks, timeout/retransmit, dedup\n"
        "  --loss <per10k>     fault injection: drop N per 10k frames\n"
        "  --dup <per10k>      fault injection: duplicate N per 10k frames\n"
        "  --corrupt <per10k>  fault injection: corrupt N per 10k frames\n"
        "                      (loss/dup/corrupt imply --transport)\n"
        "  --dead-link <substr>\n"
        "                      kill every link whose name contains the\n"
        "                      substring (with --transport: DegradedReport)\n"
        "  --retry-budget <n>  retransmissions before a link is declared\n"
        "                      degraded (default: 16)\n"
        "  --storage-flip <per10k>\n"
        "                      storage-fault model: flip a bit in N per\n"
        "                      10k protected-array accesses (L2s, TCC,\n"
        "                      LLC, memory, directory metadata)\n"
        "  --storage-double <per10k>\n"
        "                      of the flips, N per 10k are double-bit —\n"
        "                      uncorrectable under SECDED (default: 1000)\n"
        "  --storage-flip-at-tick <n>\n"
        "                      one-shot deterministic double-bit flip at\n"
        "                      the first data access at/after tick N\n"
        "  --storage-seed <n>  storage flip-stream seed (default: 1)\n"
        "  --no-ecc            disable SECDED: flips corrupt silently\n"
        "                      (requires --check; the sanitizer catches\n"
        "                      them downstream)\n"
        "  --scrub-every <cycles>\n"
        "                      background scrubber cadence: repair\n"
        "                      latent correctable flips every N cycles\n"
        "  --watchdog-cycles <n>\n"
        "                      hang watchdog horizon in CPU cycles\n"
        "                      (default: 3000000)\n"
        "  --check / --no-check\n"
        "                      runtime coherence sanitizer (default: on)\n"
        "  --tester            run the RandomTester instead of a\n"
        "                      workload (--seed picks the schedule)\n"
        "  --tester-locs <n>   tester locations (default: 24)\n"
        "  --tester-rounds <n> tester rounds per location (default: 6)\n"
        "  --shrink            on tester failure, delta-minimize the\n"
        "                      failing op schedule and print it\n"
        "  --shrink-anchored   like --shrink, but anchor ddmin on a\n"
        "                      checkpoint of the largest passing\n"
        "                      prefix so candidates resume from the\n"
        "                      snapshot instead of tick 0\n"
        "  --checkpoint-every <cycles>\n"
        "                      drain to quiesce and checkpoint every N\n"
        "                      CPU cycles (sim/snapshot.hh)\n"
        "  --checkpoint-at <cycles>\n"
        "                      one-shot checkpoint at N cycles from\n"
        "                      run start (repeatable)\n"
        "  --checkpoint-out <path>\n"
        "                      snapshot file, written atomically; a\n"
        "                      failing run re-emits the freshest\n"
        "                      checkpoint to <path>.lastgasp\n"
        "  --restore <path>    restore this snapshot and resume it\n"
        "                      instead of starting from tick 0\n"
        "  --crash-at-tick <n> fault injection: kill the run (like a\n"
        "                      process crash) N ticks after run start\n"
        "  --crash-after-events <n>\n"
        "                      fault injection: kill the run after N\n"
        "                      executed events\n"
        "  --bug <kind>        plant a seeded protocol bug (for demoing\n"
        "                      the sanitizer): ignoreInvProbe |\n"
        "                      ignoreProbeData | writeNoPermission |\n"
        "                      bogusWBAck | dropWrite\n"
        "  --bug-addr <addr>   block the bug corrupts (default:\n"
        "                      0x100000, the first heap block)\n"
        "  --trace-out <path>  on failure, write a replayable JSON\n"
        "                      failure trace (see hsc_replay)\n"
        "  --trace-out-mem <path>\n"
        "                      capture every CPU/GPU/DMA memory op into\n"
        "                      an hsct binary trace; a successful run\n"
        "                      seals it with the reference outcome\n"
        "  --trace-in <path>   replay an hsct trace (workload 'trace');\n"
        "                      asserts bit-identity against the capture\n"
        "  --obs               transaction-lifetime tracing: per-class\n"
        "                      latency breakdown report after the run\n"
        "  --trace-chrome <path>\n"
        "                      write a Chrome trace-event JSON of every\n"
        "                      transaction (open in ui.perfetto.dev);\n"
        "                      implies --obs\n"
        "  --stats-interval <cycles>\n"
        "                      sample queue depths, occupancies and\n"
        "                      counter deltas every N CPU cycles\n"
        "  --interval-csv <path>\n"
        "                      write the sampled time series as CSV\n"
        "                      (default: stdout after the summary)\n"
        "  --stats             dump the full statistics registry\n"
        "  --stats-filter <prefix>\n"
        "                      restrict the --stats dump to counters\n"
        "                      whose name starts with <prefix>\n"
        "                      (implies --stats)\n"
        "  --list              list workload ids and exit\n"
        "  --list-workloads    list workloads with descriptions and exit\n"
        "  --list-configs      list configuration presets and exit");
}

int run(int argc, char **argv);

} // namespace

int
main(int argc, char **argv)
{
    // User-reachable errors (bad options, impossible configurations,
    // protocol fatal()s) exit cleanly with a message, never abort().
    try {
        return run(argc, argv);
    } catch (const SimError &e) {
        std::fprintf(stderr, "hsc_run: error: %s\n", e.what());
        return 2;
    } catch (const std::exception &e) {
        // e.g. std::stoul on a malformed numeric option
        std::fprintf(stderr, "hsc_run: error: %s\n", e.what());
        return 2;
    }
}

namespace
{

int
run(int argc, char **argv)
{
    std::string workload = "tq";
    std::string config = "baseline";
    WorkloadParams params;
    params.scale = 2;
    unsigned banks = 0; // 0 = keep the preset's bank count
    unsigned limited_ptrs = 0;
    bool gpu_wb = false;
    bool dump_stats = false;
    Cycles jitter = 0;
    std::uint64_t fault_seed = 1;
    bool transport = false;
    unsigned loss = 0, dup = 0, corrupt = 0;
    unsigned retry_budget = 0;
    unsigned storage_flip = 0, storage_double = 1000;
    Tick storage_flip_at = 0;
    std::uint64_t storage_seed = 1;
    bool ecc = true;
    Cycles scrub_every = 0;
    std::vector<std::string> dead_links;
    Cycles watchdog = 0;
    bool check = true;
    bool pdes = false;
    unsigned pdes_threads = 0;
    bool tester_mode = false;
    bool shrink = false;
    bool shrink_anchored = false;
    CheckpointConfig ckpt;
    Tick crash_at_tick = 0;
    std::uint64_t crash_after_events = 0;
    unsigned tester_locs = 24;
    unsigned tester_rounds = 6;
    std::string trace_out;
    std::string trace_out_mem;
    bool obs = false;
    std::string trace_chrome;
    Cycles stats_interval = 0;
    std::string interval_csv;
    std::string stats_filter;
    SeededBug bug;
    bug.addr = 0x100000;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                fatal("%s needs a value", arg.c_str());
            return argv[++i];
        };
        auto nextNum = [&]() -> std::uint64_t {
            std::string v = next();
            try {
                return std::stoull(v);
            } catch (const std::exception &) {
                fatal("%s expects a number, got '%s'", arg.c_str(),
                      v.c_str());
            }
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--config") {
            config = next();
        } else if (arg == "--scale") {
            params.scale = unsigned(nextNum());
        } else if (arg == "--seed") {
            params.seed = nextNum();
        } else if (arg == "--banks") {
            banks = unsigned(nextNum());
        } else if (arg == "--limited-ptrs") {
            limited_ptrs = unsigned(nextNum());
        } else if (arg == "--gpu-writeback") {
            gpu_wb = true;
        } else if (arg == "--cpu-threads") {
            params.cpuThreads = unsigned(nextNum());
        } else if (arg == "--workgroups") {
            params.gpuWorkgroups = unsigned(nextNum());
        } else if (arg == "--jitter") {
            jitter = Cycles(nextNum());
        } else if (arg == "--fault-seed") {
            fault_seed = nextNum();
        } else if (arg == "--transport") {
            transport = true;
        } else if (arg == "--loss") {
            loss = unsigned(nextNum());
        } else if (arg == "--dup") {
            dup = unsigned(nextNum());
        } else if (arg == "--corrupt") {
            corrupt = unsigned(nextNum());
        } else if (arg == "--dead-link") {
            dead_links.push_back(next());
        } else if (arg == "--retry-budget") {
            retry_budget = unsigned(nextNum());
        } else if (arg == "--storage-flip") {
            storage_flip = unsigned(nextNum());
        } else if (arg == "--storage-double") {
            storage_double = unsigned(nextNum());
        } else if (arg == "--storage-flip-at-tick") {
            storage_flip_at = Tick(nextNum());
        } else if (arg == "--storage-seed") {
            storage_seed = nextNum();
        } else if (arg == "--no-ecc") {
            ecc = false;
        } else if (arg == "--scrub-every") {
            scrub_every = Cycles(nextNum());
        } else if (arg == "--watchdog-cycles") {
            watchdog = Cycles(nextNum());
        } else if (arg == "--check") {
            check = true;
        } else if (arg == "--no-check") {
            check = false;
        } else if (arg == "--pdes") {
            pdes = true;
        } else if (arg == "--pdes-threads") {
            pdes = true;
            pdes_threads = unsigned(nextNum());
        } else if (arg == "--tester") {
            tester_mode = true;
        } else if (arg == "--tester-locs") {
            tester_locs = unsigned(nextNum());
        } else if (arg == "--tester-rounds") {
            tester_rounds = unsigned(nextNum());
        } else if (arg == "--shrink") {
            shrink = true;
        } else if (arg == "--shrink-anchored") {
            shrink_anchored = true;
        } else if (arg == "--checkpoint-every") {
            ckpt.everyCycles = Cycles(nextNum());
        } else if (arg == "--checkpoint-at") {
            ckpt.atCycles.push_back(Cycles(nextNum()));
        } else if (arg == "--checkpoint-out") {
            ckpt.outPath = next();
        } else if (arg == "--restore") {
            ckpt.restorePath = next();
        } else if (arg == "--crash-at-tick") {
            crash_at_tick = Tick(nextNum());
        } else if (arg == "--crash-after-events") {
            crash_after_events = nextNum();
        } else if (arg == "--bug") {
            bug.kind = seededBugKindFromName(next());
        } else if (arg == "--bug-addr") {
            bug.addr = Addr(std::stoull(next(), nullptr, 0)); // hex ok
        } else if (arg == "--trace-out") {
            trace_out = next();
        } else if (arg == "--trace-out-mem") {
            trace_out_mem = next();
        } else if (arg == "--trace-in") {
            params.tracePath = next();
            workload = "trace";
        } else if (arg == "--obs") {
            obs = true;
        } else if (arg == "--trace-chrome") {
            trace_chrome = next();
        } else if (arg == "--stats-interval") {
            stats_interval = Cycles(nextNum());
        } else if (arg == "--interval-csv") {
            interval_csv = next();
        } else if (arg == "--stats") {
            dump_stats = true;
        } else if (arg == "--stats-filter") {
            stats_filter = next();
            dump_stats = true;
        } else if (arg == "--list") {
            std::puts("CHAI-like workloads:");
            for (const auto &id : workloadIds())
                std::printf("  %s\n", id.c_str());
            std::puts("HeteroSync-style workloads:");
            for (const auto &id : heteroSyncIds())
                std::printf("  %s\n", id.c_str());
            return 0;
        } else if (arg == "--list-workloads") {
            for (const auto &e : WorkloadRegistry::instance().all())
                std::printf("%-10s  %s\n", e.id.c_str(),
                            e.description.c_str());
            return 0;
        } else if (arg == "--list-configs") {
            for (const NamedConfig &nc : namedConfigs())
                std::printf("%-14s  %s\n", nc.name, nc.summary);
            return 0;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::fprintf(stderr, "unknown option %s\n", arg.c_str());
            usage();
            return 2;
        }
    }

    SystemConfig cfg = configByName(config);
    if (banks)
        cfg.numDirBanks = banks;
    if (gpu_wb)
        cfg.gpuWriteBack = true;
    cfg.check = check;
    if (pdes) {
        cfg.pdes.enabled = true;
        cfg.pdes.threads = pdes_threads;
    }
    if (bug.kind != SeededBug::Kind::None)
        cfg.bug = bug;
    if (limited_ptrs) {
        cfg.dir.tracking = DirTracking::Sharers;
        cfg.dir.maxSharerPointers = limited_ptrs;
    }
    if (jitter) {
        cfg.fault.enabled = true;
        cfg.fault.seed = fault_seed;
        cfg.fault.maxJitter = jitter;
    }
    if (loss || dup || corrupt || !dead_links.empty()) {
        cfg.fault.enabled = true;
        cfg.fault.seed = fault_seed;
        cfg.fault.dropPer10k = loss;
        cfg.fault.dupPer10k = dup;
        cfg.fault.corruptPer10k = corrupt;
        for (const std::string &l : dead_links)
            cfg.fault.deadLinks.push_back(l);
        // Lossy wires need the recovery layer; dead links are allowed
        // without it (they exercise the hang watchdog instead).
        if (loss || dup || corrupt)
            transport = true;
    }
    cfg.transport.enabled = cfg.transport.enabled || transport;
    if (retry_budget)
        cfg.transport.retryBudget = retry_budget;
    if (storage_flip || storage_flip_at || scrub_every || !ecc) {
        cfg.storageFault.enabled = true;
        cfg.storageFault.seed = storage_seed;
        cfg.storageFault.flipPer10kAccesses = storage_flip;
        cfg.storageFault.doublePer10k = storage_double;
        cfg.storageFault.flipAtTick = storage_flip_at;
        cfg.storageFault.ecc = ecc;
        cfg.storageFault.scrubIntervalCycles = scrub_every;
    }
    if (watchdog)
        cfg.watchdogCycles = watchdog;
    cfg.trace.outPath = trace_out_mem;
    cfg.obs.enabled = obs || !trace_chrome.empty();
    cfg.obs.samplingInterval = stats_interval;
    cfg.ckpt = ckpt;
    if (crash_at_tick || crash_after_events) {
        cfg.fault.enabled = true;
        cfg.fault.seed = fault_seed;
        cfg.fault.crashAtTick = crash_at_tick;
        cfg.fault.crashAfterEvents = crash_after_events;
    }

    if (pdes) {
        // Preflight the combinations the config validator will reject,
        // naming the flag the user actually typed instead of the
        // SystemConfig field the validator knows it by.
        auto reject = [](bool cond, const char *flag, const char *why) {
            if (cond) {
                std::fprintf(stderr,
                             "%s is incompatible with --pdes: %s\n",
                             flag, why);
            }
            return cond;
        };
        bool bad = false;
        bad |= reject(obs, "--obs",
                      "observability spans form one totally-ordered "
                      "log, which needs the sequential kernel");
        bad |= reject(!trace_chrome.empty(), "--trace-chrome",
                      "the Chrome trace is built from observability "
                      "spans, which need the sequential kernel");
        bad |= reject(stats_interval != 0, "--stats-interval",
                      "the interval sampler reads instantaneous "
                      "cross-shard state in one global order");
        bad |= reject(!trace_out_mem.empty(), "--trace-out-mem",
                      "memory-trace capture interleaves all agents "
                      "into one globally-ordered tape");
        bad |= reject(ckpt.everyCycles != 0, "--checkpoint-every",
                      "drain-quiesce checkpoints cut one global "
                      "event-order point");
        bad |= reject(!ckpt.atCycles.empty(), "--checkpoint-at",
                      "drain-quiesce checkpoints cut one global "
                      "event-order point");
        bad |= reject(!ckpt.restorePath.empty(), "--restore",
                      "shard clocks cannot rewind to a restored tick");
        bad |= reject(storage_flip_at != 0, "--storage-flip-at-tick",
                      "'first access at or after tick T' reads a "
                      "global access order; use --storage-flip");
        if (bad)
            return 2;
    }

    if (tester_mode) {
        RandomTesterConfig tcfg;
        tcfg.seed = params.seed;
        tcfg.numLocations = tester_locs;
        tcfg.roundsPerLocation = tester_rounds;
        return runTester(cfg, presetName(config), tcfg, shrink,
                         shrink_anchored, trace_out, dump_stats);
    }

    HsaSystem sys(cfg);
    auto wl = makeWorkload(workload, params);
    wl->setup(sys);
    bool ran = sys.run();
    bool ok = ran && wl->verify(sys);

    RunMetrics m = collectMetrics(sys, workload, ok);
    printRunSummary(std::cout, m);
    if (sys.traceRecorder()) {
        std::printf("memory trace written to %s (%llu records; replay "
                    "with --trace-in)\n", cfg.trace.outPath.c_str(),
                    (unsigned long long)
                        sys.traceRecorder()->recordCount());
    }
    if (sys.snapshot()) {
        std::printf("checkpoints: %llu taken, last at tick %llu\n",
                    (unsigned long long)sys.checkpointsTaken(),
                    (unsigned long long)sys.lastCheckpointTick());
    }
    TransportSummary ts = sys.transportSummary();
    if (ts.enabled) {
        std::printf("transport: %llu retransmits, %llu ack frames, "
                    "%llu dup drops, %llu corrupt drops, %llu wire drops\n",
                    (unsigned long long)ts.retransmits,
                    (unsigned long long)ts.ackFrames,
                    (unsigned long long)ts.dupDrops,
                    (unsigned long long)ts.corruptDrops,
                    (unsigned long long)ts.wireDrops);
    }
    printStorageSummary(sys);
    if (sys.degradedReport().degraded())
        sys.degradedReport().print(std::cerr);
    if (sys.containmentReport().contained())
        sys.containmentReport().print(std::cerr);
    if (!ran && sys.hangReport().hung())
        sys.hangReport().print(std::cerr);
    if (sys.checker() && sys.checker()->violated())
        sys.checker()->violations().front().print(std::cerr);
    if (!ok && !trace_out.empty()) {
        // Workload runs have no op schedule, but the system knobs,
        // diagnosis and checker event tail still make the trace a
        // useful artifact.
        FailureTrace t =
            captureFailureTrace(presetName(config), false, cfg,
                                RandomTesterConfig{}, TesterSchedule{},
                                &sys, sys.failReason());
        writeFailureTrace(t, trace_out);
        std::fprintf(stderr, "failure trace written to %s\n",
                     trace_out.c_str());
    }
    const Histogram *h =
        sys.stats().histogram(cfg.name + ".dir.txnLatency");
    if (!h)
        h = sys.stats().histogram(cfg.name + ".dir0.txnLatency");
    if (h) {
        std::printf("dir txn latency: mean %.1f cy, max %llu cy over "
                    "%llu transactions\n",
                    h->mean(), (unsigned long long)h->max(),
                    (unsigned long long)h->samples());
    }
    if (sys.tracer()) {
        sys.tracer()->report(std::cout);
        if (!trace_chrome.empty()) {
            if (writeChromeTrace(*sys.tracer(), sys.sampler(),
                                 trace_chrome)) {
                std::printf("chrome trace written to %s (open in "
                            "ui.perfetto.dev)\n", trace_chrome.c_str());
            } else {
                std::fprintf(stderr, "cannot write chrome trace to %s\n",
                             trace_chrome.c_str());
                return 2;
            }
        }
    }
    if (sys.sampler()) {
        if (interval_csv.empty()) {
            sys.sampler()->writeCsv(std::cout);
        } else {
            std::ofstream csv(interval_csv);
            if (!csv) {
                std::fprintf(stderr, "cannot write interval CSV to %s\n",
                             interval_csv.c_str());
                return 2;
            }
            sys.sampler()->writeCsv(csv);
            std::printf("interval CSV written to %s (%zu samples)\n",
                        interval_csv.c_str(),
                        sys.sampler()->rows().size());
        }
    }
    if (dump_stats)
        sys.stats().dump(std::cout, stats_filter);
    return ok ? 0 : 1;
}

} // namespace
