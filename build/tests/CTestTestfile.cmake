# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/mem_test[1]_include.cmake")
include("/root/repo/build/tests/cache_test[1]_include.cmake")
include("/root/repo/build/tests/smoke_test[1]_include.cmake")
include("/root/repo/build/tests/random_tester_test[1]_include.cmake")
include("/root/repo/build/tests/dir_table1_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/directory_unit_test[1]_include.cmake")
include("/root/repo/build/tests/gpu_test[1]_include.cmake")
include("/root/repo/build/tests/core_pair_test[1]_include.cmake")
include("/root/repo/build/tests/llc_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/hang_report_test[1]_include.cmake")
include("/root/repo/build/tests/fault_stress_test[1]_include.cmake")
include("/root/repo/build/tests/banked_dir_test[1]_include.cmake")
include("/root/repo/build/tests/dir_tracked_unit_test[1]_include.cmake")
