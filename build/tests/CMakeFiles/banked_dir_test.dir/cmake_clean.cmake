file(REMOVE_RECURSE
  "CMakeFiles/banked_dir_test.dir/protocol/banked_dir_test.cc.o"
  "CMakeFiles/banked_dir_test.dir/protocol/banked_dir_test.cc.o.d"
  "banked_dir_test"
  "banked_dir_test.pdb"
  "banked_dir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/banked_dir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
