# Empty compiler generated dependencies file for banked_dir_test.
# This may be replaced when dependencies are built.
