file(REMOVE_RECURSE
  "CMakeFiles/gpu_test.dir/protocol/gpu_test.cc.o"
  "CMakeFiles/gpu_test.dir/protocol/gpu_test.cc.o.d"
  "gpu_test"
  "gpu_test.pdb"
  "gpu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
