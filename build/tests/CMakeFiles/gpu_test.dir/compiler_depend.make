# Empty compiler generated dependencies file for gpu_test.
# This may be replaced when dependencies are built.
