file(REMOVE_RECURSE
  "CMakeFiles/random_tester_test.dir/protocol/random_tester_test.cc.o"
  "CMakeFiles/random_tester_test.dir/protocol/random_tester_test.cc.o.d"
  "random_tester_test"
  "random_tester_test.pdb"
  "random_tester_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_tester_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
