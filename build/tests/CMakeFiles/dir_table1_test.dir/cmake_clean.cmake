file(REMOVE_RECURSE
  "CMakeFiles/dir_table1_test.dir/protocol/dir_table1_test.cc.o"
  "CMakeFiles/dir_table1_test.dir/protocol/dir_table1_test.cc.o.d"
  "dir_table1_test"
  "dir_table1_test.pdb"
  "dir_table1_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dir_table1_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
