# Empty compiler generated dependencies file for dir_table1_test.
# This may be replaced when dependencies are built.
