file(REMOVE_RECURSE
  "CMakeFiles/llc_test.dir/protocol/llc_test.cc.o"
  "CMakeFiles/llc_test.dir/protocol/llc_test.cc.o.d"
  "llc_test"
  "llc_test.pdb"
  "llc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/llc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
