# Empty compiler generated dependencies file for llc_test.
# This may be replaced when dependencies are built.
