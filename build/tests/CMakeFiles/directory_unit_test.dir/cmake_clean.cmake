file(REMOVE_RECURSE
  "CMakeFiles/directory_unit_test.dir/protocol/directory_unit_test.cc.o"
  "CMakeFiles/directory_unit_test.dir/protocol/directory_unit_test.cc.o.d"
  "directory_unit_test"
  "directory_unit_test.pdb"
  "directory_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/directory_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
