# Empty dependencies file for directory_unit_test.
# This may be replaced when dependencies are built.
