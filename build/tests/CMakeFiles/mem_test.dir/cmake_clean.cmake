file(REMOVE_RECURSE
  "CMakeFiles/mem_test.dir/mem/data_block_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/data_block_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/main_memory_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/main_memory_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/message_buffer_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/message_buffer_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/message_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/message_test.cc.o.d"
  "CMakeFiles/mem_test.dir/mem/property_test.cc.o"
  "CMakeFiles/mem_test.dir/mem/property_test.cc.o.d"
  "mem_test"
  "mem_test.pdb"
  "mem_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mem_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
