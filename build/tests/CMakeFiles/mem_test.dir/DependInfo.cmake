
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/mem/data_block_test.cc" "tests/CMakeFiles/mem_test.dir/mem/data_block_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/data_block_test.cc.o.d"
  "/root/repo/tests/mem/main_memory_test.cc" "tests/CMakeFiles/mem_test.dir/mem/main_memory_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/main_memory_test.cc.o.d"
  "/root/repo/tests/mem/message_buffer_test.cc" "tests/CMakeFiles/mem_test.dir/mem/message_buffer_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/message_buffer_test.cc.o.d"
  "/root/repo/tests/mem/message_test.cc" "tests/CMakeFiles/mem_test.dir/mem/message_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/message_test.cc.o.d"
  "/root/repo/tests/mem/property_test.cc" "tests/CMakeFiles/mem_test.dir/mem/property_test.cc.o" "gcc" "tests/CMakeFiles/mem_test.dir/mem/property_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hsc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
