# Empty compiler generated dependencies file for smoke_test.
# This may be replaced when dependencies are built.
