file(REMOVE_RECURSE
  "CMakeFiles/smoke_test.dir/protocol/smoke_test.cc.o"
  "CMakeFiles/smoke_test.dir/protocol/smoke_test.cc.o.d"
  "smoke_test"
  "smoke_test.pdb"
  "smoke_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smoke_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
