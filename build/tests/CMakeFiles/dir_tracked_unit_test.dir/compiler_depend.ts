# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for dir_tracked_unit_test.
