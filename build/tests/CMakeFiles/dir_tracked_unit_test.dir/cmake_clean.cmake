file(REMOVE_RECURSE
  "CMakeFiles/dir_tracked_unit_test.dir/protocol/dir_tracked_unit_test.cc.o"
  "CMakeFiles/dir_tracked_unit_test.dir/protocol/dir_tracked_unit_test.cc.o.d"
  "dir_tracked_unit_test"
  "dir_tracked_unit_test.pdb"
  "dir_tracked_unit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dir_tracked_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
