# Empty dependencies file for dir_tracked_unit_test.
# This may be replaced when dependencies are built.
