# Empty dependencies file for core_pair_test.
# This may be replaced when dependencies are built.
