file(REMOVE_RECURSE
  "CMakeFiles/core_pair_test.dir/protocol/core_pair_test.cc.o"
  "CMakeFiles/core_pair_test.dir/protocol/core_pair_test.cc.o.d"
  "core_pair_test"
  "core_pair_test.pdb"
  "core_pair_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_pair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
