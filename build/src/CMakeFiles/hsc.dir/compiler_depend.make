# Empty compiler generated dependencies file for hsc.
# This may be replaced when dependencies are built.
