file(REMOVE_RECURSE
  "libhsc.a"
)
