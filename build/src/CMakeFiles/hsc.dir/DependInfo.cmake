
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_array.cc" "src/CMakeFiles/hsc.dir/cache/cache_array.cc.o" "gcc" "src/CMakeFiles/hsc.dir/cache/cache_array.cc.o.d"
  "/root/repo/src/cache/replacement.cc" "src/CMakeFiles/hsc.dir/cache/replacement.cc.o" "gcc" "src/CMakeFiles/hsc.dir/cache/replacement.cc.o.d"
  "/root/repo/src/core/coherence_checker.cc" "src/CMakeFiles/hsc.dir/core/coherence_checker.cc.o" "gcc" "src/CMakeFiles/hsc.dir/core/coherence_checker.cc.o.d"
  "/root/repo/src/core/cpu_core.cc" "src/CMakeFiles/hsc.dir/core/cpu_core.cc.o" "gcc" "src/CMakeFiles/hsc.dir/core/cpu_core.cc.o.d"
  "/root/repo/src/core/dma_engine.cc" "src/CMakeFiles/hsc.dir/core/dma_engine.cc.o" "gcc" "src/CMakeFiles/hsc.dir/core/dma_engine.cc.o.d"
  "/root/repo/src/core/gpu_cu.cc" "src/CMakeFiles/hsc.dir/core/gpu_cu.cc.o" "gcc" "src/CMakeFiles/hsc.dir/core/gpu_cu.cc.o.d"
  "/root/repo/src/core/hsa_system.cc" "src/CMakeFiles/hsc.dir/core/hsa_system.cc.o" "gcc" "src/CMakeFiles/hsc.dir/core/hsa_system.cc.o.d"
  "/root/repo/src/core/kernel_dispatch.cc" "src/CMakeFiles/hsc.dir/core/kernel_dispatch.cc.o" "gcc" "src/CMakeFiles/hsc.dir/core/kernel_dispatch.cc.o.d"
  "/root/repo/src/core/random_tester.cc" "src/CMakeFiles/hsc.dir/core/random_tester.cc.o" "gcc" "src/CMakeFiles/hsc.dir/core/random_tester.cc.o.d"
  "/root/repo/src/core/run_report.cc" "src/CMakeFiles/hsc.dir/core/run_report.cc.o" "gcc" "src/CMakeFiles/hsc.dir/core/run_report.cc.o.d"
  "/root/repo/src/core/system_config.cc" "src/CMakeFiles/hsc.dir/core/system_config.cc.o" "gcc" "src/CMakeFiles/hsc.dir/core/system_config.cc.o.d"
  "/root/repo/src/mem/data_block.cc" "src/CMakeFiles/hsc.dir/mem/data_block.cc.o" "gcc" "src/CMakeFiles/hsc.dir/mem/data_block.cc.o.d"
  "/root/repo/src/mem/main_memory.cc" "src/CMakeFiles/hsc.dir/mem/main_memory.cc.o" "gcc" "src/CMakeFiles/hsc.dir/mem/main_memory.cc.o.d"
  "/root/repo/src/mem/message.cc" "src/CMakeFiles/hsc.dir/mem/message.cc.o" "gcc" "src/CMakeFiles/hsc.dir/mem/message.cc.o.d"
  "/root/repo/src/mem/message_buffer.cc" "src/CMakeFiles/hsc.dir/mem/message_buffer.cc.o" "gcc" "src/CMakeFiles/hsc.dir/mem/message_buffer.cc.o.d"
  "/root/repo/src/protocol/cpu/core_pair.cc" "src/CMakeFiles/hsc.dir/protocol/cpu/core_pair.cc.o" "gcc" "src/CMakeFiles/hsc.dir/protocol/cpu/core_pair.cc.o.d"
  "/root/repo/src/protocol/dir/directory.cc" "src/CMakeFiles/hsc.dir/protocol/dir/directory.cc.o" "gcc" "src/CMakeFiles/hsc.dir/protocol/dir/directory.cc.o.d"
  "/root/repo/src/protocol/dir/llc.cc" "src/CMakeFiles/hsc.dir/protocol/dir/llc.cc.o" "gcc" "src/CMakeFiles/hsc.dir/protocol/dir/llc.cc.o.d"
  "/root/repo/src/protocol/dma/dma_controller.cc" "src/CMakeFiles/hsc.dir/protocol/dma/dma_controller.cc.o" "gcc" "src/CMakeFiles/hsc.dir/protocol/dma/dma_controller.cc.o.d"
  "/root/repo/src/protocol/gpu/sqc.cc" "src/CMakeFiles/hsc.dir/protocol/gpu/sqc.cc.o" "gcc" "src/CMakeFiles/hsc.dir/protocol/gpu/sqc.cc.o.d"
  "/root/repo/src/protocol/gpu/tcc.cc" "src/CMakeFiles/hsc.dir/protocol/gpu/tcc.cc.o" "gcc" "src/CMakeFiles/hsc.dir/protocol/gpu/tcc.cc.o.d"
  "/root/repo/src/protocol/gpu/tcp.cc" "src/CMakeFiles/hsc.dir/protocol/gpu/tcp.cc.o" "gcc" "src/CMakeFiles/hsc.dir/protocol/gpu/tcp.cc.o.d"
  "/root/repo/src/protocol/types.cc" "src/CMakeFiles/hsc.dir/protocol/types.cc.o" "gcc" "src/CMakeFiles/hsc.dir/protocol/types.cc.o.d"
  "/root/repo/src/sim/clocked.cc" "src/CMakeFiles/hsc.dir/sim/clocked.cc.o" "gcc" "src/CMakeFiles/hsc.dir/sim/clocked.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/CMakeFiles/hsc.dir/sim/event_queue.cc.o" "gcc" "src/CMakeFiles/hsc.dir/sim/event_queue.cc.o.d"
  "/root/repo/src/sim/logging.cc" "src/CMakeFiles/hsc.dir/sim/logging.cc.o" "gcc" "src/CMakeFiles/hsc.dir/sim/logging.cc.o.d"
  "/root/repo/src/sim/sim_object.cc" "src/CMakeFiles/hsc.dir/sim/sim_object.cc.o" "gcc" "src/CMakeFiles/hsc.dir/sim/sim_object.cc.o.d"
  "/root/repo/src/stats/stats.cc" "src/CMakeFiles/hsc.dir/stats/stats.cc.o" "gcc" "src/CMakeFiles/hsc.dir/stats/stats.cc.o.d"
  "/root/repo/src/workloads/bs.cc" "src/CMakeFiles/hsc.dir/workloads/bs.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/bs.cc.o.d"
  "/root/repo/src/workloads/cedd.cc" "src/CMakeFiles/hsc.dir/workloads/cedd.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/cedd.cc.o.d"
  "/root/repo/src/workloads/heterosync.cc" "src/CMakeFiles/hsc.dir/workloads/heterosync.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/heterosync.cc.o.d"
  "/root/repo/src/workloads/hsti.cc" "src/CMakeFiles/hsc.dir/workloads/hsti.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/hsti.cc.o.d"
  "/root/repo/src/workloads/hsto.cc" "src/CMakeFiles/hsc.dir/workloads/hsto.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/hsto.cc.o.d"
  "/root/repo/src/workloads/pad.cc" "src/CMakeFiles/hsc.dir/workloads/pad.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/pad.cc.o.d"
  "/root/repo/src/workloads/rscd.cc" "src/CMakeFiles/hsc.dir/workloads/rscd.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/rscd.cc.o.d"
  "/root/repo/src/workloads/rsct.cc" "src/CMakeFiles/hsc.dir/workloads/rsct.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/rsct.cc.o.d"
  "/root/repo/src/workloads/sc.cc" "src/CMakeFiles/hsc.dir/workloads/sc.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/sc.cc.o.d"
  "/root/repo/src/workloads/tq.cc" "src/CMakeFiles/hsc.dir/workloads/tq.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/tq.cc.o.d"
  "/root/repo/src/workloads/trns.cc" "src/CMakeFiles/hsc.dir/workloads/trns.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/trns.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/CMakeFiles/hsc.dir/workloads/workload.cc.o" "gcc" "src/CMakeFiles/hsc.dir/workloads/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
