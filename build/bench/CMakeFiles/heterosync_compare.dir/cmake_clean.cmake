file(REMOVE_RECURSE
  "CMakeFiles/heterosync_compare.dir/heterosync_compare.cc.o"
  "CMakeFiles/heterosync_compare.dir/heterosync_compare.cc.o.d"
  "heterosync_compare"
  "heterosync_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterosync_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
