# Empty dependencies file for heterosync_compare.
# This may be replaced when dependencies are built.
