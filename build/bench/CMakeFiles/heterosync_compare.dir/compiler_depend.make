# Empty compiler generated dependencies file for heterosync_compare.
# This may be replaced when dependencies are built.
