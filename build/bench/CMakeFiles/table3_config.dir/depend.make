# Empty dependencies file for table3_config.
# This may be replaced when dependencies are built.
