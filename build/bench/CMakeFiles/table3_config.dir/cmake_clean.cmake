file(REMOVE_RECURSE
  "CMakeFiles/table3_config.dir/table3_config.cc.o"
  "CMakeFiles/table3_config.dir/table3_config.cc.o.d"
  "table3_config"
  "table3_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table3_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
