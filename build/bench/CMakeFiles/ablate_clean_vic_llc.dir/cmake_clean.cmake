file(REMOVE_RECURSE
  "CMakeFiles/ablate_clean_vic_llc.dir/ablate_clean_vic_llc.cc.o"
  "CMakeFiles/ablate_clean_vic_llc.dir/ablate_clean_vic_llc.cc.o.d"
  "ablate_clean_vic_llc"
  "ablate_clean_vic_llc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_clean_vic_llc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
