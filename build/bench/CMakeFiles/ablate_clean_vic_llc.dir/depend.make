# Empty dependencies file for ablate_clean_vic_llc.
# This may be replaced when dependencies are built.
