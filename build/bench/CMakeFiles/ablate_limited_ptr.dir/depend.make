# Empty dependencies file for ablate_limited_ptr.
# This may be replaced when dependencies are built.
