file(REMOVE_RECURSE
  "CMakeFiles/ablate_limited_ptr.dir/ablate_limited_ptr.cc.o"
  "CMakeFiles/ablate_limited_ptr.dir/ablate_limited_ptr.cc.o.d"
  "ablate_limited_ptr"
  "ablate_limited_ptr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_limited_ptr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
