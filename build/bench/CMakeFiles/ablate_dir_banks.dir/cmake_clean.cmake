file(REMOVE_RECURSE
  "CMakeFiles/ablate_dir_banks.dir/ablate_dir_banks.cc.o"
  "CMakeFiles/ablate_dir_banks.dir/ablate_dir_banks.cc.o.d"
  "ablate_dir_banks"
  "ablate_dir_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_dir_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
