# Empty dependencies file for ablate_dir_banks.
# This may be replaced when dependencies are built.
