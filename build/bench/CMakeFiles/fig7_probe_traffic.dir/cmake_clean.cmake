file(REMOVE_RECURSE
  "CMakeFiles/fig7_probe_traffic.dir/fig7_probe_traffic.cc.o"
  "CMakeFiles/fig7_probe_traffic.dir/fig7_probe_traffic.cc.o.d"
  "fig7_probe_traffic"
  "fig7_probe_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_probe_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
