# Empty dependencies file for fig7_probe_traffic.
# This may be replaced when dependencies are built.
