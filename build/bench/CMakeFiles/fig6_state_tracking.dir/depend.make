# Empty dependencies file for fig6_state_tracking.
# This may be replaced when dependencies are built.
