file(REMOVE_RECURSE
  "CMakeFiles/fig6_state_tracking.dir/fig6_state_tracking.cc.o"
  "CMakeFiles/fig6_state_tracking.dir/fig6_state_tracking.cc.o.d"
  "fig6_state_tracking"
  "fig6_state_tracking.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_state_tracking.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
