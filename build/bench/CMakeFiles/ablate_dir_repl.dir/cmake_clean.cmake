file(REMOVE_RECURSE
  "CMakeFiles/ablate_dir_repl.dir/ablate_dir_repl.cc.o"
  "CMakeFiles/ablate_dir_repl.dir/ablate_dir_repl.cc.o.d"
  "ablate_dir_repl"
  "ablate_dir_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_dir_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
