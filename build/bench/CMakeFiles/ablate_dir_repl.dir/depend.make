# Empty dependencies file for ablate_dir_repl.
# This may be replaced when dependencies are built.
