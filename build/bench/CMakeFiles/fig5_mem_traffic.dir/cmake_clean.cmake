file(REMOVE_RECURSE
  "CMakeFiles/fig5_mem_traffic.dir/fig5_mem_traffic.cc.o"
  "CMakeFiles/fig5_mem_traffic.dir/fig5_mem_traffic.cc.o.d"
  "fig5_mem_traffic"
  "fig5_mem_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_mem_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
