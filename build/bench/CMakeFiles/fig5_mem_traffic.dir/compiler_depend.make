# Empty compiler generated dependencies file for fig5_mem_traffic.
# This may be replaced when dependencies are built.
