file(REMOVE_RECURSE
  "CMakeFiles/ablate_readonly.dir/ablate_readonly.cc.o"
  "CMakeFiles/ablate_readonly.dir/ablate_readonly.cc.o.d"
  "ablate_readonly"
  "ablate_readonly.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_readonly.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
