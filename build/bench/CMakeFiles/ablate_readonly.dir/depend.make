# Empty dependencies file for ablate_readonly.
# This may be replaced when dependencies are built.
