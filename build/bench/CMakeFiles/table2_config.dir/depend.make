# Empty dependencies file for table2_config.
# This may be replaced when dependencies are built.
