file(REMOVE_RECURSE
  "CMakeFiles/table2_config.dir/table2_config.cc.o"
  "CMakeFiles/table2_config.dir/table2_config.cc.o.d"
  "table2_config"
  "table2_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
