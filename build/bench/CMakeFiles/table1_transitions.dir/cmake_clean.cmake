file(REMOVE_RECURSE
  "CMakeFiles/table1_transitions.dir/table1_transitions.cc.o"
  "CMakeFiles/table1_transitions.dir/table1_transitions.cc.o.d"
  "table1_transitions"
  "table1_transitions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_transitions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
