# Empty dependencies file for table1_transitions.
# This may be replaced when dependencies are built.
