# Empty dependencies file for ablate_early_resp.
# This may be replaced when dependencies are built.
