file(REMOVE_RECURSE
  "CMakeFiles/ablate_early_resp.dir/ablate_early_resp.cc.o"
  "CMakeFiles/ablate_early_resp.dir/ablate_early_resp.cc.o.d"
  "ablate_early_resp"
  "ablate_early_resp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_early_resp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
