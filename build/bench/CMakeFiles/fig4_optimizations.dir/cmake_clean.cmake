file(REMOVE_RECURSE
  "CMakeFiles/fig4_optimizations.dir/fig4_optimizations.cc.o"
  "CMakeFiles/fig4_optimizations.dir/fig4_optimizations.cc.o.d"
  "fig4_optimizations"
  "fig4_optimizations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_optimizations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
