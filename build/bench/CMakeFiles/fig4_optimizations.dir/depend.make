# Empty dependencies file for fig4_optimizations.
# This may be replaced when dependencies are built.
