file(REMOVE_RECURSE
  "CMakeFiles/task_offload.dir/task_offload.cpp.o"
  "CMakeFiles/task_offload.dir/task_offload.cpp.o.d"
  "task_offload"
  "task_offload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/task_offload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
