# Empty dependencies file for task_offload.
# This may be replaced when dependencies are built.
