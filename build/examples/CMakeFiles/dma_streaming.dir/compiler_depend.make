# Empty compiler generated dependencies file for dma_streaming.
# This may be replaced when dependencies are built.
