file(REMOVE_RECURSE
  "CMakeFiles/dma_streaming.dir/dma_streaming.cpp.o"
  "CMakeFiles/dma_streaming.dir/dma_streaming.cpp.o.d"
  "dma_streaming"
  "dma_streaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dma_streaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
