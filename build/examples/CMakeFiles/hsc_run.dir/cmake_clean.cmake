file(REMOVE_RECURSE
  "CMakeFiles/hsc_run.dir/hsc_run.cpp.o"
  "CMakeFiles/hsc_run.dir/hsc_run.cpp.o.d"
  "hsc_run"
  "hsc_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hsc_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
