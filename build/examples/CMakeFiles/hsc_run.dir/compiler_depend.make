# Empty compiler generated dependencies file for hsc_run.
# This may be replaced when dependencies are built.
